"""Fig. 11 — covert channel bandwidth/error, binary vs ternary, probe sweep.

Paper (256-slot ring): ~1950 bps binary, up to 3095 bps ternary; error
falls as the probe rate rises.  On the scaled 32-slot ring the symbol rate
is 8x the paper's; EXPERIMENTS.md records the normalisation.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig11


def test_fig11_covert_capacity(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig11,
        kwargs=dict(config=scaled_config, n_symbols=50, huge_pages=4),
        rounds=1,
        iterations=1,
    )
    emit(result)
    ring_scale = 256 / 32  # scaled ring sends symbols 8x faster
    for binary, ternary in zip(result.binary, result.ternary):
        assert ternary.bandwidth_bps > binary.bandwidth_bps
        assert binary.error_rate <= 0.15
        assert ternary.error_rate <= 0.15
        # Normalised to the paper's ring: the ~2-3.1 kbps regime.
        assert 1000 < binary.bandwidth_bps / ring_scale < 3000
        assert 2000 < ternary.bandwidth_bps / ring_scale < 4500
