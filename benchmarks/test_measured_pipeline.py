"""The fully *measured* attack pipeline — no oracle anywhere.

Every other bench focuses on one stage; this one runs the spy the way the
paper's spy actually works, end to end on timing alone:

1. calibrate the hit/miss threshold;
2. build eviction sets for page-aligned sets by group-testing reduction
   and conflict clustering (slices resolved purely by timing);
3. scan for buffer-hosting sets while traffic flows;
4. resolve a discovered buffer's block-2 set by co-activation trial and
   error (§IV-b);
5. verify the resolved sets read packet sizes correctly.

Ground truth is consulted only in the *assertions*, never by the attacker.
"""

from repro.attack.discovery import RingDiscovery
from repro.attack.evictionset import EvictionSetBuilder
from repro.attack.groundtruth import (
    buffers_per_page_aligned_set,
    flat_set_of_eviction_set,
)
from repro.attack.timing import calibrate_threshold
from repro.core.machine import Machine
from repro.net.traffic import ConstantStream


def _measured_pipeline(config):
    machine = Machine(config)
    machine.install_nic()
    spy = machine.new_process("spy")

    # 1. Timing calibration.
    threshold = calibrate_threshold(spy)

    # 2. Timing-only eviction sets for every page-aligned conflict class.
    builder = EvictionSetBuilder(spy, threshold, huge_pages=6)
    groups = builder.build_page_aligned_groups(block=0)

    # 3. Footprint scan while a remote sender broadcasts.
    discovery = RingDiscovery(spy, groups)
    source = ConstantStream(size=256, rate_pps=2e5, protocol="broadcast")
    source.attach(machine, machine.nic)
    trace = discovery.scan(n_samples=120, wait_cycles=20_000)
    active = discovery.active_sets(trace, min_activity=0.05)

    # 4. Resolve block 2 of the most active discovered set by timing
    #    co-activation across the 8 slice candidates.
    best = max(active, key=lambda d: d.activity)
    block0 = best.eviction_set
    block2_index = (block0.set_index + 2) % machine.llc.geometry.sets_per_slice
    candidates = builder.cluster_index(block2_index)
    block2 = discovery.resolve_block_set(
        block0, candidates, n_samples=220, wait_cycles=20_000
    )
    source.stop()
    return machine, spy, groups, active, block0, block2


def test_measured_pipeline(benchmark, scaled_config):
    machine, spy, groups, active, block0, block2 = benchmark.pedantic(
        _measured_pipeline, args=(scaled_config,), rounds=1, iterations=1
    )
    geometry = machine.llc.geometry

    # Stage 2 check: the timing-built groups cover every page-aligned
    # conflict class exactly once.
    flats = [flat_set_of_eviction_set(spy, es) for es in groups]
    assert len(set(flats)) == len(flats), "duplicate conflict groups"
    page_aligned_classes = (
        geometry.sets_per_slice // 64 * geometry.n_slices
    )
    coverage = len(flats) / page_aligned_classes
    print(f"\nmeasured pipeline: {len(flats)} timing-built groups "
          f"({coverage:.0%} of page-aligned classes)")
    assert coverage >= 0.9

    # Stage 3 check: every set the spy flagged truly hosts a buffer.
    hosting = buffers_per_page_aligned_set(machine)
    for found in active:
        flat = flat_set_of_eviction_set(spy, found.eviction_set)
        assert hosting.get(flat, 0) >= 1, "false positive in discovery"
    print(f"discovery: {len(active)} active sets, all true buffer hosts")

    # Stage 4 check: the trial-and-error slice resolution found the set
    # that really holds block 2 of one of that set's buffers.
    llc = machine.llc
    block0_flat = flat_set_of_eviction_set(spy, block0)
    ring = machine.ring
    matching = [
        b
        for b in ring.buffers
        if llc.flat_set_of(b.dma_paddr) == block0_flat
    ]
    assert matching
    block2_flat = flat_set_of_eviction_set(spy, block2)
    truths = {llc.flat_set_of(b.dma_paddr + 128) for b in matching}
    assert block2_flat in truths, "block-2 slice resolution failed"
    print("block-2 slice resolved correctly by co-activation")
