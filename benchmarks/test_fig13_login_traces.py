"""Fig. 13 + Section V accuracy — web fingerprinting.

Fig. 13: original vs spy-recovered packet-size vectors for a successful
and a failed hotcrp login (structurally distinct).  Accuracy: the 5-site
closed world, with DDIO (paper 89.7%) and without (paper 86.5%).
"""

from benchmarks.conftest import emit
from repro.analysis.correlation import cross_correlation
from repro.experiments import run_fig13_login, run_fingerprint_accuracy


def test_fig13_login_traces(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig13_login,
        kwargs=dict(config=scaled_config, huge_pages=4, trace_length=80),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # The recovery tracks the original trace...
    assert (
        cross_correlation(result.success_recovered, result.success_original) > 0.8
    )
    assert (
        cross_correlation(result.failure_recovered, result.failure_original) > 0.8
    )
    # ...and the two login outcomes stay distinguishable after recovery.
    self_score = cross_correlation(
        result.success_recovered, result.success_original
    )
    cross_score = cross_correlation(
        result.success_recovered, result.failure_original
    )
    assert self_score > cross_score


def test_sectionV_fingerprint_accuracy(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fingerprint_accuracy,
        kwargs=dict(
            config=scaled_config,
            train_loads=3,
            trials_per_site=4,
            huge_pages=4,
            trace_length=80,
            noise_pps=250,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    chance = 1 / len(result.sites)
    assert result.accuracy_ddio > 3 * chance  # paper: 89.7%
    assert result.accuracy_no_ddio > 2 * chance  # paper: 86.5%
    assert result.accuracy_ddio >= result.accuracy_no_ddio
