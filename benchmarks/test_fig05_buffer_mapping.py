"""Fig. 5 — buffer-to-set mapping of one driver initialisation.

Paper: 256 buffers over 256 page-aligned sets; the mapping is visibly
non-uniform (one set gets 5 buffers, many get none).
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig5


def test_fig5_buffer_mapping(benchmark, bench_config):
    result = benchmark.pedantic(run_fig5, args=(bench_config,), rounds=1, iterations=1)
    emit(result)
    assert result.n_page_aligned_sets == 256
    assert result.n_buffers == 256
    # Non-uniformity: some sets empty, some holding several buffers.
    assert result.empty_sets > 0
    assert result.max_buffers_on_one_set >= 3
