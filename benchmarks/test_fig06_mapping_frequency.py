"""Fig. 6 — buffers-per-set histogram over many driver initialisations.

Paper: ~35% of page-aligned sets host no buffer; >4 buffers on one set is
rare (5 out of 1000 instances).
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig6


def test_fig6_mapping_frequency(benchmark, bench_config):
    result = benchmark.pedantic(
        run_fig6, kwargs=dict(instances=120, config=bench_config), rounds=1, iterations=1
    )
    emit(result)
    assert 0.25 <= result.fraction_empty() <= 0.45  # paper: ~0.35
    # Heavy collisions are rare.
    rare = sum(result.histogram.get(k, 0) for k in result.histogram if k > 4)
    assert rare / result.instances < 2.0
