"""Fig. 8 — cache footprint vs packet size (blocks 0..3).

Paper: activity on the diagonal and above; the single exception is 1-block
packets lighting block 1 because the driver prefetches the second block.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig8


def test_fig8_size_footprint(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig8,
        kwargs=dict(config=scaled_config, n_samples=100, huge_pages=4, n_buffers=6),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # Diagonal and above lights up.
    for size in range(1, 5):
        for block in range(size):
            assert result.lit(block, size), f"block {block} dark for {size}-block"
    # Below the diagonal stays dark...
    assert not result.lit(2, 2)
    assert not result.lit(3, 3)
    # ...except the famous block-1 prefetch on 1-block packets.
    assert result.lit(1, 1)
    assert not result.lit(2, 1)
