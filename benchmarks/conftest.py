"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper and prints the
paper-style rows (captured with ``pytest benchmarks/ --benchmark-only -s``
or visible in the benchmark logs).  Scaled parameters are used so the whole
suite completes in minutes; EXPERIMENTS.md records the scaling and the
measured-vs-paper comparison for each entry.
"""

import sys
from pathlib import Path

# Source-checkout fallback, mirroring tests/conftest.py.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.core.config import MachineConfig


def pytest_collection_modifyitems(items):
    """Benchmarks are the paper-scale reproduction paths: mark them all
    ``slow`` so the default ``-m 'not slow'`` filter keeps tier-1 fast.
    Run them with ``pytest benchmarks/ -m slow`` (or ``-m ''``)."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture
def scaled_config():
    """Scaled machine (32-set page-aligned space, 32-slot ring)."""
    return MachineConfig().scaled_down()


@pytest.fixture
def bench_config():
    """Paper-shaped machine (256 page-aligned sets, 256-slot ring)."""
    return MachineConfig().bench_scale()


def emit(result) -> None:
    """Print a result's paper-style rows into the benchmark output."""
    print()
    for row in result.format_rows():
        print(row)
