"""Fig. 10 — decoded ternary covert trace of the repeating '201' pattern."""

from benchmarks.conftest import emit
from repro.experiments import run_fig10


def test_fig10_covert_trace(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig10,
        kwargs=dict(config=scaled_config, n_symbols=24, huge_pages=4),
        rounds=1,
        iterations=1,
    )
    emit(result)
    from repro.analysis.levenshtein import levenshtein

    # The channel is not error-free (the paper's Fig. 11 reports a few
    # percent): allow a symbol or two of slack on the display trace.
    assert levenshtein(result.received, result.sent) <= max(1, len(result.sent) // 12)
