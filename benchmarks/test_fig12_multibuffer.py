"""Fig. 12 — multi-buffer capacity scaling and the full chasing channel.

Paper: bandwidth roughly doubles per doubling of monitored buffers (to
24.5 kbps at 16); with full chasing, out-of-sync stays roughly flat with
send rate while the error rate jumps at 640 kbps when arrivals reorder.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig12_chase, run_fig12_multibuffer


def test_fig12ab_multibuffer(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig12_multibuffer,
        kwargs=dict(
            config=scaled_config,
            buffer_counts=(1, 2, 4, 8),
            n_symbols=48,
            huge_pages=4,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    bw = [r.bandwidth_bps for r in result.reports]
    for i in range(len(bw) - 1):
        assert bw[i + 1] > 1.5 * bw[i]  # ~doubling per doubling
    assert result.reports[0].error_rate <= 0.2


def test_fig12cd_chase(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig12_chase,
        kwargs=dict(
            config=scaled_config,
            rates_kbps=(80.0, 160.0, 320.0, 640.0),
            n_symbols=150,
            huge_pages=4,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    errors = [r.error_rate for r in result.reports]
    # Error low until the reorder knee, then a jump at 640 kbps.
    assert max(errors[:3]) <= 0.05
    assert errors[3] > max(errors[:3]) + 0.05
    # Out-of-sync stays modest at every rate.
    assert max(result.out_of_sync_rates) <= 0.15
