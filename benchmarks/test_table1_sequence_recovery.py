"""Table I — ring-buffer sequence recovery quality.

Paper (100k samples, 32 sets, 0.2 Mpps, 8 kHz probes): Levenshtein 25.2 of
256 (~9.8% error), longest mismatch 5.2.  Two settings are reported here:
the paper's probe-to-packet ratio (which reproduces the ~10% error regime)
and a favourable ratio where recovery is near-perfect.
"""

from benchmarks.conftest import emit
from repro.experiments import run_table1


def test_table1_paper_ratio(benchmark, scaled_config):
    """Paper-like rates: ~25 packets per probe sweep -> imperfect recovery."""
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(
            config=scaled_config,
            n_monitored=16,
            n_samples=3000,
            packet_rate=25_000,
            probe_rate_hz=8_000,
            huge_pages=4,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    assert result.truth, "monitored sets host no buffers?"
    # Recovery is imperfect but useful (paper: 9.8% error; the scaled ring
    # tolerates somewhat more).
    assert result.error_rate <= 0.6
    assert len(result.recovered) >= len(result.truth) * 0.7


def test_table1_tuned_ratio(benchmark, scaled_config):
    """Probe rate above monitored-set activation rate -> near-exact ring."""
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(
            config=scaled_config,
            n_monitored=16,
            n_samples=4000,
            packet_rate=15_000,
            probe_rate_hz=16_000,
            huge_pages=4,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    assert result.error_rate <= 0.15
