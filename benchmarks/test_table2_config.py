"""Table II — the baseline processor configuration used by the perf model."""

from repro.core.config import MachineConfig, ProcessorConfig


def test_table2_baseline_configuration(benchmark):
    cfg = benchmark.pedantic(ProcessorConfig, rounds=1, iterations=1)
    print()
    print("Table II: baseline processor")
    rows = [
        ("Frequency", f"{cfg.frequency_hz/1e9:.1f} GHz"),
        ("Fetch width", f"{cfg.fetch_width} fused uops"),
        ("Issue width", f"{cfg.issue_width} unfused uops"),
        ("INT/FP regfile", f"{cfg.int_regs}/{cfg.fp_regs} regs"),
        ("ROB size", f"{cfg.rob_entries} entries"),
        ("IQ", f"{cfg.iq_entries} entries"),
        ("LQ/SQ", f"{cfg.lq_entries}/{cfg.sq_entries} entries"),
        ("BTB", f"{cfg.btb_entries} entries"),
        ("Icache", f"{cfg.icache_kb} KB, {cfg.icache_ways} way"),
        ("Dcache", f"{cfg.dcache_kb} KB, {cfg.dcache_ways} way"),
        ("Functional", f"Int ALU({cfg.int_alus}), Mult({cfg.int_mults})"),
    ]
    for name, value in rows:
        print(f"  {name:16s} {value}")
    assert cfg.frequency_hz == 3.3e9
    assert cfg.rob_entries == 168
    assert cfg.issue_width == 6
    # The LLC the attack targets (paper platform): 20 MB, 16384 sets.
    llc = MachineConfig().cache
    assert llc.size_bytes == 20 * 1024 * 1024
    assert llc.total_sets == 16384
