"""Fig. 15 — normalised memory traffic + LLC miss rate per cache variant.

Paper: DDIO and adaptive partitioning both cut DRAM traffic sharply vs the
No-DDIO baseline, and the adaptive scheme's traffic stays within a few
percent of DDIO's.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig15


def test_fig15_memory_traffic(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig15,
        kwargs=dict(
            config=scaled_config, copy_kb=512, tcp_packets=1000, nginx_requests=300
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for workload in result.workloads:
        ddio_r, ddio_w, ddio_m = result.normalised(workload, "ddio")
        adapt_r, adapt_w, adapt_m = result.normalised(workload, "adaptive")
        base_r, base_w, base_m = result.normalised(workload, "no-ddio")
        # DDIO reduces traffic and miss rate vs No-DDIO.
        assert ddio_r < base_r
        assert ddio_w < base_w
        assert ddio_m <= base_m
        # The defense keeps most of DDIO's traffic benefit.
        assert adapt_r <= base_r * 1.05
        assert adapt_w <= base_w * 1.05
