"""Ablation benches for the design points DESIGN.md calls out (§VI).

Not figures in the paper, but quantifications of its mitigation
discussion: ring size, randomization interval, DDIO allocation limit, and
the probe-rate tuning sensitivity behind Table I.
"""

from benchmarks.conftest import emit
from repro.experiments import (
    run_ddio_ways_ablation,
    run_probe_rate_ablation,
    run_randomization_interval_ablation,
    run_ring_size_ablation,
)


def test_ablation_ring_size(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_ring_size_ablation,
        kwargs=dict(config=scaled_config, ring_sizes=(32, 64, 128)),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # Bigger ring -> fewer uniquely-mapped buffers (covert channel loses
    # clean clock sets) and longer revisit latency after a lost packet.
    assert result.unique_buffer_fraction[0] > result.unique_buffer_fraction[-1]
    assert result.ring_revolution_seconds[-1] > result.ring_revolution_seconds[0]
    assert result.mean_buffers_per_hot_set[-1] > result.mean_buffers_per_hot_set[0]


def test_ablation_randomization_interval(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_randomization_interval_ablation,
        kwargs=dict(config=scaled_config, intervals=(0, 256, 16)),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # No randomization: the chase stays synced.
    assert result.out_of_sync_rates[0] <= 0.05
    # Aggressive shuffling wrecks synchronisation.
    assert result.out_of_sync_rates[-1] > result.out_of_sync_rates[0] + 0.1


def test_ablation_ddio_ways(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_ddio_ways_ablation,
        kwargs=dict(config=scaled_config, ways_sweep=(1, 2, 4), n_symbols=30),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # The channel works at every realistic allocation limit.
    assert max(result.error_rates) <= 0.25


def test_ablation_probe_rate(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_probe_rate_ablation,
        kwargs=dict(
            config=scaled_config,
            probe_rates_hz=(2_000.0, 16_000.0),
            n_samples=2500,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # Probing far below the activation rate loses ordering; probing above
    # it recovers the ring (the Table I tuning story).
    assert result.error_rates[-1] < result.error_rates[0]
