"""Fig. 14 — Nginx throughput: adaptive partitioning vs DDIO per LLC size.

Paper: the defense stays within 2.7% of the vulnerable DDIO baseline.  The
scaled LLC (8-20x smaller, lower associativity) makes each reserved I/O way
proportionally costlier, so the acceptance band here is wider; see
EXPERIMENTS.md.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig14


def test_fig14_nginx_throughput(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig14,
        kwargs=dict(config=scaled_config, n_requests=500),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for i in range(len(result.llc_labels)):
        assert result.adaptive_krps[i] > 0
        # Adaptive partitioning costs little (paper <=2.7%; scaled LLC <=8%).
        assert result.loss_percent(i) <= 8.0
