"""Fig. 7 — page-aligned set activity: idle vs receiving broadcast frames.

Paper: the monitored sets are dark while idle and a clear subset lights up
as soon as the remote sender starts (sets hosting no buffer stay dark).
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig7


def test_fig7_receive_footprint(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig7,
        kwargs=dict(
            config=scaled_config, n_samples=250, wait_cycles=20_000, huge_pages=4
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    n = len(result.set_labels)
    assert result.active_while_idle() <= n // 10
    active = result.active_while_receiving()
    assert active > n // 3  # buffer-hosting sets light up
    assert active < n  # empty sets stay dark
