"""Fig. 16 — tail latency of the defense schemes under open-loop load.

Paper: full ring randomization costs 41.8% at p99; adaptive partitioning
3.1%; partial randomization sits in between, closer to baseline.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig16


def test_fig16_tail_latency(benchmark, scaled_config):
    result = benchmark.pedantic(
        run_fig16,
        kwargs=dict(
            config=scaled_config,
            n_requests=2500,
            rate_rps=140_000,
            partial_intervals=(1000, 10_000),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    full = result.p99_overhead_percent("full-random")
    adaptive = result.p99_overhead_percent("adaptive")
    partial_1k = result.p99_overhead_percent("partial-1000")
    partial_10k = result.p99_overhead_percent("partial-10000")
    # Full randomization is by far the costliest (paper: +41.8%).
    assert full > 20.0
    # Adaptive partitioning is cheap (paper: +3.1%).
    assert adaptive < 10.0
    # Partial randomization lands between baseline and full randomization.
    assert partial_1k <= full
    assert partial_10k <= partial_1k + 1.0
