#!/usr/bin/env python3
"""Recover the rx ring's fill order with Algorithm 1 (the SEQUENCER).

A remote sender streams broadcast frames; the spy probes a window of
page-aligned cache sets, builds the one-node-history successor graph, and
walks it.  The result is compared against driver-instrumented ground truth
with the paper's Table I metrics.

Run:  python examples/sequence_recovery.py
"""

from repro.core.config import MachineConfig
from repro.experiments.sequencing import run_table1


def main() -> None:
    print("running the SEQUENCER against a scaled machine "
          "(16 monitored sets, 4000 samples)...")
    result = run_table1(
        MachineConfig().scaled_down(),
        n_monitored=16,
        n_samples=4000,
        packet_rate=15_000,
        probe_rate_hz=16_000,
        huge_pages=4,
    )
    for row in result.format_rows():
        print(row)
    print()
    print("ground truth :", result.truth)
    print("recovered    :", result.recovered)
    print()
    if result.error_rate <= 0.15:
        print("-> the ring order was recovered (rotations are equivalent);")
        print("   duplicated set ids are two buffers sharing a cache set,")
        print("   disambiguated by the graph's one-node history (Fig. 9).")
    else:
        print("-> noisy recovery; rerun or raise the probe rate "
              "(see Table I's rate sensitivity).")


if __name__ == "__main__":
    main()
