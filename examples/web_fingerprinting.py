#!/usr/bin/env python3
"""Fingerprint which website a victim is loading — from cache timing alone.

The spy chases the rx ring while the victim's browser traffic streams in,
records each packet's size in cache-block granularity, and classifies the
trace against per-site representatives (Section V of the paper).  Also
demonstrates the Fig. 13 scenario: telling a successful login apart from a
failed one.

Run:  python examples/web_fingerprinting.py
"""

import random

from repro.attack.fingerprint import WebFingerprintAttack
from repro.core.config import MachineConfig
from repro.experiments.fingerprinting import _fingerprint_rig, run_fig13_login
from repro.net.websites import WebsiteCorpus


def main() -> None:
    config = MachineConfig().scaled_down()

    print("=== login detection (Fig. 13) ===")
    login = run_fig13_login(config, huge_pages=4, trace_length=80)
    for row in login.format_rows():
        print(row)

    print("\n=== closed-world site classification (Section V) ===")
    corpus = WebsiteCorpus()
    machine, collector = _fingerprint_rig(
        config, ddio=True, huge_pages=4, trace_length=80
    )
    attack = WebFingerprintAttack(collector, corpus, rng=random.Random(1))
    print(f"training on {len(corpus)} sites, 3 loads each "
          "(the attacker's offline phase)...")
    attack.train(loads_per_site=3)

    print("victim loads pages; the spy classifies each from the side channel:")
    correct = 0
    trials = 0
    for site in corpus.names():
        for _ in range(2):
            guess = attack.classify_one(site)
            ok = guess == site
            correct += ok
            trials += 1
            print(f"  victim loaded {site:15s} -> spy says {guess:15s} "
                  f"{'OK' if ok else 'WRONG'}")
    print(f"\naccuracy: {correct}/{trials} = {correct / trials:.0%} "
          "(paper: 89.7% with DDIO)")


if __name__ == "__main__":
    main()
