#!/usr/bin/env python3
"""Quickstart: watch a network packet land in the last-level cache.

Builds a simulated DDIO host, points a PRIME+PROBE eviction set at the rx
ring's first buffer, delivers one broadcast frame, and shows the misses the
spy observes — the primitive the whole Packet Chasing attack is built on.

Run:  python examples/quickstart.py
"""

from repro import Machine, MachineConfig
from repro.attack.setup import MonitorFactory
from repro.attack.timing import calibrate_threshold
from repro.net.packet import Frame


def main() -> None:
    # A scaled machine keeps this instant; drop .scaled_down() for the
    # paper's full 20 MB LLC and 256-slot ring.
    machine = Machine(MachineConfig().scaled_down())
    machine.install_nic()
    print(f"machine up: {machine.llc.geometry.size_bytes // 1024} KB LLC, "
          f"{len(machine.ring.buffers)}-slot rx ring, DDIO on")

    # The spy is an unprivileged process: it can only map memory and time
    # its own loads.
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    print(f"calibrated: hit ~{threshold.hit_mean:.0f} cycles, "
          f"miss ~{threshold.miss_mean:.0f} cycles")

    # Build probe-ready eviction sets for the first rx buffer's blocks.
    factory = MonitorFactory(machine, spy, threshold, huge_pages=4)
    monitor = factory.buffer_monitor(0, blocks=(0, 1, 2, 3), include_alt=False)
    monitor.prime()

    print("\nprobe with no traffic:")
    for block, es in monitor.blocks.items():
        print(f"  block {block}: {es.probe()} misses")

    print("\ndeliver one 256-byte broadcast frame (4 cache blocks)...")
    machine.nic.deliver(Frame(size=256, protocol="broadcast"))

    print("probe again — DDIO pushed every block straight into the LLC:")
    for block, es in monitor.blocks.items():
        misses = es.probe()
        marker = " <-- packet block" if misses else ""
        print(f"  block {block}: {misses} misses{marker}")

    print("\nThe spy never touched the NIC, the kernel, or the network —")
    print("it read the packet's arrival and size from cache timing alone.")


if __name__ == "__main__":
    main()
