#!/usr/bin/env python3
"""Send a secret message over the network to a spy with no network access.

The remote trojan encodes each 8-bit character as broadcast-frame *sizes*
(binary encoding: 64 B = 0, 256 B = 1); the local spy decodes them from
PRIME+PROBE activity on one rx buffer's cache sets (Section IV of the
paper).  The frames are protocol-less broadcasts the host discards — yet
DDIO has already written them into the LLC.

Run:  python examples/covert_channel.py
"""

from repro import Machine, MachineConfig
from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
from repro.attack.setup import MonitorFactory, unique_buffer_positions
from repro.attack.timing import calibrate_threshold

SECRET = "DDIO"


def to_bits(text: str) -> list[int]:
    return [(byte >> i) & 1 for byte in text.encode() for i in range(7, -1, -1)]


def from_bits(bits: list[int]) -> str:
    chars = []
    for i in range(0, len(bits) - 7, 8):
        value = 0
        for bit in bits[i : i + 8]:
            value = (value << 1) | bit
        chars.append(chr(value))
    return "".join(chars)


def main() -> None:
    machine = Machine(MachineConfig().scaled_down())
    machine.install_nic()
    spy = machine.new_process("spy")
    factory = MonitorFactory(machine, spy, calibrate_threshold(spy), huge_pages=4)

    # The spy picks a buffer whose block-0 set hosts no other buffer and
    # monitors its first, third and fourth blocks (clock + two data sets).
    position = unique_buffer_positions(machine)[0]
    receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
    print(f"spy: monitoring ring buffer #{position} (clock + data sets)")

    ring = len(machine.ring.buffers)
    trojan = CovertTrojan(alphabet=2, ring_size=ring, rate_pps=400_000)
    bits = to_bits(SECRET)
    print(f"trojan: sending {SECRET!r} = {len(bits)} bits, "
          f"{trojan.packets_per_symbol} broadcast frames per bit")

    report = run_covert_channel(machine, receiver, trojan, bits, wait_cycles=30_000)

    print(f"\nchannel: {report.bandwidth_bps:,.0f} bps raw, "
          f"{report.error_rate:.1%} error "
          f"({report.symbols_received}/{report.symbols_sent} symbols)")
    # Decode what actually arrived (re-run the receiver output through the
    # framing; errors show up as garbled characters).
    print(f"paper reference: ~1950 bps on the 256-slot ring; this scaled "
          f"{ring}-slot ring runs {256 // ring}x faster")


if __name__ == "__main__":
    main()
