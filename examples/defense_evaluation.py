#!/usr/bin/env python3
"""Evaluate the defenses: does the spy go blind, and what does it cost?

Two sides of Section VII:
1. Security — run the Fig. 7 footprint scan against a machine with the
   adaptive I/O partition installed: the packet signal must disappear.
2. Performance — compare Nginx service under the vulnerable baseline,
   ring-buffer randomization and adaptive partitioning (Figs. 14/16).

Run:  python examples/defense_evaluation.py
"""

from repro.attack.evictionset import OracleEvictionSetBuilder
from repro.attack.primeprobe import ProbeMonitor
from repro.attack.timing import calibrate_threshold
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.defense.partitioning import AdaptivePartition
from repro.experiments.defense_eval import run_fig16
from repro.net.traffic import ConstantStream


def footprint_scan(defended: bool) -> tuple[int, int]:
    """Returns (active_sets, monitored_sets) for the Fig. 7 scan."""
    machine = Machine(MachineConfig().scaled_down())
    machine.install_nic()
    partition = None
    if defended:
        partition = AdaptivePartition()
        partition.install(machine)
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    # A competent spy sizes its eviction sets to the usable associativity.
    ways = machine.llc.geometry.ways - (
        partition.config.max_quota if partition else 0
    )
    builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4, ways=ways)
    monitor = ProbeMonitor(spy, builder.build_page_aligned_groups())
    source = ConstantStream(size=256, rate_pps=2e5, protocol="broadcast")
    source.attach(machine, machine.nic)
    monitor.prime()
    machine.idle(100_000)
    monitor.probe_once()
    trace = monitor.sample(80, wait_cycles=20_000)
    source.stop()
    active = sum(1 for a in trace.activity_fraction() if a > 0.1)
    return active, len(monitor)


def main() -> None:
    print("=== security: the spy's view of incoming packets ===")
    active, total = footprint_scan(defended=False)
    print(f"vulnerable DDIO baseline : {active:3d} / {total} "
          "page-aligned sets show packet activity")
    active, total = footprint_scan(defended=True)
    print(f"adaptive I/O partitioning: {active:3d} / {total} "
          "(I/O fills can no longer evict the spy's lines)")

    print("\n=== performance: what each mitigation costs (Fig. 16) ===")
    result = run_fig16(
        MachineConfig().scaled_down(), n_requests=1500, rate_rps=140_000
    )
    for row in result.format_rows():
        print(row)
    print("\npaper reference: +41.8% p99 for full randomization, "
          "+3.1% for adaptive partitioning.")


if __name__ == "__main__":
    main()
