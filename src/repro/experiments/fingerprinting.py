"""Fig. 13 and the Section V accuracy numbers: web fingerprinting.

* :func:`run_fig13_login` — hotcrp.com login: original vs spy-recovered
  packet-size vectors for a successful and a failed login (the four panels
  of Fig. 13).
* :func:`run_fingerprint_accuracy` — the 5-site closed world: train on a
  few loads per site, then classify victim loads, with DDIO on or off
  (paper: 89.7% with DDIO, 86.5% without).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attack.fingerprint import (
    CaptureConfig,
    TraceCollector,
    WebFingerprintAttack,
    recovered_vs_original,
)
from repro.attack.setup import MonitorFactory
from repro.attack.timing import calibrate_threshold
from repro.core.config import DDIOConfig, MachineConfig
from repro.core.machine import Machine
from repro.net.websites import LoginTraceFactory, WebsiteCorpus


def _fingerprint_rig(
    config: MachineConfig | None,
    ddio: bool,
    huge_pages: int = 16,
    trace_length: int = 100,
):
    cfg = config or MachineConfig().bench_scale()
    cfg = MachineConfig(
        cache=cfg.cache,
        ddio=DDIOConfig(enabled=ddio),
        ring=cfg.ring,
        link=cfg.link,
        timing=cfg.timing,
        processor=cfg.processor,
        memory_bytes=cfg.memory_bytes,
        numa_nodes=cfg.numa_nodes,
        seed=cfg.seed,
    )
    machine = Machine(cfg)
    machine.install_nic()
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    factory = MonitorFactory(machine, spy, threshold, huge_pages=huge_pages)
    chaser = factory.full_ring_chaser()
    capture = CaptureConfig(
        trace_length=trace_length,
        # Without DDIO the payload lags the header (driver read at
        # +io_to_driver_latency, stack payload touch a further
        # +payload_touch_delay); the spy must wait out both before sizing,
        # which is exactly what costs it accuracy.
        size_wait=0
        if ddio
        else cfg.timing.payload_touch_delay + cfg.timing.io_to_driver_latency,
    )
    collector = TraceCollector(machine, chaser, capture)
    return machine, collector


@dataclass
class Fig13Result:
    """Original vs recovered block-size vectors for the two login outcomes."""

    success_original: list[int]
    success_recovered: list[int]
    failure_original: list[int]
    failure_recovered: list[int]

    @staticmethod
    def _match_fraction(original: list[int], recovered: list[int]) -> float:
        n = min(len(original), len(recovered))
        if n == 0:
            return 0.0
        same = sum(1 for i in range(n) if original[i] == recovered[i])
        return same / n

    def format_rows(self) -> list[str]:
        return [
            "Fig.13: hotcrp login traces (first 100 packets, block sizes)",
            f"  success: {len(self.success_recovered)} packets recovered, "
            f"exact-match {self._match_fraction(self.success_original, self.success_recovered):.0%}",
            f"  failure: {len(self.failure_recovered)} packets recovered, "
            f"exact-match {self._match_fraction(self.failure_original, self.failure_recovered):.0%}",
            f"  success head (orig): {self.success_original[:24]}",
            f"  success head (rec.): {self.success_recovered[:24]}",
            f"  failure head (orig): {self.failure_original[:24]}",
            f"  failure head (rec.): {self.failure_recovered[:24]}",
        ]


def run_fig13_login(
    config: MachineConfig | None = None,
    huge_pages: int = 16,
    trace_length: int = 100,
    seed: int = 9,
) -> Fig13Result:
    """Capture a successful and a failed login through the side channel."""
    machine, collector = _fingerprint_rig(
        config, ddio=True, huge_pages=huge_pages, trace_length=trace_length
    )
    logins = LoginTraceFactory()
    rng = random.Random(seed)
    success_trace = logins.success(rng)
    failure_trace = logins.failure(rng)
    s_orig, s_rec = recovered_vs_original(collector, success_trace)
    f_orig, f_rec = recovered_vs_original(collector, failure_trace)
    return Fig13Result(
        success_original=s_orig,
        success_recovered=s_rec,
        failure_original=f_orig,
        failure_recovered=f_rec,
    )


@dataclass
class FingerprintAccuracyResult:
    """Closed-world accuracy, with and without DDIO."""

    accuracy_ddio: float
    accuracy_no_ddio: float
    sites: list[str]
    trials_per_site: int

    def format_rows(self) -> list[str]:
        return [
            f"Section V: website fingerprinting over {len(self.sites)} sites, "
            f"{self.trials_per_site} trials/site",
            f"  accuracy with DDIO:    {self.accuracy_ddio:.1%}  (paper: 89.7%)",
            f"  accuracy without DDIO: {self.accuracy_no_ddio:.1%}  (paper: 86.5%)",
        ]


def run_fingerprint_accuracy(
    config: MachineConfig | None = None,
    train_loads: int = 3,
    trials_per_site: int = 4,
    huge_pages: int = 16,
    trace_length: int = 100,
    seed: int = 77,
    noise_pps: float = 350.0,
) -> FingerprintAccuracyResult:
    """Train + evaluate the attack with DDIO on, then off.

    ``noise_pps`` adds background traffic (other flows on the host) during
    every capture — the realism term that keeps accuracy below 100%.
    Without DDIO the spy also probes with the payload-lag delay, which adds
    its own noise (the paper's 89.7% -> 86.5% drop).
    """
    from repro.net.traffic import PoissonNoise

    corpus = WebsiteCorpus()
    accuracies: dict[bool, float] = {}
    for ddio in (True, False):
        machine, collector = _fingerprint_rig(
            config, ddio=ddio, trace_length=trace_length, huge_pages=huge_pages
        )
        if noise_pps > 0:
            noise = PoissonNoise(
                rate_pps=noise_pps,
                rng=random.Random(seed + (1 if ddio else 2)),
            )
            noise.attach(machine, machine.nic)
        attack = WebFingerprintAttack(
            collector, corpus, rng=random.Random(seed)
        )
        attack.train(loads_per_site=train_loads)
        accuracies[ddio] = attack.evaluate(trials_per_site=trials_per_site)
    return FingerprintAccuracyResult(
        accuracy_ddio=accuracies[True],
        accuracy_no_ddio=accuracies[False],
        sites=corpus.names(),
        trials_per_site=trials_per_site,
    )
