"""Fig. 13 and the Section V accuracy numbers: web fingerprinting.

* :func:`run_fig13_login` — hotcrp.com login: original vs spy-recovered
  packet-size vectors for a successful and a failed login (the four panels
  of Fig. 13).
* :func:`run_fingerprint_accuracy` — the 5-site closed world: train on a
  few loads per site, then classify victim loads, with DDIO on or off
  (paper: 89.7% with DDIO, 86.5% without).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.correlation import CorrelationClassifier
from repro.attack.fingerprint import (
    CaptureConfig,
    TraceCollector,
    WebFingerprintAttack,
    recovered_vs_original,
)
from repro.attack.setup import MonitorFactory
from repro.attack.timing import calibrate_threshold
from repro.core.config import DDIOConfig, MachineConfig
from repro.core.machine import Machine
from repro.net.traffic import PoissonNoise
from repro.net.websites import LoginTraceFactory, WebsiteCorpus
from repro.runner import ExperimentRunner, Shard, TrialSpec, default_runner
from repro.telemetry import current_telemetry
from repro.telemetry.quality import quality_registry, record_confusion


def _fingerprint_rig(
    config: MachineConfig | None,
    ddio: bool,
    huge_pages: int = 16,
    trace_length: int = 100,
):
    cfg = config or MachineConfig().bench_scale()
    cfg = MachineConfig(
        cache=cfg.cache,
        ddio=DDIOConfig(enabled=ddio),
        ring=cfg.ring,
        link=cfg.link,
        timing=cfg.timing,
        processor=cfg.processor,
        memory_bytes=cfg.memory_bytes,
        numa_nodes=cfg.numa_nodes,
        seed=cfg.seed,
        cache_backend=cfg.cache_backend,
    )
    machine = Machine(cfg)
    machine.install_nic()
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    factory = MonitorFactory(machine, spy, threshold, huge_pages=huge_pages)
    chaser = factory.full_ring_chaser()
    capture = CaptureConfig(
        trace_length=trace_length,
        # Without DDIO the payload lags the header (driver read at
        # +io_to_driver_latency, stack payload touch a further
        # +payload_touch_delay); the spy must wait out both before sizing,
        # which is exactly what costs it accuracy.
        size_wait=0
        if ddio
        else cfg.timing.payload_touch_delay + cfg.timing.io_to_driver_latency,
    )
    collector = TraceCollector(machine, chaser, capture)
    return machine, collector


@dataclass
class Fig13Result:
    """Original vs recovered block-size vectors for the two login outcomes."""

    success_original: list[int]
    success_recovered: list[int]
    failure_original: list[int]
    failure_recovered: list[int]

    @staticmethod
    def _match_fraction(original: list[int], recovered: list[int]) -> float:
        n = min(len(original), len(recovered))
        if n == 0:
            return 0.0
        same = sum(1 for i in range(n) if original[i] == recovered[i])
        return same / n

    def headline_metrics(self) -> dict[str, float]:
        return {
            "success_match_fraction": self._match_fraction(
                self.success_original, self.success_recovered
            ),
            "failure_match_fraction": self._match_fraction(
                self.failure_original, self.failure_recovered
            ),
        }

    def format_rows(self) -> list[str]:
        return [
            "Fig.13: hotcrp login traces (first 100 packets, block sizes)",
            f"  success: {len(self.success_recovered)} packets recovered, "
            f"exact-match {self._match_fraction(self.success_original, self.success_recovered):.0%}",
            f"  failure: {len(self.failure_recovered)} packets recovered, "
            f"exact-match {self._match_fraction(self.failure_original, self.failure_recovered):.0%}",
            f"  success head (orig): {self.success_original[:24]}",
            f"  success head (rec.): {self.success_recovered[:24]}",
            f"  failure head (orig): {self.failure_original[:24]}",
            f"  failure head (rec.): {self.failure_recovered[:24]}",
        ]


def run_fig13_login(
    config: MachineConfig | None = None,
    huge_pages: int = 16,
    trace_length: int = 100,
    seed: int = 9,
) -> Fig13Result:
    """Capture a successful and a failed login through the side channel."""
    machine, collector = _fingerprint_rig(
        config, ddio=True, huge_pages=huge_pages, trace_length=trace_length
    )
    logins = LoginTraceFactory()
    rng = random.Random(seed)
    success_trace = logins.success(rng)
    failure_trace = logins.failure(rng)
    s_orig, s_rec = recovered_vs_original(collector, success_trace)
    f_orig, f_rec = recovered_vs_original(collector, failure_trace)
    return Fig13Result(
        success_original=s_orig,
        success_recovered=s_rec,
        failure_original=f_orig,
        failure_recovered=f_rec,
    )


@dataclass
class FingerprintAccuracyResult:
    """Closed-world accuracy, with and without DDIO."""

    accuracy_ddio: float
    accuracy_no_ddio: float
    sites: list[str]
    trials_per_site: int
    #: (true site, predicted site) -> count, per DDIO mode.  Defaults keep
    #: results pickled before this field existed loadable.
    confusion_ddio: dict = field(default_factory=dict)
    confusion_no_ddio: dict = field(default_factory=dict)

    def headline_metrics(self) -> dict[str, float]:
        return {
            "accuracy_ddio": self.accuracy_ddio,
            "accuracy_no_ddio": self.accuracy_no_ddio,
        }

    def format_rows(self) -> list[str]:
        return [
            f"Section V: website fingerprinting over {len(self.sites)} sites, "
            f"{self.trials_per_site} trials/site",
            f"  accuracy with DDIO:    {self.accuracy_ddio:.1%}  (paper: 89.7%)",
            f"  accuracy without DDIO: {self.accuracy_no_ddio:.1%}  (paper: 86.5%)",
        ]


def _capture_rng(trial_seed: int, seed: int, phase: str) -> random.Random:
    """A ``random.Random`` bound to one trial.

    String seeding hashes via SHA-512, so the stream is stable across
    processes and platforms — unlike ``hash()``-based mixing.
    """
    return random.Random(f"{trial_seed}:{seed}:{phase}")


def _noisy_rig(
    config: MachineConfig,
    ddio: bool,
    params: dict,
    trial_seed: int,
    phase: str,
):
    """Build a fingerprint rig with this trial's background-noise stream."""
    machine, collector = _fingerprint_rig(
        config,
        ddio=ddio,
        huge_pages=params["huge_pages"],
        trace_length=params["trace_length"],
    )
    if params["noise_pps"] > 0:
        noise = PoissonNoise(
            rate_pps=params["noise_pps"],
            rng=_capture_rng(trial_seed, params["seed"], phase + ":noise"),
        )
        noise.attach(machine, machine.nic)
    return machine, collector


def _accuracy_train_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Offline phase: one trial per DDIO mode, returning the fitted
    per-site representatives (as plain float lists, so they are both
    picklable and stable-hashable for the eval phase's cache key)."""
    out = []
    for index, trial_seed in zip(range(shard.start, shard.stop), shard.trial_seeds):
        ddio = params["ddio_modes"][index]
        machine, collector = _noisy_rig(config, ddio, params, trial_seed, "train")
        attack = WebFingerprintAttack(
            collector,
            WebsiteCorpus(),
            rng=_capture_rng(trial_seed, params["seed"], "train"),
        )
        attack.train(loads_per_site=params["train_loads"])
        out.append(
            {
                "ddio": ddio,
                "representatives": {
                    site: [float(x) for x in rep]
                    for site, rep in attack.classifier.representatives.items()
                },
            }
        )
    return out


def _classifier_for(params: dict, ddio: bool) -> CorrelationClassifier:
    classifier = CorrelationClassifier(
        trace_length=params["trace_length"], max_lag=params["max_lag"]
    )
    reps = next(t["representatives"] for t in params["trained"] if t["ddio"] == ddio)
    classifier.representatives = {
        name: np.asarray(rep, dtype=float) for name, rep in reps.items()
    }
    return classifier


def _accuracy_eval_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Online phase: each trial is one victim page load, *paired* across
    the two DDIO settings — the identical load is captured on a DDIO rig
    and a no-DDIO rig and each capture is classified against its own
    training representatives.  Pairing cancels trace-sampling variance, so
    the DDIO-on/off accuracy gap reflects channel quality (the no-DDIO
    payload lag), exactly the comparison Section V makes."""
    corpus = WebsiteCorpus()
    tallies = []
    for index, trial_seed in zip(range(shard.start, shard.stop), shard.trial_seeds):
        site, _round = params["units"][index]
        rng = _capture_rng(trial_seed, params["seed"], "eval")
        load_trace = corpus.get(site).sample(rng)
        tally = {"site": site}
        for ddio in (True, False):
            machine, collector = _noisy_rig(
                config, ddio, params, trial_seed, f"eval:{ddio}"
            )
            trace = collector.capture_load(load_trace)
            classifier = _classifier_for(params, ddio)
            predicted = classifier.classify(trace)
            tally[ddio] = predicted == site
            tally[f"pred_{ddio}"] = predicted
        tallies.append(tally)
    return tallies


def run_fingerprint_accuracy(
    config: MachineConfig | None = None,
    train_loads: int = 3,
    trials_per_site: int = 4,
    huge_pages: int = 16,
    trace_length: int = 100,
    seed: int = 77,
    noise_pps: float = 350.0,
    max_lag: int = 8,
    runner: ExperimentRunner | None = None,
) -> FingerprintAccuracyResult:
    """Train + evaluate the attack with DDIO on, then off.

    ``noise_pps`` adds background traffic (other flows on the host) during
    every capture — the realism term that keeps accuracy below 100%.
    Without DDIO the spy also probes with the payload-lag delay, which adds
    its own noise (the paper's 89.7% -> 86.5% drop).

    Runs as a two-phase pipeline through ``runner``: an offline *train*
    phase (one shard per DDIO mode) producing per-site representatives,
    then an online *eval* phase where every victim page load is an
    independent trial on its own rig.  Total capture work matches the old
    serial loop; both phases parallelise, and each caches separately.
    """
    base = config or MachineConfig().bench_scale()
    runner = runner or default_runner()
    corpus = WebsiteCorpus()
    sites = corpus.names()
    ddio_modes = [True, False]
    shared_params = {
        "train_loads": train_loads,
        "trace_length": trace_length,
        "huge_pages": huge_pages,
        "noise_pps": noise_pps,
        "seed": seed,
        "max_lag": max_lag,
    }

    train_spec = TrialSpec(
        experiment="accuracy-train",
        n_trials=len(ddio_modes),
        trials_per_shard=1,
        params={"ddio_modes": ddio_modes, **shared_params},
    )
    trained = runner.run(
        train_spec,
        base,
        _accuracy_train_shard,
        lambda shard_results: [entry for sub in shard_results for entry in sub],
    )

    units = [
        (site, trial) for site in sites for trial in range(trials_per_site)
    ]
    eval_spec = TrialSpec(
        experiment="accuracy-eval",
        n_trials=len(units),
        trials_per_shard=max(1, math.ceil(len(units) / 16)),
        params={
            "units": [list(unit) for unit in units],
            "trained": trained,
            "trials_per_site": trials_per_site,
            **shared_params,
        },
    )

    def reduce(shard_results: list) -> FingerprintAccuracyResult:
        correct = {True: 0, False: 0}
        confusion: dict[bool, dict] = {True: {}, False: {}}
        total = 0
        for tally in (t for sub in shard_results for t in sub):
            total += 1
            for ddio in (True, False):
                correct[ddio] += bool(tally[ddio])
                predicted = tally.get(f"pred_{ddio}")
                if predicted is not None:  # absent in pre-confusion caches
                    cell = (tally["site"], predicted)
                    confusion[ddio][cell] = confusion[ddio].get(cell, 0) + 1
        registry = quality_registry(current_telemetry())
        if registry is not None:
            record_confusion(registry, confusion[True], "ddio")
            record_confusion(registry, confusion[False], "no_ddio")
        return FingerprintAccuracyResult(
            accuracy_ddio=correct[True] / max(1, total),
            accuracy_no_ddio=correct[False] / max(1, total),
            sites=sites,
            trials_per_site=trials_per_site,
            confusion_ddio=confusion[True],
            confusion_no_ddio=confusion[False],
        )

    return runner.run(eval_spec, base, _accuracy_eval_shard, reduce)
