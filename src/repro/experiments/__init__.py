"""Experiment harnesses — one per table/figure of the paper's evaluation.

Each harness builds the machine, runs the attack or workload, and returns a
structured result whose ``format_rows()`` prints the same rows/series the
paper reports.  Benchmarks (``benchmarks/``) and examples (``examples/``)
are thin wrappers over these, so the numbers in EXPERIMENTS.md are
regenerable from a single place.

Default parameters are scaled to finish in CI time; every harness accepts
the paper-scale parameters too (see each module's docstring and
EXPERIMENTS.md for the exact scaling used).
"""

from repro.experiments.mapping import run_fig5, run_fig6
from repro.experiments.footprint import run_fig7, run_fig8
from repro.experiments.sequencing import run_table1
from repro.experiments.covert_channel import (
    run_fig10,
    run_fig11,
    run_fig12_chase,
    run_fig12_multibuffer,
)
from repro.experiments.fingerprinting import run_fig13_login, run_fingerprint_accuracy
from repro.experiments.defense_eval import run_fig14, run_fig15, run_fig16
from repro.experiments.ablation import (
    run_ddio_ways_ablation,
    run_probe_rate_ablation,
    run_randomization_interval_ablation,
    run_ring_size_ablation,
)
from repro.experiments.noise_ablation import run_noise_ablation
from repro.experiments.drift_resilience import run_drift_resilience
from repro.experiments.randomized_cache import run_randomized_cache

__all__ = [
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_table1",
    "run_fig10",
    "run_fig11",
    "run_fig12_chase",
    "run_fig12_multibuffer",
    "run_fig13_login",
    "run_fingerprint_accuracy",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_ring_size_ablation",
    "run_randomization_interval_ablation",
    "run_ddio_ways_ablation",
    "run_probe_rate_ablation",
    "run_noise_ablation",
    "run_drift_resilience",
    "run_randomized_cache",
]
