"""Randomized-index cache backends vs the full Packet Chasing pipeline.

The defense evaluation of Figs. 14-16 measures *performance* cost; this
experiment measures *security* benefit, for the two randomized-index cache
designs modelled in :mod:`repro.cache.backends` — a CEASER-shaped keyed
index with epoch re-keying (``keyed``) and a ScatterCache-shaped skewed
index (``skewed``) — next to the paper's own software defenses (adaptive
DDIO partitioning, partial ring randomization) on the modulo baseline.

Every variant runs the same four attack legs end to end:

* **build** — timing-only eviction-set construction for one page-aligned
  set index (:meth:`EvictionSetBuilder.cluster_index_report`).  Under a
  randomized index the huge-page set-index bits stop predicting placement,
  so group-testing degrades gracefully to a low-confidence report instead
  of a monitor list — the cost/benefit the CEASER/ScatterCache papers
  argue for.
* **sequence** — Table-I-style ring-order recovery with oracle-placed
  monitors (placement via the live mapping, so the leg isolates *channel*
  degradation: epoch re-keys moving the ring mid-run, skewed placement
  splitting a buffer across partitions).
* **covert** — Fig.10/11-style binary covert channel bandwidth and error.
* **fingerprint** — a reduced Section-V closed-world accuracy run (the
  classifier sees whatever the degraded channel still leaks).

Expected shape (EXPERIMENTS.md records measured numbers): modulo
reproduces the attack; ``keyed`` preserves it *within* an epoch but decays
with re-key rate; ``skewed`` degrades construction hardest; the software
defenses sit between, degrading sequence knowledge but not placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.analysis.levenshtein import cyclic_levenshtein
from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
from repro.attack.evictionset import (
    EvictionSetBuilder,
    OracleEvictionSetBuilder,
    page_aligned_set_indices,
)
from repro.attack.groundtruth import true_group_sequence
from repro.attack.sequencer import Sequencer, SequencerConfig
from repro.attack.setup import MonitorFactory, unique_buffer_positions
from repro.attack.timing import calibrate_threshold
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.defense.partitioning import AdaptivePartition
from repro.defense.randomization import PartialRandomizer
from repro.experiments.fingerprinting import run_fingerprint_accuracy
from repro.runner import default_runner


@dataclass
class VariantMetrics:
    """All four attack legs for one cache/defense variant."""

    name: str
    backend: str
    #: leg: eviction-set construction (one page-aligned set index)
    build_seconds: float = 0.0
    build_confidence: float = 0.0
    failed_reductions: int = 0
    #: leg: ring sequence recovery
    seq_error_rate: float = 1.0
    seq_distance: int = 0
    #: leg: binary covert channel
    covert_bps: float = 0.0
    covert_error: float = 1.0
    #: leg: closed-world fingerprinting (NaN when the variant's defense
    #: cannot be expressed through MachineConfig alone)
    fingerprint_accuracy: float = math.nan
    #: re-key epochs the sequence leg observed (keyed backend only)
    rekeys: int = 0
    lines_remapped: int = 0
    lines_dropped: int = 0


@dataclass
class RandomizedCacheResult:
    """Per-variant pipeline metrics, modulo baseline first."""

    variants: list[VariantMetrics] = field(default_factory=list)

    def by_name(self, name: str) -> VariantMetrics:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(name)

    def headline_metrics(self) -> dict[str, float]:
        headline: dict[str, float] = {}
        for v in self.variants:
            key = v.name.replace("-", "_")
            headline[f"{key}_build_confidence"] = v.build_confidence
            headline[f"{key}_seq_error"] = v.seq_error_rate
            headline[f"{key}_covert_error"] = v.covert_error
            headline[f"{key}_covert_bps"] = v.covert_bps
            if not math.isnan(v.fingerprint_accuracy):
                headline[f"{key}_fp_accuracy"] = v.fingerprint_accuracy
        return headline

    def format_rows(self) -> list[str]:
        rows = ["Randomized-cache defense sweep (full attack pipeline per variant)"]
        rows.append(
            "  variant       build(ms)  conf   fail   seq-err   covert bps / err"
            "    fp-acc   rekeys"
        )
        for v in self.variants:
            fp = "     —" if math.isnan(v.fingerprint_accuracy) else (
                f"{v.fingerprint_accuracy:6.1%}"
            )
            rows.append(
                f"  {v.name:13s} {v.build_seconds * 1e3:8.2f}  {v.build_confidence:4.2f}"
                f"   {v.failed_reductions:4d}   {v.seq_error_rate:6.1%}"
                f"   {v.covert_bps:8.1f} / {v.covert_error:5.1%}"
                f"   {fp}   {v.rekeys:4d}"
            )
        rows.append(
            "  (conf = fraction of expected conflict groups the timing builder"
            " resolved; rekeys = mapping epochs during the sequence leg)"
        )
        return rows


def _install_defense(machine: Machine, variant: str, partial_interval: int) -> None:
    if variant == "adaptive":
        AdaptivePartition().install(machine)
    elif variant == "partial-rand":
        machine.driver.randomizer = PartialRandomizer(partial_interval)


def _build_leg(
    cfg: MachineConfig, metrics: VariantMetrics, huge_pages: int
) -> None:
    """Timing-only eviction-set construction cost for one set index."""
    machine = Machine(cfg)
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    builder = EvictionSetBuilder(spy, threshold, huge_pages=huge_pages)
    set_index = page_aligned_set_indices(machine.llc.geometry)[0]
    start = machine.clock.now
    report = builder.cluster_index_report(set_index)
    metrics.build_seconds = machine.clock.seconds(machine.clock.now - start)
    metrics.build_confidence = report.confidence
    metrics.failed_reductions = report.failed_reductions


def _sequence_leg(
    cfg: MachineConfig,
    metrics: VariantMetrics,
    variant: str,
    partial_interval: int,
    n_monitored: int,
    n_samples: int,
    packet_rate: float,
    huge_pages: int,
) -> None:
    """Ring-order recovery with monitors placed via the live mapping."""
    from repro.net.traffic import ConstantStream

    machine = Machine(cfg)
    machine.install_nic()
    _install_defense(machine, variant, partial_interval)
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=huge_pages)
    llc = machine.llc
    positions = unique_buffer_positions(machine)[:n_monitored]
    ring = machine.ring
    ordered = ring.buffers[ring.head:] + ring.buffers[: ring.head]
    groups = [
        builder.group_for_flat(
            llc.flat_set_of(ordered[pos].dma_paddr), label=f"seq@{pos}"
        )
        for pos in positions
    ]
    sender = ConstantStream(size=64, rate_pps=packet_rate, protocol="broadcast")
    sender.attach(machine, machine.nic)
    epoch_before = llc.mapping_epoch
    sequencer = Sequencer(
        spy, groups, SequencerConfig(n_samples=n_samples, wait_cycles=2000)
    )
    recovered, _trace = sequencer.recover()
    sender.stop()
    truth = true_group_sequence(machine, spy, sequencer.groups)
    distance = cyclic_levenshtein(recovered, truth)
    metrics.seq_distance = distance
    metrics.seq_error_rate = distance / len(truth) if truth else 1.0
    metrics.rekeys = llc.mapping_epoch - epoch_before
    snap = llc.mapping.stats.snapshot()
    metrics.lines_remapped = snap["lines_remapped"]
    metrics.lines_dropped = snap["lines_dropped"]


def _covert_leg(
    cfg: MachineConfig,
    metrics: VariantMetrics,
    variant: str,
    partial_interval: int,
    n_symbols: int,
    packet_rate: float,
    wait_cycles: int,
    huge_pages: int,
    seed: int,
) -> None:
    """Binary covert channel through one uniquely-mapped ring buffer."""
    from repro.analysis.lfsr import lfsr_symbols

    machine = Machine(cfg)
    machine.install_nic()
    _install_defense(machine, variant, partial_interval)
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    factory = MonitorFactory(machine, spy, threshold, huge_pages=huge_pages)
    position = unique_buffer_positions(machine)[0]
    receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
    trojan = CovertTrojan(
        alphabet=2, ring_size=len(machine.ring.buffers), rate_pps=packet_rate
    )
    symbols = lfsr_symbols(n_symbols, 2, seed=seed)
    report = run_covert_channel(machine, receiver, trojan, symbols, wait_cycles)
    metrics.covert_bps = report.bandwidth_bps
    metrics.covert_error = report.error_rate


def run_randomized_cache(
    config: MachineConfig | None = None,
    keyed_epoch: int = 20_000,
    skewed_partitions: int = 2,
    partial_interval: int = 1000,
    n_monitored: int = 12,
    n_samples: int = 600,
    n_symbols: int = 24,
    packet_rate: float = 300_000.0,
    wait_cycles: int = 30_000,
    huge_pages: int = 8,
    build_huge_pages: int = 2,
    fingerprint: bool = True,
    seed: int = 0x5EED,
    runner=None,
) -> RandomizedCacheResult:
    """Sweep the full attack pipeline over index backends and defenses.

    Variants: the three index backends (``modulo`` is the bit-identical
    baseline) plus the paper's adaptive partitioning and partial ring
    randomization running on modulo — so the randomized-cache designs are
    read against the defenses the paper itself evaluated (Figs. 14-16).

    ``fingerprint=False`` skips the (slowest) classifier leg; defense
    variants that live outside :class:`MachineConfig` (partition /
    randomizer installs) report NaN there either way, since the
    fingerprint harness builds its machines from config alone.

    The whole sweep runs through ``runner.run_cached`` so a warm rerun is
    a cache hit and every invocation lands in the run ledger with the
    composite's headline metrics (the nested fingerprint phases cache and
    record separately, under their own names).
    """
    base = config or MachineConfig().scaled_down()
    runner = runner or default_runner()
    params = {
        "keyed_epoch": keyed_epoch,
        "skewed_partitions": skewed_partitions,
        "partial_interval": partial_interval,
        "n_monitored": n_monitored,
        "n_samples": n_samples,
        "n_symbols": n_symbols,
        "packet_rate": packet_rate,
        "wait_cycles": wait_cycles,
        "huge_pages": huge_pages,
        "build_huge_pages": build_huge_pages,
        "fingerprint": fingerprint,
        "seed": seed,
    }
    return runner.run_cached(
        "randomized-cache",
        base,
        params,
        lambda: _run_variant_sweep(base, runner=runner, **params),
    )


def _run_variant_sweep(
    base: MachineConfig,
    keyed_epoch: int,
    skewed_partitions: int,
    partial_interval: int,
    n_monitored: int,
    n_samples: int,
    n_symbols: int,
    packet_rate: float,
    wait_cycles: int,
    huge_pages: int,
    build_huge_pages: int,
    fingerprint: bool,
    seed: int,
    runner,
) -> RandomizedCacheResult:
    variants: list[tuple[str, str]] = [
        ("modulo", "modulo"),
        ("keyed", f"keyed:epoch={keyed_epoch}"),
        ("skewed", f"skewed:partitions={skewed_partitions}"),
        ("adaptive", "modulo"),
        ("partial-rand", "modulo"),
    ]
    result = RandomizedCacheResult()
    for name, backend in variants:
        cfg = replace(base, cache_backend=backend)
        metrics = VariantMetrics(name=name, backend=backend)
        _build_leg(cfg, metrics, build_huge_pages)
        _sequence_leg(
            cfg,
            metrics,
            name,
            partial_interval,
            n_monitored,
            n_samples,
            packet_rate,
            huge_pages,
        )
        _covert_leg(
            cfg,
            metrics,
            name,
            partial_interval,
            n_symbols,
            packet_rate,
            wait_cycles,
            huge_pages,
            seed,
        )
        if fingerprint and name in ("modulo", "keyed", "skewed"):
            accuracy = run_fingerprint_accuracy(
                config=cfg,
                train_loads=1,
                trials_per_site=1,
                huge_pages=huge_pages,
                trace_length=50,
                seed=seed,
                runner=runner,
            )
            metrics.fingerprint_accuracy = accuracy.accuracy_ddio
        result.variants.append(metrics)
    return result
