"""Noise ablation: injected fault intensity vs covert bit recovery.

The paper's channel lives on a noisy machine: packets drop, rings
overflow, other tenants thrash the LLC, and the spy's own timer jitters.
The fault layer (:mod:`repro.faults`) makes each of those knobs explicit;
this ablation sweeps them *together* — one intensity multiplier applied
to the ``moderate`` profile — and measures how the single-buffer ternary
covert channel degrades, the robustness analogue of Fig. 11's capacity
curves.

Intensity 0 is the clean baseline (the fault plan is never built, so the
numbers are bit-identical to a run without the fault layer); intensity 2
doubles every probability and the co-runner rate of ``moderate``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.faults import get_profile
from repro.runner import ExperimentRunner, Shard, TrialSpec, default_runner


@dataclass
class NoiseAblationResult:
    """Covert-channel quality per fault-intensity level."""

    levels: list[float]
    error_rates: list[float]
    #: Total fault events injected at each level (all domains summed).
    faults_injected: list[int]

    def headline_metrics(self) -> dict[str, float]:
        if not self.error_rates:
            return {}
        return {
            "clean_error": self.error_rates[0],
            "heaviest_error": self.error_rates[-1],
            "faults_injected_total": float(sum(self.faults_injected)),
        }

    def format_rows(self) -> list[str]:
        rows = ["Ablation: fault-injection intensity vs covert bit recovery"]
        rows.append("  intensity   bit-accuracy   error   faults injected")
        for level, error, injected in zip(
            self.levels, self.error_rates, self.faults_injected
        ):
            rows.append(
                f"  {level:9.2f}   {1.0 - error:12.1%}   {error:5.1%}   {injected:15d}"
            )
        return rows


def _noise_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Intensity sweep points ``[start, stop)``."""
    from repro.analysis.lfsr import lfsr_symbols
    from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
    from repro.attack.setup import MonitorFactory, unique_buffer_positions
    from repro.attack.timing import calibrate_threshold

    out = []
    for index in range(shard.start, shard.stop):
        level = params["levels"][index]
        faults = get_profile(params["profile"]).scaled(level)
        machine = Machine(replace(config, faults=faults))
        machine.install_nic()
        spy = machine.new_process("spy")
        factory = MonitorFactory(
            machine, spy, calibrate_threshold(spy), huge_pages=params["huge_pages"]
        )
        position = unique_buffer_positions(machine)[0]
        receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
        trojan = CovertTrojan(
            alphabet=3, ring_size=len(machine.ring.buffers), rate_pps=400_000
        )
        symbols = lfsr_symbols(params["n_symbols"], 3)
        report = run_covert_channel(machine, receiver, trojan, symbols, 30_000)
        injected = 0 if machine.faults is None else machine.faults.stats.total()
        out.append({"error": report.error_rate, "injected": injected})
    return out


def run_noise_ablation(
    config: MachineConfig | None = None,
    levels: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0),
    profile: str = "moderate",
    n_symbols: int = 40,
    huge_pages: int = 4,
    runner: ExperimentRunner | None = None,
) -> NoiseAblationResult:
    """Sweep one intensity multiplier over ``profile`` and score the
    ternary covert channel at each point."""
    base = config or MachineConfig().scaled_down()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="ablation-noise",
        n_trials=len(levels),
        trials_per_shard=1,
        params={
            "levels": list(levels),
            "profile": profile,
            "n_symbols": n_symbols,
            "huge_pages": huge_pages,
        },
    )

    def reduce(shard_results: list) -> NoiseAblationResult:
        points = [point for sub in shard_results for point in sub]
        return NoiseAblationResult(
            levels=list(levels)[: len(points)],
            error_rates=[p["error"] for p in points],
            faults_injected=[p["injected"] for p in points],
        )

    return runner.run(spec, base, _noise_shard, reduce)
