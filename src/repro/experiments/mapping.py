"""Figs. 5 and 6: how ring buffers map onto the page-aligned cache sets.

Fig. 5 instruments one driver initialisation and plots, per page-aligned
cache set, how many of the 256 rx buffers start there (non-uniform: some
sets get 5 buffers, ~a third get none).  Fig. 6 repeats the experiment over
1000 driver initialisations and histograms the buffers-per-set counts.

Both are *ground-truth* measurements (the paper instruments the driver);
the attacker-side equivalent is the Fig. 7 footprint scan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.attack.evictionset import page_aligned_set_indices
from repro.attack.groundtruth import buffers_per_page_aligned_set
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.runner import ExperimentRunner, Shard, TrialSpec, default_runner
from repro.telemetry import current_telemetry


@dataclass
class Fig5Result:
    """Buffers mapped to each page-aligned set, one driver init."""

    counts: list[int]  # indexed by page-aligned set position (0..n_sets-1)
    n_buffers: int

    @property
    def n_page_aligned_sets(self) -> int:
        return len(self.counts)

    @property
    def empty_sets(self) -> int:
        return sum(1 for c in self.counts if c == 0)

    @property
    def max_buffers_on_one_set(self) -> int:
        return max(self.counts) if self.counts else 0

    def headline_metrics(self) -> dict[str, float]:
        n = self.n_page_aligned_sets or 1
        return {
            "empty_set_fraction": self.empty_sets / n,
            "max_buffers_on_one_set": float(self.max_buffers_on_one_set),
        }

    def format_rows(self) -> list[str]:
        rows = [
            f"Fig.5: {self.n_buffers} buffers over "
            f"{self.n_page_aligned_sets} page-aligned sets",
            f"  empty sets: {self.empty_sets} "
            f"({100 * self.empty_sets / self.n_page_aligned_sets:.1f}%)",
            f"  max buffers on one set: {self.max_buffers_on_one_set}",
        ]
        return rows


@dataclass
class Fig6Result:
    """Histogram of buffers-per-set over many driver initialisations."""

    histogram: dict[int, int]  # buffers-per-set value -> set count (total)
    instances: int
    sets_per_instance: int

    def frequency(self, k: int) -> float:
        """Average number of sets (out of ``sets_per_instance``) holding
        exactly ``k`` buffers, per instance — Fig. 6's x axis."""
        return self.histogram.get(k, 0) / self.instances

    def fraction_empty(self) -> float:
        """Fraction of page-aligned sets with no buffer (paper: ~35%)."""
        total = self.instances * self.sets_per_instance
        return self.histogram.get(0, 0) / total

    def headline_metrics(self) -> dict[str, float]:
        return {
            "empty_set_fraction": self.fraction_empty(),
            "sets_per_instance": float(self.sets_per_instance),
            "max_buffers_on_one_set": float(
                max(self.histogram) if self.histogram else 0
            ),
        }

    def format_rows(self) -> list[str]:
        rows = [f"Fig.6: {self.instances} driver initialisations"]
        for k in sorted(self.histogram):
            rows.append(
                f"  {k} buffer(s) -> {self.frequency(k):7.2f} sets/instance "
                f"(paper axis: frequency out of {self.sets_per_instance})"
            )
        rows.append(f"  empty-set fraction: {self.fraction_empty():.2%} (paper ~35%)")
        return rows


def _page_aligned_flat_sets(machine: Machine) -> list[int]:
    """All flat set ids a page-aligned address can map to."""
    geometry = machine.llc.geometry
    out = []
    for slice_id in range(geometry.n_slices):
        for index in page_aligned_set_indices(geometry, machine.physmem.page_size):
            out.append(slice_id * geometry.sets_per_slice + index)
    return out


def _traced_probe_window(
    config: MachineConfig, n_samples: int = 16, n_frames: int = 24
) -> None:
    """Append an attacker-side demonstration window to an active trace.

    Figs. 5/6 are pure ground-truth measurements — no packets, no probes —
    so a trace of them alone would show only driver-refill activity.  When
    tracing is enabled, this runs one short PRIME+PROBE window against a
    broadcast burst (the attacker-side counterpart from Fig. 7) so the
    exported trace contains the whole pipeline: prime, probe, dma-fill and
    driver-rx/refill spans plus per-probe miss counters.  Results of the
    mapping experiment are computed before this runs and are unaffected.
    """
    telemetry = current_telemetry()
    if telemetry is None or not telemetry.tracer.enabled:
        return
    from repro.attack.evictionset import OracleEvictionSetBuilder
    from repro.attack.primeprobe import ProbeMonitor
    from repro.attack.timing import calibrate_threshold
    from repro.net.packet import Frame

    with telemetry.tracer.span("trace-probe-window", cat="experiment"):
        machine = Machine(config)
        machine.install_nic()
        spy = machine.new_process("spy")
        threshold = calibrate_threshold(spy)
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups(block=0)
        monitor = ProbeMonitor(spy, groups)
        gap = max(1, machine.clock.cycles(1.0 / 200_000.0))
        for k in range(n_frames):
            machine.events.schedule(
                machine.clock.now + (k + 1) * gap,
                lambda m=machine: m.nic.deliver(Frame(size=128, protocol="broadcast")),
                label="trace-window-rx",
            )
        monitor.sample(n_samples, wait_cycles=max(gap, 20_000))


def run_fig5(config: MachineConfig | None = None) -> Fig5Result:
    """One driver initialisation; count buffers per page-aligned set."""
    base = config or MachineConfig().bench_scale()
    machine = Machine(base)
    machine.install_nic()
    mapping = buffers_per_page_aligned_set(machine)
    counts = [mapping.get(flat, 0) for flat in _page_aligned_flat_sets(machine)]
    result = Fig5Result(counts=counts, n_buffers=len(machine.ring.buffers))
    _traced_probe_window(base)
    return result


def _fig6_shard(config: MachineConfig, params: dict, shard: Shard) -> dict:
    """One shard of driver initialisations: a partial histogram.

    Each trial is an independent driver init whose machine seed comes from
    the shard's spawned seed stream, so the result is a pure function of
    ``(root_seed, shard index)`` — never of the worker count.
    """
    histogram: dict[int, int] = {}
    sets_per_instance = 0
    for trial_seed in shard.trial_seeds:
        machine = Machine(replace(config, seed=trial_seed))
        machine.install_nic()
        mapping = buffers_per_page_aligned_set(machine)
        flats = _page_aligned_flat_sets(machine)
        sets_per_instance = len(flats)
        for flat in flats:
            k = mapping.get(flat, 0)
            histogram[k] = histogram.get(k, 0) + 1
    return {"histogram": histogram, "sets_per_instance": sets_per_instance}


def _fig6_reduce(shard_results: list[dict], instances: int) -> Fig6Result:
    """Merge per-shard partial histograms (order-insensitive: sums only)."""
    histogram: dict[int, int] = {}
    sets_per_instance = 0
    for partial in shard_results:
        sets_per_instance = partial["sets_per_instance"] or sets_per_instance
        for k, count in partial["histogram"].items():
            histogram[k] = histogram.get(k, 0) + count
    return Fig6Result(
        histogram=histogram,
        instances=instances,
        sets_per_instance=sets_per_instance,
    )


def run_fig6(
    instances: int = 1000,
    config: MachineConfig | None = None,
    runner: ExperimentRunner | None = None,
) -> Fig6Result:
    """Repeat Fig. 5 over many initialisations and histogram the counts.

    The ``instances`` driver inits are independent trials; they run through
    the sharded ``runner`` (serial by default), at most 32 shards so the
    per-shard process overhead stays negligible.
    """
    if instances <= 0:
        raise ValueError("instances must be positive")
    base = config or MachineConfig().bench_scale()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="fig6",
        n_trials=instances,
        trials_per_shard=max(1, math.ceil(instances / 32)),
        params={"instances": instances},
    )
    result = runner.run(
        spec,
        base,
        _fig6_shard,
        lambda shard_results: _fig6_reduce(shard_results, instances),
    )
    _traced_probe_window(base)
    return result
