"""Figs. 7 and 8: the attacker-visible cache footprint of incoming packets.

Fig. 7 — monitor all page-aligned sets; the system is idle, then a remote
sender broadcasts frames: buffer-hosting sets light up, empty sets stay
dark.  Fig. 8 — repeat with constant-size streams of 1..4 cache blocks
while monitoring the sets of buffer blocks 0..3: activity appears on the
diagonal and above, with the one famous exception that 1-block packets
still light block 1 because the driver prefetches it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.evictionset import OracleEvictionSetBuilder
from repro.attack.primeprobe import ProbeMonitor
from repro.attack.timing import calibrate_threshold
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.net.traffic import ConstantStream


@dataclass
class Fig7Result:
    """Idle vs receiving activity on every page-aligned set."""

    idle_activity: list[float]
    receiving_activity: list[float]
    set_labels: list[str]

    def active_while_receiving(self, cutoff: float = 0.02) -> int:
        return sum(1 for a in self.receiving_activity if a >= cutoff)

    def active_while_idle(self, cutoff: float = 0.02) -> int:
        return sum(1 for a in self.idle_activity if a >= cutoff)

    def headline_metrics(self) -> dict[str, float]:
        n = len(self.set_labels) or 1
        idle = self.active_while_idle() / n
        receiving = self.active_while_receiving() / n
        return {
            "idle_active_fraction": idle,
            "receiving_active_fraction": receiving,
            "footprint_contrast": receiving - idle,
        }

    def format_rows(self) -> list[str]:
        n = len(self.set_labels)
        return [
            f"Fig.7: monitored {n} page-aligned sets",
            f"  active while idle:      {self.active_while_idle()} / {n}",
            f"  active while receiving: {self.active_while_receiving()} / {n}",
        ]


def _spy_machine(config: MachineConfig | None):
    machine = Machine(config or MachineConfig().bench_scale())
    machine.install_nic()
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    return machine, spy, threshold


def run_fig7(
    config: MachineConfig | None = None,
    n_samples: int = 400,
    wait_cycles: int = 20_000,
    packet_rate: float = 200_000.0,
    frame_size: int = 128,
    huge_pages: int = 16,
) -> Fig7Result:
    """Monitor all page-aligned sets: idle first, then receiving."""
    machine, spy, threshold = _spy_machine(config)
    builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=huge_pages)
    groups = builder.build_page_aligned_groups(block=0)
    monitor = ProbeMonitor(spy, groups)
    idle = monitor.sample(n_samples, wait_cycles)
    sender = ConstantStream(size=frame_size, rate_pps=packet_rate, protocol="broadcast")
    sender.attach(machine, machine.nic)
    receiving = monitor.sample(n_samples, wait_cycles)
    sender.stop()
    return Fig7Result(
        idle_activity=idle.activity_fraction(),
        receiving_activity=receiving.activity_fraction(),
        set_labels=idle.set_labels,
    )


@dataclass
class Fig8Result:
    """activity[block_row][size_run] = mean active fraction over hot sets.

    ``block_row`` is which buffer block's sets were monitored (0..3);
    ``size_run`` is the constant packet size being streamed, in blocks
    (1..4).  Expect activity at block_row < size_run... plus the block-1
    row lighting up for 1-block packets (driver prefetch).
    """

    activity: list[list[float]]
    active_cutoff: float = 0.05

    def lit(self, block_row: int, size_run: int) -> bool:
        return self.activity[block_row][size_run - 1] >= self.active_cutoff

    def headline_metrics(self) -> dict[str, float]:
        """Diagonal contrast: mean activity where packets *should* land
        (block < size, plus the prefetched block 1) minus where they
        shouldn't — the distinguishability Fig. 8 argues for."""
        expected: list[float] = []
        unexpected: list[float] = []
        for block_row, row in enumerate(self.activity):
            for col, value in enumerate(row):
                size_run = col + 1
                if block_row < size_run or block_row == 1:
                    expected.append(value)
                else:
                    unexpected.append(value)
        mean_expected = sum(expected) / len(expected) if expected else 0.0
        mean_unexpected = (
            sum(unexpected) / len(unexpected) if unexpected else 0.0
        )
        return {
            "expected_block_activity": mean_expected,
            "unexpected_block_activity": mean_unexpected,
            "footprint_contrast": mean_expected - mean_unexpected,
        }

    def format_rows(self) -> list[str]:
        rows = ["Fig.8: rows = monitored block, cols = packet size (blocks)"]
        header = "        " + "".join(f"{s}-blk  " for s in range(1, 5))
        rows.append(header)
        for b, row in enumerate(self.activity):
            cells = "".join(f"{v:5.2f}  " for v in row)
            rows.append(f"  blk{b}  {cells}")
        return rows


def run_fig8(
    config: MachineConfig | None = None,
    n_samples: int = 150,
    wait_cycles: int = 20_000,
    packet_rate: float = 200_000.0,
    huge_pages: int = 16,
    max_block: int = 4,
    n_buffers: int = 8,
) -> Fig8Result:
    """Constant-size runs of 1..max_block blocks vs block-0..3 monitors.

    Monitors blocks 0..3 of ``n_buffers`` sampled ring buffers and reports
    the mean activity per (monitored block, packet size) cell.
    """
    from repro.attack.setup import MonitorFactory, unique_buffer_positions

    machine, spy, threshold = _spy_machine(config)
    factory = MonitorFactory(machine, spy, threshold, huge_pages=huge_pages)
    positions = unique_buffer_positions(machine)[:n_buffers]
    if not positions:
        raise RuntimeError("no uniquely-mapped buffers to monitor")
    monitors = [
        factory.buffer_monitor(p, blocks=tuple(range(max_block)), include_alt=False)
        for p in positions
    ]
    # One flat monitor list: row-major (buffer, block).
    flat_sets = [m.blocks[b] for m in monitors for b in range(max_block)]
    probe = ProbeMonitor(spy, flat_sets)

    activity: list[list[float]] = [[0.0] * max_block for _ in range(max_block)]
    for size_blocks in range(1, max_block + 1):
        sender = ConstantStream(
            size=size_blocks * 64, rate_pps=packet_rate, protocol="broadcast"
        )
        sender.attach(machine, machine.nic)
        trace = probe.sample(n_samples, wait_cycles)
        sender.stop()
        machine.idle(500_000)
        fractions = trace.activity_fraction()
        for block_row in range(max_block):
            per_buffer = [
                fractions[i * max_block + block_row] for i in range(len(monitors))
            ]
            activity[block_row][size_blocks - 1] = sum(per_buffer) / len(per_buffer)
    return Fig8Result(activity=activity)
