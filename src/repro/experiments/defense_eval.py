"""Figs. 14, 15, 16: performance evaluation of the defenses.

* Fig. 14 — Nginx saturation throughput: adaptive partitioning vs DDIO
  across LLC sizes (paper: <= 2.7% loss).
* Fig. 15 — normalised DRAM read/write traffic and LLC miss rate of
  No-DDIO / DDIO / adaptive partitioning for file copy, TCP receive and
  Nginx.
* Fig. 16 — HTTP tail latency under the vulnerable baseline, fully
  randomized ring, partial randomization (1k / 10k packet intervals) and
  adaptive partitioning (paper: +41.8% p99 for full randomization, +3.1%
  for partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CacheGeometry, DDIOConfig, MachineConfig
from repro.core.machine import Machine
from repro.defense.partitioning import AdaptivePartition
from repro.defense.randomization import FullRandomizer, PartialRandomizer
from repro.perf.workloads import (
    FileCopyWorkload,
    NginxServer,
    TcpRecvWorkload,
)
from repro.perf.wrk import FIG16_PERCENTILES, LatencyReport, LoadGenerator


def _machine_variant(
    base: MachineConfig,
    ddio: bool = True,
    partition: bool = False,
    geometry: CacheGeometry | None = None,
) -> Machine:
    cfg = MachineConfig(
        cache=geometry or base.cache,
        ddio=DDIOConfig(enabled=ddio),
        ring=base.ring,
        link=base.link,
        timing=base.timing,
        processor=base.processor,
        memory_bytes=base.memory_bytes,
        numa_nodes=base.numa_nodes,
        seed=base.seed,
        cache_backend=base.cache_backend,
    )
    machine = Machine(cfg)
    machine.install_nic()
    if partition:
        AdaptivePartition().install(machine)
    return machine


# ----------------------------------------------------------------------
# Fig. 14
# ----------------------------------------------------------------------
@dataclass
class Fig14Result:
    """Nginx throughput per LLC size, DDIO vs adaptive partitioning."""

    llc_labels: list[str]
    ddio_krps: list[float]
    adaptive_krps: list[float]

    def loss_percent(self, i: int) -> float:
        if self.ddio_krps[i] == 0:
            return 0.0
        return 100.0 * (1 - self.adaptive_krps[i] / self.ddio_krps[i])

    def headline_metrics(self) -> dict[str, float]:
        losses = [self.loss_percent(i) for i in range(len(self.llc_labels))]
        return {
            "max_throughput_loss_percent": max(losses) if losses else 0.0,
            "peak_ddio_krps": max(self.ddio_krps) if self.ddio_krps else 0.0,
        }

    def format_rows(self) -> list[str]:
        rows = ["Fig.14: Nginx throughput (kilo-requests/s)"]
        rows.append("  LLC        DDIO      adaptive   loss")
        for i, label in enumerate(self.llc_labels):
            rows.append(
                f"  {label:9s} {self.ddio_krps[i]:8.2f}  {self.adaptive_krps[i]:8.2f}"
                f"   {self.loss_percent(i):5.2f}%  (paper: <=2.7%)"
            )
        return rows


def run_fig14(
    config: MachineConfig | None = None,
    geometries: list[tuple[str, CacheGeometry]] | None = None,
    n_requests: int = 600,
    n_files: int = 64,
    file_kb: int = 16,
) -> Fig14Result:
    """Closed-loop Nginx throughput across LLC sizes."""
    base = config or MachineConfig().scaled_down()
    if geometries is None:
        # Scaled stand-ins for the paper's 20 / 11 / 8 MB LLCs: same shape,
        # shrinking capacity.
        geometries = [
            ("20MB~", CacheGeometry(n_slices=8, sets_per_slice=256, ways=10)),
            ("11MB~", CacheGeometry(n_slices=8, sets_per_slice=128, ways=11)),
            ("8MB~", CacheGeometry(n_slices=8, sets_per_slice=128, ways=8)),
        ]
    labels, ddio_krps, adaptive_krps = [], [], []
    for label, geometry in geometries:
        labels.append(label)
        for partition, sink in ((False, ddio_krps), (True, adaptive_krps)):
            machine = _machine_variant(
                base, ddio=True, partition=partition, geometry=geometry
            )
            server = NginxServer(machine, n_files=n_files, file_kb=file_kb)
            report = server.serve_closed_loop(n_requests)
            sink.append(report.items_per_second(machine.clock.frequency_hz) / 1e3)
    return Fig14Result(
        llc_labels=labels, ddio_krps=ddio_krps, adaptive_krps=adaptive_krps
    )


# ----------------------------------------------------------------------
# Fig. 15
# ----------------------------------------------------------------------
@dataclass
class Fig15Cell:
    """One (workload, variant) measurement."""

    reads: int
    writes: int
    miss_rate: float


@dataclass
class Fig15Result:
    """Memory traffic + miss rate, normalised to the No-DDIO baseline."""

    workloads: list[str]
    variants: list[str]
    cells: dict[tuple[str, str], Fig15Cell] = field(default_factory=dict)

    def normalised(self, workload: str, variant: str) -> tuple[float, float, float]:
        """(norm reads, norm writes, miss rate) vs the No-DDIO baseline."""
        base = self.cells[(workload, "no-ddio")]
        cell = self.cells[(workload, variant)]
        nr = cell.reads / base.reads if base.reads else 0.0
        nw = cell.writes / base.writes if base.writes else 0.0
        return nr, nw, cell.miss_rate

    def headline_metrics(self) -> dict[str, float]:
        headline: dict[str, float] = {}
        for variant in ("ddio", "adaptive"):
            reads = [
                self.normalised(w, variant)[0]
                for w in self.workloads
                if (w, variant) in self.cells and (w, "no-ddio") in self.cells
            ]
            if reads:
                headline[f"{variant}_norm_reads_max"] = max(reads)
        return headline

    def format_rows(self) -> list[str]:
        rows = ["Fig.15: normalised memory traffic and LLC miss rate"]
        rows.append("  workload   variant     reads   writes   missrate")
        for w in self.workloads:
            for v in self.variants:
                nr, nw, mr = self.normalised(w, v)
                rows.append(
                    f"  {w:9s}  {v:10s} {nr:6.2f}   {nw:6.2f}   {mr:7.3f}"
                )
        return rows


def run_fig15(
    config: MachineConfig | None = None,
    copy_kb: int = 1024,
    tcp_packets: int = 1500,
    nginx_requests: int = 400,
) -> Fig15Result:
    """Run all three workloads under the three cache variants."""
    base = config or MachineConfig().scaled_down()
    variants = [
        ("no-ddio", dict(ddio=False, partition=False)),
        ("ddio", dict(ddio=True, partition=False)),
        ("adaptive", dict(ddio=True, partition=True)),
    ]
    result = Fig15Result(
        workloads=["filecopy", "tcp-recv", "nginx"],
        variants=[name for name, _ in variants],
    )
    for vname, opts in variants:
        for wname in result.workloads:
            machine = _machine_variant(base, **opts)
            if wname == "filecopy":
                report = FileCopyWorkload(machine, total_kb=copy_kb).run()
            elif wname == "tcp-recv":
                report = TcpRecvWorkload(machine, n_packets=tcp_packets).run()
            else:
                report = NginxServer(machine).serve_closed_loop(nginx_requests)
            result.cells[(wname, vname)] = Fig15Cell(
                reads=report.reads, writes=report.writes, miss_rate=report.llc_miss_rate
            )
    return result


# ----------------------------------------------------------------------
# Fig. 16
# ----------------------------------------------------------------------
@dataclass
class Fig16Result:
    """Tail latency per defense scheme."""

    schemes: list[str]
    reports: dict[str, LatencyReport] = field(default_factory=dict)

    def p99_overhead_percent(self, scheme: str) -> float:
        base = self.reports["baseline"].percentiles_ms()[99.0]
        this = self.reports[scheme].percentiles_ms()[99.0]
        return 100.0 * (this / base - 1) if base else 0.0

    def headline_metrics(self) -> dict[str, float]:
        headline: dict[str, float] = {}
        if "baseline" not in self.reports:
            return headline
        for scheme, key in (
            ("full-random", "full_random_p99_overhead_percent"),
            ("adaptive", "adaptive_p99_overhead_percent"),
        ):
            if scheme in self.reports:
                headline[key] = self.p99_overhead_percent(scheme)
        return headline

    def format_rows(self) -> list[str]:
        rows = ["Fig.16: HTTP response latency percentiles (ms)"]
        header = "  scheme               " + "".join(
            f"p{p:<7g}" for p in FIG16_PERCENTILES
        )
        rows.append(header)
        for scheme in self.schemes:
            pct = self.reports[scheme].percentiles_ms()
            cells = "".join(f"{pct[p]:<8.3f}" for p in FIG16_PERCENTILES)
            rows.append(f"  {scheme:20s} {cells}")
        for scheme in self.schemes:
            if scheme != "baseline":
                rows.append(
                    f"  p99 overhead {scheme:20s} {self.p99_overhead_percent(scheme):+6.1f}%"
                )
        return rows


def run_fig16(
    config: MachineConfig | None = None,
    n_requests: int = 1200,
    rate_rps: float = 140_000.0,
    partial_intervals: tuple[int, int] = (1000, 10_000),
) -> Fig16Result:
    """Open-loop load against Nginx under each defense scheme."""
    base = config or MachineConfig().scaled_down()
    schemes: list[tuple[str, dict, object]] = [
        ("baseline", dict(partition=False), None),
        ("full-random", dict(partition=False), FullRandomizer()),
        (
            f"partial-{partial_intervals[0]}",
            dict(partition=False),
            PartialRandomizer(partial_intervals[0]),
        ),
        (
            f"partial-{partial_intervals[1]}",
            dict(partition=False),
            PartialRandomizer(partial_intervals[1]),
        ),
        ("adaptive", dict(partition=True), None),
    ]
    result = Fig16Result(schemes=[name for name, _, _ in schemes])
    for name, opts, randomizer in schemes:
        machine = _machine_variant(base, ddio=True, **opts)
        server = NginxServer(machine)
        if randomizer is not None:
            machine.driver.randomizer = randomizer
            server.randomizer = randomizer
        generator = LoadGenerator(machine, server, rate_rps, n_requests)
        result.reports[name] = generator.run()
    return result
