"""Drift resilience: adaptive recovery vs time-varying fault schedules.

The static fault profiles hold every noise knob constant, so a spy that
calibrates once at startup stays calibrated forever.  Real co-located
noise is not so polite: thermal throttling ramps timer jitter, a tenant
wakes up mid-run, defenses re-key the cache index under the attacker.
This experiment drives the single-buffer ternary covert channel through
the ``drift`` profile under each time-varying :class:`FaultSchedule`
(ramp / step / periodic burst), on both the modulo baseline and a
re-keying ``keyed`` backend, with the adaptive supervisor off and on —
the robustness analogue of an A/B test for :mod:`repro.attack.adaptive`.

Expected shape (EXPERIMENTS.md records measured numbers): without
adaptation the spy's startup threshold goes stale as the schedule ramps
(every probe fires, symbols decode as saturated garbage) and a keyed
re-key leaves its monitors dark for the rest of the run; with adaptation
the supervisor recalibrates out of saturation and heals dark monitors,
holding error near the static-noise floor.  The ``burst`` schedule is
the control cell: calibration lands inside the first burst, so even the
static spy starts with a burst-proof threshold and the two arms tie.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import MachineConfig
from repro.faults import get_profile
from repro.runner import ExperimentRunner, Shard, TrialSpec, default_runner

#: Grid axes, in the deterministic order shards are numbered.
SCHEDULES = ("drift", "step", "burst")
MODES = (False, True)  # adaptive supervisor off, then on


@dataclass
class DriftCell:
    """One (schedule, backend, adaptive) cell of the grid."""

    schedule: str
    backend: str
    adaptive: bool
    error_rate: float = 1.0
    bandwidth_bps: float = 0.0
    symbols_decoded: int = 0
    faults_injected: int = 0
    rekeys: int = 0
    #: ``AdaptiveStats.to_dict()`` of the run's supervisor (empty when
    #: the adaptive arm is off — no supervisor is ever constructed).
    adaptive_totals: dict[str, int] = field(default_factory=dict)
    recoveries: list[tuple[int, str, str]] = field(default_factory=list)


@dataclass
class DriftResilienceResult:
    """Full grid: schedules x backends x {static, adaptive}."""

    cells: list[DriftCell] = field(default_factory=list)

    def cell(self, schedule: str, backend: str, adaptive: bool) -> DriftCell:
        for c in self.cells:
            if (
                c.schedule == schedule
                and c.backend == backend
                and c.adaptive == adaptive
            ):
                return c
        raise KeyError((schedule, backend, adaptive))

    def _arm_errors(self, schedule: str, adaptive: bool) -> list[float]:
        return [
            c.error_rate
            for c in self.cells
            if c.schedule == schedule and c.adaptive == adaptive
        ]

    def headline_metrics(self) -> dict[str, float]:
        headline: dict[str, float] = {}
        regressions = 0
        for schedule in SCHEDULES:
            static = self._arm_errors(schedule, adaptive=False)
            adaptive = self._arm_errors(schedule, adaptive=True)
            if not static or not adaptive:
                continue
            headline[f"{schedule}_static_error"] = sum(static) / len(static)
            headline[f"{schedule}_adaptive_error"] = sum(adaptive) / len(adaptive)
        for c in self.cells:
            if not c.adaptive:
                continue
            try:
                baseline = self.cell(c.schedule, c.backend, adaptive=False)
            except KeyError:
                continue
            if c.error_rate > baseline.error_rate:
                regressions += 1
        headline["adaptive_cell_regressions"] = float(regressions)
        return headline

    def context_metrics(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for c in self.cells:
            for key, value in c.adaptive_totals.items():
                name = f"adaptive.{key}"
                totals[name] = totals.get(name, 0.0) + float(value)
        totals["faults.injected"] = float(sum(c.faults_injected for c in self.cells))
        totals["cache.rekeys"] = float(sum(c.rekeys for c in self.cells))
        return totals

    def format_rows(self) -> list[str]:
        rows = ["Drift resilience: adaptive recovery vs time-varying fault schedules"]
        rows.append(
            "  schedule   backend              arm        error   decoded"
            "   rekeys   recoveries"
        )
        for c in self.cells:
            arm = "adaptive" if c.adaptive else "static"
            recov = sum(c.adaptive_totals.values()) if c.adaptive_totals else 0
            rows.append(
                f"  {c.schedule:9s}  {c.backend:19s}  {arm:8s}"
                f"  {c.error_rate:6.1%}   {c.symbols_decoded:7d}"
                f"   {c.rekeys:6d}   {recov:10d}"
            )
        for c in self.cells:
            for when, kind, detail in c.recoveries:
                rows.append(
                    f"  [{c.schedule}/{c.backend} @{when}] {kind}: {detail}"
                )
        rows.append(
            "  (recoveries = summed adaptive.* counters; the static arm"
            " never constructs a supervisor)"
        )
        return rows


def _drift_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """One grid cell per shard index, in ``params['grid']`` order."""
    from repro.analysis.lfsr import lfsr_symbols
    from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
    from repro.attack.setup import (
        MonitorFactory,
        adaptive_covert_supervisor,
        unique_buffer_positions,
    )
    from repro.attack.timing import calibrate_threshold
    from repro.core.machine import Machine

    out = []
    for index in range(shard.start, shard.stop):
        schedule, backend, adaptive = params["grid"][index]
        faults = replace(get_profile(params["profile"]), schedule=schedule)
        cfg = replace(
            config, faults=faults, cache_backend=backend, adaptive=adaptive
        )
        machine = Machine(cfg)
        machine.install_nic()
        spy = machine.new_process("spy")
        factory = MonitorFactory(
            machine, spy, calibrate_threshold(spy), huge_pages=params["huge_pages"]
        )
        position = unique_buffer_positions(machine)[0]
        supervisor = (
            adaptive_covert_supervisor(factory, [position]) if adaptive else None
        )
        receiver = CovertReceiver(
            spy, [factory.stream_monitors(position)], supervisor=supervisor
        )
        trojan = CovertTrojan(
            alphabet=3,
            ring_size=len(machine.ring.buffers),
            rate_pps=params["rate_pps"],
        )
        symbols = lfsr_symbols(params["n_symbols"], 3)
        report = run_covert_channel(
            machine, receiver, trojan, symbols, params["wait_cycles"]
        )
        cell = DriftCell(
            schedule=schedule,
            backend=backend,
            adaptive=adaptive,
            error_rate=report.error_rate,
            bandwidth_bps=report.bandwidth_bps,
            symbols_decoded=report.symbols_received,
            faults_injected=(
                0 if machine.faults is None else machine.faults.stats.total()
            ),
            rekeys=machine.llc.mapping_epoch,
        )
        if supervisor is not None:
            cell.adaptive_totals = supervisor.stats.to_dict()
            cell.recoveries = supervisor.history()
        out.append(cell)
    return out


def run_drift_resilience(
    config: MachineConfig | None = None,
    profile: str = "drift",
    backends: tuple[str, ...] = ("modulo", "keyed:epoch=6000"),
    n_symbols: int = 24,
    rate_pps: float = 400_000.0,
    wait_cycles: int = 30_000,
    huge_pages: int = 4,
    runner: ExperimentRunner | None = None,
) -> DriftResilienceResult:
    """A/B the adaptive supervisor across every time-varying schedule.

    Each grid cell is an independent shard (one machine, one covert run),
    so results are bit-identical at any ``--jobs N`` and the adaptive arm
    shares nothing with its static baseline.
    """
    base = config or MachineConfig().scaled_down()
    runner = runner or default_runner()
    grid = [
        (schedule, backend, adaptive)
        for schedule in SCHEDULES
        for backend in backends
        for adaptive in MODES
    ]
    spec = TrialSpec(
        experiment="drift-resilience",
        n_trials=len(grid),
        trials_per_shard=1,
        params={
            "grid": grid,
            "profile": profile,
            "n_symbols": n_symbols,
            "rate_pps": rate_pps,
            "wait_cycles": wait_cycles,
            "huge_pages": huge_pages,
        },
    )

    def reduce(shard_results: list) -> DriftResilienceResult:
        return DriftResilienceResult(
            cells=[cell for sub in shard_results for cell in sub]
        )

    return runner.run(spec, base, _drift_shard, reduce)
