"""Figs. 10, 11 and 12: the remote covert channel.

* Fig. 10 — a decoded trace of the ternary channel carrying "2012012...".
* Fig. 11 — bandwidth and error rate for binary/ternary encodings across
  probe rates (paper: ~1950 bps binary, 3095 bps ternary on a 256-ring).
* Fig. 12a/b — capacity scaling with 1..16 monitored buffers (to 24.5 kbps).
* Fig. 12c/d — full packet chasing: one symbol per packet; out-of-sync rate
  roughly flat with rate, error jumping once arrivals reorder near line
  rate.

Monitors are placed with the oracle factory (the setup stages are measured
separately in Figs. 7/8 and Table I benches); the *channel* itself — probe
scheduling, windowed decoding, ring arithmetic — runs fully measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclass_field

from repro.analysis.capacity import ChannelReport
from repro.analysis.lfsr import lfsr_symbols
from repro.attack.covert import (
    CovertReceiver,
    CovertTrojan,
    run_chasing_channel,
    run_covert_channel,
)
from repro.attack.setup import (
    MonitorFactory,
    adaptive_covert_supervisor,
    spaced_positions,
    unique_buffer_positions,
)
from repro.attack.timing import calibrate_threshold
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.runner import ExperimentRunner, Shard, TrialSpec, default_runner


def _covert_rig(config: MachineConfig | None, huge_pages: int = 16):
    machine = Machine(config or MachineConfig().bench_scale())
    machine.install_nic()
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    factory = MonitorFactory(machine, spy, threshold, huge_pages=huge_pages)
    return machine, spy, factory


@dataclass
class Fig10Result:
    """The decoded repeating-pattern trace."""

    sent: list[int]
    received: list[int]
    #: Adaptive-supervisor accounting (empty unless ``config.adaptive``).
    recoveries: list[tuple[int, str, str]] = dataclass_field(default_factory=list)
    confidence: float = 1.0
    adaptive_totals: dict[str, int] = dataclass_field(default_factory=dict)

    def headline_metrics(self) -> dict[str, float]:
        n = min(len(self.sent), len(self.received))
        matched = sum(
            1 for s, r in zip(self.sent[:n], self.received[:n]) if s == r
        )
        return {
            "match_fraction": matched / len(self.sent) if self.sent else 0.0,
            "symbols_received": float(len(self.received)),
        }

    def context_metrics(self) -> dict[str, float]:
        out = {f"adaptive.{k}": float(v) for k, v in self.adaptive_totals.items()}
        if self.adaptive_totals:
            out["adaptive.confidence"] = self.confidence
        return out

    def format_rows(self) -> list[str]:
        rows = [
            "Fig.10: ternary decode of repeating '201' pattern",
            f"  sent:     {''.join(map(str, self.sent))}",
            f"  received: {''.join(map(str, self.received))}",
        ]
        for time, kind, detail in self.recoveries:
            rows.append(f"  [adaptive @{time}] {kind}: {detail}")
        return rows


def run_fig10(
    config: MachineConfig | None = None,
    n_symbols: int = 21,
    packet_rate: float = 400_000.0,
    wait_cycles: int = 30_000,
    huge_pages: int = 16,
) -> Fig10Result:
    """Transmit '2012012...' over the ternary single-buffer channel."""
    machine, spy, factory = _covert_rig(config, huge_pages)
    ring_size = len(machine.ring.buffers)
    position = unique_buffer_positions(machine)[0]
    supervisor = None
    if machine.config.adaptive:
        supervisor = adaptive_covert_supervisor(factory, [position])
    receiver = CovertReceiver(
        spy, [factory.stream_monitors(position)], supervisor=supervisor
    )
    trojan = CovertTrojan(alphabet=3, ring_size=ring_size, rate_pps=packet_rate)
    sent = [(2, 0, 1)[i % 3] for i in range(n_symbols)]
    stream = trojan.build_stream(sent)
    stream.attach(machine, machine.nic)
    decoded = receiver.listen(len(sent), wait_cycles, alphabet=3)
    stream.stop()
    result = Fig10Result(sent=sent, received=[d.symbol for d in decoded])
    if supervisor is not None:
        result.recoveries = supervisor.history()
        result.confidence = supervisor.confidence
        result.adaptive_totals = supervisor.stats.to_dict()
    return result


@dataclass
class Fig11Result:
    """Bandwidth/error vs probe rate, binary and ternary."""

    probe_rates_khz: list[float]
    binary: list[ChannelReport]
    ternary: list[ChannelReport]

    def headline_metrics(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for name, reports in (("binary", self.binary), ("ternary", self.ternary)):
            if not reports:
                continue
            out[f"{name}_best_bps"] = max(r.bandwidth_bps for r in reports)
            out[f"{name}_mean_error"] = sum(r.error_rate for r in reports) / len(
                reports
            )
        return out

    def format_rows(self) -> list[str]:
        rows = ["Fig.11: covert channel capacity (single buffer)"]
        rows.append("  probe(kHz)  binary bps / err      ternary bps / err")
        for i, khz in enumerate(self.probe_rates_khz):
            b, t = self.binary[i], self.ternary[i]
            rows.append(
                f"  {khz:8.1f}  {b.bandwidth_bps:8.1f} / {b.error_rate:5.1%}"
                f"   {t.bandwidth_bps:8.1f} / {t.error_rate:5.1%}"
            )
        return rows


def _fig11_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Sweep points ``[start, stop)`` of the (alphabet, probe-rate) grid.

    Every point builds its own machine from the shared config, exactly as
    the serial loop did, so per-point results do not depend on which shard
    — or which worker — ran them.
    """
    reports = []
    for index in range(shard.start, shard.stop):
        alphabet, khz = params["points"][index]
        machine, spy, factory = _covert_rig(config, params["huge_pages"])
        ring_size = len(machine.ring.buffers)
        position = unique_buffer_positions(machine)[0]
        receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
        trojan = CovertTrojan(
            alphabet=alphabet, ring_size=ring_size, rate_pps=params["packet_rate"]
        )
        # The paper's probe rates assume a 256-slot ring (one symbol per
        # 256 packets); scale so samples-per-symbol stays comparable on
        # scaled rings.
        effective_khz = khz * 256.0 / ring_size
        wait = max(0, int(machine.clock.frequency_hz / (effective_khz * 1000)))
        symbols = lfsr_symbols(params["n_symbols"], alphabet, seed=params["seed"])
        reports.append(run_covert_channel(machine, receiver, trojan, symbols, wait))
    return reports


def run_fig11(
    config: MachineConfig | None = None,
    n_symbols: int = 60,
    packet_rate: float = 500_000.0,
    probe_rates_khz: tuple[float, ...] = (7.0, 14.0, 28.0),
    huge_pages: int = 16,
    seed: int = 0x51,
    runner: ExperimentRunner | None = None,
) -> Fig11Result:
    """Sweep probe rate for binary and ternary encodings.

    The (alphabet x probe rate) grid points are independent trials and run
    one per shard through ``runner``.
    """
    base = config or MachineConfig().bench_scale()
    runner = runner or default_runner()
    points = [
        (alphabet, khz) for alphabet in (2, 3) for khz in probe_rates_khz
    ]
    spec = TrialSpec(
        experiment="fig11",
        n_trials=len(points),
        trials_per_shard=1,
        params={
            "points": points,
            "n_symbols": n_symbols,
            "packet_rate": packet_rate,
            "huge_pages": huge_pages,
            "seed": seed,
        },
    )

    def reduce(shard_results: list) -> Fig11Result:
        reports = [report for sub in shard_results for report in sub]
        n = len(probe_rates_khz)
        return Fig11Result(
            probe_rates_khz=list(probe_rates_khz),
            binary=reports[:n],
            ternary=reports[n:],
        )

    return runner.run(spec, base, _fig11_shard, reduce)


@dataclass
class Fig12MultiBufferResult:
    """Capacity scaling with the number of monitored buffers."""

    n_buffers: list[int]
    reports: list[ChannelReport]

    def headline_metrics(self) -> dict[str, float]:
        if not self.reports:
            return {}
        return {
            "peak_kbps": max(r.bandwidth_bps for r in self.reports) / 1000.0,
            "mean_error": sum(r.error_rate for r in self.reports)
            / len(self.reports),
        }

    def format_rows(self) -> list[str]:
        rows = ["Fig.12a/b: multi-buffer channel"]
        rows.append("  buffers   kbps      error")
        for n, report in zip(self.n_buffers, self.reports):
            rows.append(
                f"  {n:7d}   {report.bandwidth_bps / 1000:6.2f}   {report.error_rate:6.1%}"
            )
        return rows


def _fig12_multibuffer_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Buffer-count sweep points ``[start, stop)``, one rig per point."""
    reports = []
    for index in range(shard.start, shard.stop):
        n = params["buffer_counts"][index]
        machine, spy, factory = _covert_rig(config, params["huge_pages"])
        ring_size = len(machine.ring.buffers)
        candidates = unique_buffer_positions(machine)
        positions = spaced_positions(candidates, n, ring_size)
        streams = [factory.stream_monitors(p) for p in positions]
        receiver = CovertReceiver(spy, streams)
        trojan = CovertTrojan(
            alphabet=3, ring_size=ring_size, n_streams=n, rate_pps=params["packet_rate"]
        )
        symbols = lfsr_symbols(params["n_symbols"], 3, seed=params["seed"])
        reports.append(
            run_covert_channel(
                machine, receiver, trojan, symbols, params["wait_cycles"]
            )
        )
    return reports


def run_fig12_multibuffer(
    config: MachineConfig | None = None,
    buffer_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    n_symbols: int = 64,
    packet_rate: float = 500_000.0,
    wait_cycles: int = 25_000,
    huge_pages: int = 16,
    seed: int = 0x33,
    runner: ExperimentRunner | None = None,
) -> Fig12MultiBufferResult:
    """Monitor 1..16 buffers spaced ring/n apart (ternary encoding)."""
    base = config or MachineConfig().bench_scale()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="fig12ab",
        n_trials=len(buffer_counts),
        trials_per_shard=1,
        params={
            "buffer_counts": list(buffer_counts),
            "n_symbols": n_symbols,
            "packet_rate": packet_rate,
            "wait_cycles": wait_cycles,
            "huge_pages": huge_pages,
            "seed": seed,
        },
    )
    return runner.run(
        spec,
        base,
        _fig12_multibuffer_shard,
        lambda shard_results: Fig12MultiBufferResult(
            n_buffers=list(buffer_counts),
            reports=[report for sub in shard_results for report in sub],
        ),
    )


@dataclass
class Fig12ChaseResult:
    """Full-sequence chasing channel across send rates."""

    rates_kbps: list[float]
    reports: list[ChannelReport]
    out_of_sync_rates: list[float]

    def headline_metrics(self) -> dict[str, float]:
        if not self.reports:
            return {}
        return {
            "peak_kbps": max(r.bandwidth_bps for r in self.reports) / 1000.0,
            "mean_error": sum(r.error_rate for r in self.reports)
            / len(self.reports),
            "mean_out_of_sync": sum(self.out_of_sync_rates)
            / len(self.out_of_sync_rates),
        }

    def format_rows(self) -> list[str]:
        rows = ["Fig.12c/d: full packet chasing channel (1 symbol/packet)"]
        rows.append("  target kbps   achieved kbps   error    out-of-sync")
        for rate, report, oos in zip(
            self.rates_kbps, self.reports, self.out_of_sync_rates
        ):
            rows.append(
                f"  {rate:10.0f}   {report.bandwidth_bps / 1000:12.2f}"
                f"   {report.error_rate:6.1%}   {oos:8.1%}"
            )
        return rows


def _fig12_chase_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Send-rate sweep points ``[start, stop)`` of the chasing channel."""
    out = []
    bits_per_symbol = 1.585  # log2(3)
    for index in range(shard.start, shard.stop):
        kbps = params["rates_kbps"][index]
        machine, spy, factory = _covert_rig(config, params["huge_pages"])
        ring_size = len(machine.ring.buffers)
        chaser = factory.full_ring_chaser(blocks=(0, 1, 2, 3), include_alt=False)
        packet_rate = kbps * 1000.0 / bits_per_symbol
        reorder = (
            max(0.0, (kbps - params["reorder_knee_kbps"]) / max(kbps, 1.0)) * 0.5
        )
        trojan = CovertTrojan(
            alphabet=3,
            ring_size=ring_size,
            n_streams=ring_size,  # one packet per symbol
            rate_pps=packet_rate,
            reorder_prob=reorder,
        )
        symbols = lfsr_symbols(params["n_symbols"], 3, seed=params["seed"])
        timeout = int(8 * machine.clock.frequency_hz / packet_rate)
        report, oos = run_chasing_channel(
            machine, chaser, trojan, symbols, timeout_cycles=timeout
        )
        out.append((report, oos))
    return out


def run_fig12_chase(
    config: MachineConfig | None = None,
    rates_kbps: tuple[float, ...] = (80.0, 160.0, 320.0, 640.0),
    n_symbols: int = 200,
    huge_pages: int = 16,
    seed: int = 0x44,
    reorder_knee_kbps: float = 500.0,
    runner: ExperimentRunner | None = None,
) -> Fig12ChaseResult:
    """Chase every buffer; sender rate controls the bandwidth.

    Past ``reorder_knee_kbps`` the send rate approaches line rate for the
    small covert frames and arrivals begin to reorder — modelled as adjacent
    swaps with probability growing past the knee, per Section IV-c's
    explanation of the 640 kbps error jump.
    """
    base = config or MachineConfig().bench_scale()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="fig12cd",
        n_trials=len(rates_kbps),
        trials_per_shard=1,
        params={
            "rates_kbps": list(rates_kbps),
            "n_symbols": n_symbols,
            "huge_pages": huge_pages,
            "seed": seed,
            "reorder_knee_kbps": reorder_knee_kbps,
        },
    )

    def reduce(shard_results: list) -> Fig12ChaseResult:
        pairs = [pair for sub in shard_results for pair in sub]
        return Fig12ChaseResult(
            rates_kbps=list(rates_kbps),
            reports=[report for report, _oos in pairs],
            out_of_sync_rates=[oos for _report, oos in pairs],
        )

    return runner.run(spec, base, _fig12_chase_shard, reduce)
