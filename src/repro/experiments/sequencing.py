"""Table I: ring-buffer sequence recovery quality.

The spy monitors 32 page-aligned sets while a remote sender streams
packets, runs Algorithm 1, and the recovered sequence is scored against the
driver-instrumented ground truth: Levenshtein distance, error rate, longest
mismatch run, and the (simulated) time the profiling took.

Paper values (256-buffer ring, 100k samples, 32 sets, 0.2 Mpps, 8 kHz
probes): distance 25.2, error 9.8%, longest mismatch 5.2, 159 minutes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.levenshtein import (
    best_rotation,
    cyclic_levenshtein,
    longest_mismatch_run,
)
from repro.telemetry.quality import (
    quality_registry,
    record_divergence,
    windowed_divergence,
)
from repro.attack.evictionset import OracleEvictionSetBuilder
from repro.attack.groundtruth import true_group_sequence
from repro.attack.sequencer import Sequencer, SequencerConfig
from repro.attack.timing import calibrate_threshold
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.net.traffic import ConstantStream, PoissonNoise


@dataclass
class Table1Result:
    """One sequence-recovery run, scored against ground truth."""

    recovered: list[int]
    truth: list[int]
    distance: int
    error_rate: float
    longest_mismatch: int
    profiling_seconds: float
    n_monitored: int
    n_samples: int
    #: windowed ground-truth divergence (defaults keep old pickles loadable)
    divergence: float = 0.0
    divergence_worst_window: float = 0.0

    def headline_metrics(self) -> dict[str, float]:
        return {
            "seq_error_rate": self.error_rate,
            "seq_distance": float(self.distance),
            "longest_mismatch": float(self.longest_mismatch),
            "divergence": self.divergence,
            "divergence_worst_window": self.divergence_worst_window,
            "profiling_seconds": self.profiling_seconds,
        }

    def format_rows(self) -> list[str]:
        return [
            "Table I: sequence recovery",
            f"  monitored sets:    {self.n_monitored}",
            f"  samples:           {self.n_samples}",
            f"  truth length:      {len(self.truth)}",
            f"  recovered length:  {len(self.recovered)}",
            f"  Levenshtein:       {self.distance}",
            f"  error rate:        {self.error_rate:.1%}  (paper: 9.8%)",
            f"  longest mismatch:  {self.longest_mismatch}  (paper: 5.2)",
            f"  worst window:      {self.divergence_worst_window:.1%} divergence",
            f"  profiling time:    {self.profiling_seconds:.2f} simulated s",
        ]


def run_table1(
    config: MachineConfig | None = None,
    n_monitored: int = 32,
    n_samples: int = 4000,
    packet_rate: float = 200_000.0,
    probe_rate_hz: float = 8000.0,
    frame_size: int = 64,
    noise_rate: float = 0.0,
    huge_pages: int = 16,
    seed: int = 3,
) -> Table1Result:
    """One full sequence-recovery experiment.

    ``probe_rate_hz`` sets the idle wait so that probe sweeps happen at the
    paper's rate; ``noise_rate`` optionally adds non-cooperating background
    packets (the paper notes noise only *helps* this phase).
    """
    machine = Machine(config or MachineConfig().bench_scale())
    machine.install_nic()
    spy = machine.new_process("spy")
    threshold = calibrate_threshold(spy)
    builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=huge_pages)
    groups_all = builder.build_page_aligned_groups(block=0)
    groups = groups_all[:n_monitored]

    # Replacement provider: swap a noisy block-0 set for the corresponding
    # block-1 set (same index group position).
    block1_groups = builder.build_page_aligned_groups(block=1)

    def replacement(idx: int, _es):
        if idx < len(block1_groups):
            return block1_groups[idx]
        return None

    sender = ConstantStream(size=frame_size, rate_pps=packet_rate, protocol="broadcast")
    sender.attach(machine, machine.nic)
    noise = None
    if noise_rate > 0:
        noise = PoissonNoise(rate_pps=noise_rate, rng=random.Random(seed))
        noise.attach(machine, machine.nic)

    # Convert probe rate to an idle wait: total sweep budget minus the time
    # the probe itself takes.
    sweep_cycles = int(machine.clock.frequency_hz / probe_rate_hz)
    probe_cost = sum(len(g) for g in groups) * (
        machine.llc.timing.llc_hit_latency + machine.llc.timing.measure_overhead
    )
    wait = max(0, sweep_cycles - probe_cost)

    seq_config = SequencerConfig(n_samples=n_samples, wait_cycles=wait)
    sequencer = Sequencer(spy, groups, seq_config, replacement_provider=replacement)
    start = machine.clock.now
    recovered, _trace = sequencer.recover()
    profiling_seconds = machine.clock.seconds(machine.clock.now - start)
    sender.stop()
    if noise is not None:
        noise.stop()

    truth = true_group_sequence(machine, spy, sequencer.groups)
    distance = cyclic_levenshtein(recovered, truth)
    aligned_truth = best_rotation(recovered, truth)
    report = windowed_divergence(recovered, truth)
    registry = quality_registry(machine.telemetry)
    if registry is not None:
        record_divergence(registry, report)
    return Table1Result(
        recovered=recovered,
        truth=truth,
        distance=distance,
        error_rate=distance / len(truth) if truth else 1.0,
        longest_mismatch=longest_mismatch_run(recovered, aligned_truth),
        profiling_seconds=profiling_seconds,
        n_monitored=n_monitored,
        n_samples=n_samples,
        divergence=report.overall,
        divergence_worst_window=report.worst,
    )
