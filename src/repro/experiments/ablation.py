"""Ablations for the design points the paper discusses but doesn't plot.

* :func:`run_ring_size_ablation` — Section VI-c: "increasing the size of
  the ring" as a mitigation.  A bigger ring spreads buffers over the same
  256 page-aligned sets, so the per-set packet rate the spy sees drops and
  full-coverage probing gets slower.
* :func:`run_randomization_interval_ablation` — Section VI-b: how quickly
  a recovered sequence goes stale as the partial-randomization interval
  shrinks, measured as chase out-of-sync rate.
* :func:`run_ddio_ways_ablation` — sensitivity of the leak to the DDIO
  write-allocation limit (2 ways on real hardware): with more I/O ways a
  burst parks more blocks per set before displacing the spy again.
* :func:`run_probe_rate_ablation` — Table I's "fine-tuning the probe rate
  is challenging": sequence quality vs probe rate, showing the sweet spot
  between under-sampling and losing temporal order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.setup import MonitorFactory
from repro.attack.timing import calibrate_threshold
from repro.core.config import DDIOConfig, MachineConfig, RingConfig
from repro.core.machine import Machine
from repro.defense.randomization import PartialRandomizer
from repro.net.traffic import ConstantStream


def _with(base: MachineConfig, ring: RingConfig | None = None, ddio: DDIOConfig | None = None) -> MachineConfig:
    return MachineConfig(
        cache=base.cache,
        ddio=ddio or base.ddio,
        ring=ring or base.ring,
        link=base.link,
        timing=base.timing,
        processor=base.processor,
        memory_bytes=base.memory_bytes,
        numa_nodes=base.numa_nodes,
        seed=base.seed,
    )


@dataclass
class RingSizeAblationResult:
    """How a larger ring degrades the attacker's position (§VI-c).

    The page-aligned set count is fixed by the cache geometry, so a larger
    ring packs more buffers per set: fewer buffers are uniquely mapped
    (the covert channel needs unique ones), each monitored buffer fills
    less often (slower resynchronisation after a miss), and a recovered
    sequence has more ambiguous shared-set nodes.
    """

    ring_sizes: list[int]
    unique_buffer_fraction: list[float]
    mean_buffers_per_hot_set: list[float]
    ring_revolution_seconds: list[float]

    def format_rows(self) -> list[str]:
        rows = ["Ablation: ring size as a mitigation (§VI-c)"]
        rows.append("  ring   unique-buffer%   buffers/hot-set   revolution(ms)")
        for n, uniq, per_set, rev in zip(
            self.ring_sizes,
            self.unique_buffer_fraction,
            self.mean_buffers_per_hot_set,
            self.ring_revolution_seconds,
        ):
            rows.append(
                f"  {n:5d}   {uniq:13.1%}   {per_set:15.2f}   {rev * 1e3:12.2f}"
            )
        return rows


def run_ring_size_ablation(
    config: MachineConfig | None = None,
    ring_sizes: tuple[int, ...] = (32, 64, 128),
    packet_rate: float = 100_000.0,
    huge_pages: int = 4,
) -> RingSizeAblationResult:
    """Buffer-uniqueness and revisit-latency degradation per ring size."""
    from repro.attack.groundtruth import buffers_per_page_aligned_set
    from repro.attack.setup import unique_buffer_positions

    base = config or MachineConfig().scaled_down()
    unique_fraction: list[float] = []
    per_hot_set: list[float] = []
    revolution: list[float] = []
    for n in ring_sizes:
        ring = RingConfig(
            n_descriptors=n,
            buffer_size=base.ring.buffer_size,
            page_size=base.ring.page_size,
            copy_threshold=base.ring.copy_threshold,
        )
        machine = Machine(_with(base, ring=ring))
        machine.install_nic()
        unique = unique_buffer_positions(machine)
        unique_fraction.append(len(unique) / n)
        counts = buffers_per_page_aligned_set(machine)
        per_hot_set.append(sum(counts.values()) / len(counts))
        revolution.append(n / packet_rate)
    return RingSizeAblationResult(
        ring_sizes=list(ring_sizes),
        unique_buffer_fraction=unique_fraction,
        mean_buffers_per_hot_set=per_hot_set,
        ring_revolution_seconds=revolution,
    )


@dataclass
class RandomizationIntervalResult:
    """Chase quality vs partial-randomization interval (§VI-b)."""

    intervals: list[int]
    out_of_sync_rates: list[float]
    packets_seen: list[int]

    def format_rows(self) -> list[str]:
        rows = ["Ablation: partial randomization interval vs chase quality"]
        rows.append("  interval(pkts)   out-of-sync   packets seen")
        for i, oos, seen in zip(
            self.intervals, self.out_of_sync_rates, self.packets_seen
        ):
            label = "never" if i == 0 else str(i)
            rows.append(f"  {label:>13s}   {oos:10.1%}   {seen:10d}")
        return rows


def run_randomization_interval_ablation(
    config: MachineConfig | None = None,
    intervals: tuple[int, ...] = (0, 256, 64, 16),
    n_packets: int = 120,
    packet_rate: float = 40_000.0,
    huge_pages: int = 4,
) -> RandomizationIntervalResult:
    """Chase a fixed stream under increasingly frequent ring shuffles.

    ``interval == 0`` means no randomization (the vulnerable baseline).
    The spy's monitors are built once, before any shuffle — exactly the
    staleness the defense creates.
    """
    base = config or MachineConfig().scaled_down()
    oos_rates: list[float] = []
    seen: list[int] = []
    for interval in intervals:
        machine = Machine(_with(base))
        machine.install_nic()
        spy = machine.new_process("spy")
        factory = MonitorFactory(machine, spy, calibrate_threshold(spy), huge_pages=huge_pages)
        chaser = factory.full_ring_chaser(include_alt=False)
        if interval > 0:
            machine.driver.randomizer = PartialRandomizer(interval)
        source = ConstantStream(size=256, rate_pps=packet_rate, protocol="broadcast")
        chaser.prime_all()
        source.attach(machine, machine.nic)
        timeout = int(6 * machine.clock.frequency_hz / packet_rate)
        result = chaser.chase(
            n_packets, timeout_cycles=timeout, poll_wait=5_000, prime=False
        )
        source.stop()
        oos_rates.append(result.out_of_sync_rate)
        seen.append(result.packets_seen)
    return RandomizationIntervalResult(
        intervals=list(intervals), out_of_sync_rates=oos_rates, packets_seen=seen
    )


@dataclass
class DdioWaysResult:
    """Covert-channel quality vs the DDIO write-allocation limit."""

    ways: list[int]
    error_rates: list[float]

    def format_rows(self) -> list[str]:
        rows = ["Ablation: DDIO write-allocate ways vs covert error rate"]
        rows.append("  io-ways   error")
        for w, e in zip(self.ways, self.error_rates):
            rows.append(f"  {w:7d}   {e:6.1%}")
        return rows


def run_ddio_ways_ablation(
    config: MachineConfig | None = None,
    ways_sweep: tuple[int, ...] = (1, 2, 4),
    n_symbols: int = 40,
    huge_pages: int = 4,
) -> DdioWaysResult:
    """Single-buffer ternary channel error rate per DDIO allocation limit."""
    from repro.analysis.lfsr import lfsr_symbols
    from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
    from repro.attack.setup import unique_buffer_positions

    base = config or MachineConfig().scaled_down()
    errors: list[float] = []
    for io_ways in ways_sweep:
        machine = Machine(_with(base, ddio=DDIOConfig(enabled=True, write_allocate_ways=io_ways)))
        machine.install_nic()
        spy = machine.new_process("spy")
        factory = MonitorFactory(machine, spy, calibrate_threshold(spy), huge_pages=huge_pages)
        position = unique_buffer_positions(machine)[0]
        receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
        trojan = CovertTrojan(
            alphabet=3, ring_size=len(machine.ring.buffers), rate_pps=400_000
        )
        symbols = lfsr_symbols(n_symbols, 3)
        report = run_covert_channel(machine, receiver, trojan, symbols, 30_000)
        errors.append(report.error_rate)
    return DdioWaysResult(ways=list(ways_sweep), error_rates=errors)


@dataclass
class ProbeRateResult:
    """Sequence quality vs probe rate (the Table I tuning discussion)."""

    probe_rates_hz: list[float]
    error_rates: list[float]

    def format_rows(self) -> list[str]:
        rows = ["Ablation: probe rate vs sequence recovery error"]
        rows.append("  probe(Hz)    seq error")
        for r, e in zip(self.probe_rates_hz, self.error_rates):
            rows.append(f"  {r:9.0f}   {e:8.1%}")
        return rows


def run_probe_rate_ablation(
    config: MachineConfig | None = None,
    probe_rates_hz: tuple[float, ...] = (2_000.0, 8_000.0, 16_000.0, 32_000.0),
    packet_rate: float = 15_000.0,
    n_samples: int = 3000,
    n_monitored: int = 16,
    huge_pages: int = 4,
) -> ProbeRateResult:
    """Sweep the probe rate around the packet rate and score recovery."""
    from repro.experiments.sequencing import run_table1

    base = config or MachineConfig().scaled_down()
    errors: list[float] = []
    for rate in probe_rates_hz:
        result = run_table1(
            base,
            n_monitored=n_monitored,
            n_samples=n_samples,
            packet_rate=packet_rate,
            probe_rate_hz=rate,
            huge_pages=huge_pages,
        )
        errors.append(result.error_rate)
    return ProbeRateResult(probe_rates_hz=list(probe_rates_hz), error_rates=errors)
