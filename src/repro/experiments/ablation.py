"""Ablations for the design points the paper discusses but doesn't plot.

* :func:`run_ring_size_ablation` — Section VI-c: "increasing the size of
  the ring" as a mitigation.  A bigger ring spreads buffers over the same
  256 page-aligned sets, so the per-set packet rate the spy sees drops and
  full-coverage probing gets slower.
* :func:`run_randomization_interval_ablation` — Section VI-b: how quickly
  a recovered sequence goes stale as the partial-randomization interval
  shrinks, measured as chase out-of-sync rate.
* :func:`run_ddio_ways_ablation` — sensitivity of the leak to the DDIO
  write-allocation limit (2 ways on real hardware): with more I/O ways a
  burst parks more blocks per set before displacing the spy again.
* :func:`run_probe_rate_ablation` — Table I's "fine-tuning the probe rate
  is challenging": sequence quality vs probe rate, showing the sweet spot
  between under-sampling and losing temporal order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.setup import MonitorFactory
from repro.attack.timing import calibrate_threshold
from repro.core.config import DDIOConfig, MachineConfig, RingConfig
from repro.core.machine import Machine
from repro.defense.randomization import PartialRandomizer
from repro.net.traffic import ConstantStream
from repro.runner import ExperimentRunner, Shard, TrialSpec, default_runner


def _with(base: MachineConfig, ring: RingConfig | None = None, ddio: DDIOConfig | None = None) -> MachineConfig:
    return MachineConfig(
        cache=base.cache,
        ddio=ddio or base.ddio,
        ring=ring or base.ring,
        link=base.link,
        timing=base.timing,
        processor=base.processor,
        faults=base.faults,
        memory_bytes=base.memory_bytes,
        numa_nodes=base.numa_nodes,
        seed=base.seed,
        cache_backend=base.cache_backend,
    )


@dataclass
class RingSizeAblationResult:
    """How a larger ring degrades the attacker's position (§VI-c).

    The page-aligned set count is fixed by the cache geometry, so a larger
    ring packs more buffers per set: fewer buffers are uniquely mapped
    (the covert channel needs unique ones), each monitored buffer fills
    less often (slower resynchronisation after a miss), and a recovered
    sequence has more ambiguous shared-set nodes.
    """

    ring_sizes: list[int]
    unique_buffer_fraction: list[float]
    mean_buffers_per_hot_set: list[float]
    ring_revolution_seconds: list[float]

    def headline_metrics(self) -> dict[str, float]:
        if not self.ring_sizes:
            return {}
        return {
            "min_unique_buffer_fraction": min(self.unique_buffer_fraction),
            "max_revolution_ms": max(self.ring_revolution_seconds) * 1e3,
        }

    def format_rows(self) -> list[str]:
        rows = ["Ablation: ring size as a mitigation (§VI-c)"]
        rows.append("  ring   unique-buffer%   buffers/hot-set   revolution(ms)")
        for n, uniq, per_set, rev in zip(
            self.ring_sizes,
            self.unique_buffer_fraction,
            self.mean_buffers_per_hot_set,
            self.ring_revolution_seconds,
        ):
            rows.append(
                f"  {n:5d}   {uniq:13.1%}   {per_set:15.2f}   {rev * 1e3:12.2f}"
            )
        return rows


def _ring_size_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Ring-size sweep points ``[start, stop)``."""
    from repro.attack.groundtruth import buffers_per_page_aligned_set
    from repro.attack.setup import unique_buffer_positions

    out = []
    for index in range(shard.start, shard.stop):
        n = params["ring_sizes"][index]
        ring = RingConfig(
            n_descriptors=n,
            buffer_size=config.ring.buffer_size,
            page_size=config.ring.page_size,
            copy_threshold=config.ring.copy_threshold,
        )
        machine = Machine(_with(config, ring=ring))
        machine.install_nic()
        unique = unique_buffer_positions(machine)
        counts = buffers_per_page_aligned_set(machine)
        out.append(
            {
                "unique_fraction": len(unique) / n,
                "per_hot_set": sum(counts.values()) / len(counts),
                "revolution": n / params["packet_rate"],
            }
        )
    return out


def run_ring_size_ablation(
    config: MachineConfig | None = None,
    ring_sizes: tuple[int, ...] = (32, 64, 128),
    packet_rate: float = 100_000.0,
    huge_pages: int = 4,
    runner: ExperimentRunner | None = None,
) -> RingSizeAblationResult:
    """Buffer-uniqueness and revisit-latency degradation per ring size."""
    base = config or MachineConfig().scaled_down()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="ablation-ring",
        n_trials=len(ring_sizes),
        trials_per_shard=1,
        params={
            "ring_sizes": list(ring_sizes),
            "packet_rate": packet_rate,
            "huge_pages": huge_pages,
        },
    )

    def reduce(shard_results: list) -> RingSizeAblationResult:
        points = [point for sub in shard_results for point in sub]
        return RingSizeAblationResult(
            ring_sizes=list(ring_sizes),
            unique_buffer_fraction=[p["unique_fraction"] for p in points],
            mean_buffers_per_hot_set=[p["per_hot_set"] for p in points],
            ring_revolution_seconds=[p["revolution"] for p in points],
        )

    return runner.run(spec, base, _ring_size_shard, reduce)


@dataclass
class RandomizationIntervalResult:
    """Chase quality vs partial-randomization interval (§VI-b)."""

    intervals: list[int]
    out_of_sync_rates: list[float]
    packets_seen: list[int]

    def headline_metrics(self) -> dict[str, float]:
        if not self.out_of_sync_rates:
            return {}
        return {
            "baseline_out_of_sync": self.out_of_sync_rates[0],
            "worst_out_of_sync": max(self.out_of_sync_rates),
        }

    def format_rows(self) -> list[str]:
        rows = ["Ablation: partial randomization interval vs chase quality"]
        rows.append("  interval(pkts)   out-of-sync   packets seen")
        for i, oos, seen in zip(
            self.intervals, self.out_of_sync_rates, self.packets_seen
        ):
            label = "never" if i == 0 else str(i)
            rows.append(f"  {label:>13s}   {oos:10.1%}   {seen:10d}")
        return rows


def _randomization_interval_shard(
    config: MachineConfig, params: dict, shard: Shard
) -> list:
    """Shuffle-interval sweep points ``[start, stop)``."""
    out = []
    packet_rate = params["packet_rate"]
    for index in range(shard.start, shard.stop):
        interval = params["intervals"][index]
        machine = Machine(_with(config))
        machine.install_nic()
        spy = machine.new_process("spy")
        factory = MonitorFactory(
            machine, spy, calibrate_threshold(spy), huge_pages=params["huge_pages"]
        )
        chaser = factory.full_ring_chaser(include_alt=False)
        if interval > 0:
            machine.driver.randomizer = PartialRandomizer(interval)
        source = ConstantStream(size=256, rate_pps=packet_rate, protocol="broadcast")
        chaser.prime_all()
        source.attach(machine, machine.nic)
        timeout = int(6 * machine.clock.frequency_hz / packet_rate)
        result = chaser.chase(
            params["n_packets"], timeout_cycles=timeout, poll_wait=5_000, prime=False
        )
        source.stop()
        out.append(
            {"out_of_sync": result.out_of_sync_rate, "seen": result.packets_seen}
        )
    return out


def run_randomization_interval_ablation(
    config: MachineConfig | None = None,
    intervals: tuple[int, ...] = (0, 256, 64, 16),
    n_packets: int = 120,
    packet_rate: float = 40_000.0,
    huge_pages: int = 4,
    runner: ExperimentRunner | None = None,
) -> RandomizationIntervalResult:
    """Chase a fixed stream under increasingly frequent ring shuffles.

    ``interval == 0`` means no randomization (the vulnerable baseline).
    The spy's monitors are built once, before any shuffle — exactly the
    staleness the defense creates.
    """
    base = config or MachineConfig().scaled_down()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="ablation-interval",
        n_trials=len(intervals),
        trials_per_shard=1,
        params={
            "intervals": list(intervals),
            "n_packets": n_packets,
            "packet_rate": packet_rate,
            "huge_pages": huge_pages,
        },
    )

    def reduce(shard_results: list) -> RandomizationIntervalResult:
        points = [point for sub in shard_results for point in sub]
        return RandomizationIntervalResult(
            intervals=list(intervals),
            out_of_sync_rates=[p["out_of_sync"] for p in points],
            packets_seen=[p["seen"] for p in points],
        )

    return runner.run(spec, base, _randomization_interval_shard, reduce)


@dataclass
class DdioWaysResult:
    """Covert-channel quality vs the DDIO write-allocation limit."""

    ways: list[int]
    error_rates: list[float]

    def headline_metrics(self) -> dict[str, float]:
        if not self.error_rates:
            return {}
        return {
            "min_error": min(self.error_rates),
            "max_error": max(self.error_rates),
        }

    def format_rows(self) -> list[str]:
        rows = ["Ablation: DDIO write-allocate ways vs covert error rate"]
        rows.append("  io-ways   error")
        for w, e in zip(self.ways, self.error_rates):
            rows.append(f"  {w:7d}   {e:6.1%}")
        return rows


def _ddio_ways_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """DDIO write-allocate-limit sweep points ``[start, stop)``."""
    from repro.analysis.lfsr import lfsr_symbols
    from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
    from repro.attack.setup import unique_buffer_positions

    out = []
    for index in range(shard.start, shard.stop):
        io_ways = params["ways_sweep"][index]
        machine = Machine(
            _with(config, ddio=DDIOConfig(enabled=True, write_allocate_ways=io_ways))
        )
        machine.install_nic()
        spy = machine.new_process("spy")
        factory = MonitorFactory(
            machine, spy, calibrate_threshold(spy), huge_pages=params["huge_pages"]
        )
        position = unique_buffer_positions(machine)[0]
        receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
        trojan = CovertTrojan(
            alphabet=3, ring_size=len(machine.ring.buffers), rate_pps=400_000
        )
        symbols = lfsr_symbols(params["n_symbols"], 3)
        report = run_covert_channel(machine, receiver, trojan, symbols, 30_000)
        out.append(report.error_rate)
    return out


def run_ddio_ways_ablation(
    config: MachineConfig | None = None,
    ways_sweep: tuple[int, ...] = (1, 2, 4),
    n_symbols: int = 40,
    huge_pages: int = 4,
    runner: ExperimentRunner | None = None,
) -> DdioWaysResult:
    """Single-buffer ternary channel error rate per DDIO allocation limit."""
    base = config or MachineConfig().scaled_down()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="ablation-ddio-ways",
        n_trials=len(ways_sweep),
        trials_per_shard=1,
        params={
            "ways_sweep": list(ways_sweep),
            "n_symbols": n_symbols,
            "huge_pages": huge_pages,
        },
    )
    return runner.run(
        spec,
        base,
        _ddio_ways_shard,
        lambda shard_results: DdioWaysResult(
            ways=list(ways_sweep),
            error_rates=[e for sub in shard_results for e in sub],
        ),
    )


@dataclass
class ProbeRateResult:
    """Sequence quality vs probe rate (the Table I tuning discussion)."""

    probe_rates_hz: list[float]
    error_rates: list[float]

    def headline_metrics(self) -> dict[str, float]:
        if not self.error_rates:
            return {}
        return {
            "min_seq_error": min(self.error_rates),
            "max_seq_error": max(self.error_rates),
        }

    def format_rows(self) -> list[str]:
        rows = ["Ablation: probe rate vs sequence recovery error"]
        rows.append("  probe(Hz)    seq error")
        for r, e in zip(self.probe_rates_hz, self.error_rates):
            rows.append(f"  {r:9.0f}   {e:8.1%}")
        return rows


def _probe_rate_shard(config: MachineConfig, params: dict, shard: Shard) -> list:
    """Probe-rate sweep points ``[start, stop)``."""
    from repro.experiments.sequencing import run_table1

    out = []
    for index in range(shard.start, shard.stop):
        rate = params["probe_rates_hz"][index]
        result = run_table1(
            config,
            n_monitored=params["n_monitored"],
            n_samples=params["n_samples"],
            packet_rate=params["packet_rate"],
            probe_rate_hz=rate,
            huge_pages=params["huge_pages"],
        )
        out.append(result.error_rate)
    return out


def run_probe_rate_ablation(
    config: MachineConfig | None = None,
    probe_rates_hz: tuple[float, ...] = (2_000.0, 8_000.0, 16_000.0, 32_000.0),
    packet_rate: float = 15_000.0,
    n_samples: int = 3000,
    n_monitored: int = 16,
    huge_pages: int = 4,
    runner: ExperimentRunner | None = None,
) -> ProbeRateResult:
    """Sweep the probe rate around the packet rate and score recovery."""
    base = config or MachineConfig().scaled_down()
    runner = runner or default_runner()
    spec = TrialSpec(
        experiment="ablation-probe-rate",
        n_trials=len(probe_rates_hz),
        trials_per_shard=1,
        params={
            "probe_rates_hz": list(probe_rates_hz),
            "packet_rate": packet_rate,
            "n_samples": n_samples,
            "n_monitored": n_monitored,
            "huge_pages": huge_pages,
        },
    )
    return runner.run(
        spec,
        base,
        _probe_rate_shard,
        lambda shard_results: ProbeRateResult(
            probe_rates_hz=list(probe_rates_hz),
            error_rates=[e for sub in shard_results for e in sub],
        ),
    )
