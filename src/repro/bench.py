"""Hot-path benchmarks and the regression gate (``repro bench``).

Measures, on the bench-scale machine (256 monitored sets x 12 ways):

* ``probe_sweep_ms``      — one timed PRIME+PROBE sweep through the packed
  engine (one batched machine call per sweep);
* ``fast_sweep_ms``       — the aggregate-latency (one fence per set) sweep;
* ``legacy_sweep_ms``     — the same timed sweep replayed per-line through
  the frozen :class:`~repro.cache.legacy.LegacySlicedLLC`, i.e. the
  pre-refactor cost of exactly the same accesses;
* ``rx_frames_per_s`` / ``legacy_rx_frames_per_s`` — the batched rx
  datapath (burst drains handing whole frame groups to one vectorised
  engine call) vs the frozen scalar one (:mod:`repro.nic.legacy`),
  delivering an identical MTU-heavy frame mix through the event queue;
  ``rx_direct_*`` isolates the per-frame ``nic.deliver`` template path;
* ``machine_init_ms`` / ``legacy_llc_init_ms`` — LLC construction cost
  (the engine allocates three numpy arrays; the legacy model 16384 dicts);
* ``backend_overhead``    — the same batched probe sweep run under each
  randomized index backend (``keyed``, ``skewed``), reported as a ratio
  over the modulo sweep from the same run (informational, not gated:
  the keyed permutation rounds and skewed partition selection are real
  per-access work the modulo fast path legitimately skips);
* ``analysis_speedup``    — the columnar analysis pipeline (sequencer
  graph build + greedy walk, cyclic Levenshtein, batched correlation
  classification) vs the frozen scalar reference
  (:mod:`repro.analysis.legacy` / :mod:`repro.attack.legacy_analysis`),
  reported as a geometric mean of the three per-stage ratios;
* ``fig6_seconds``        — end-to-end ``repro run fig6`` (100 driver
  inits through the sharded runner, serial).

The headline numbers are ``sweep_speedup`` = legacy / engine sweep time,
``rx_speedup`` = legacy / batched rx datapath time, and
``analysis_speedup`` as above: *ratios of two measurements from the same
run*, so they are comparable across machines and CI runners.  ``--check BASELINE.json`` fails (exit 1) when a current
ratio falls more than ``--tolerance`` (default 20%) below the committed
baseline's — i.e. when a hot path got slower relative to its unchanging
legacy reference.

Usage::

    PYTHONPATH=src python -m repro.cli bench --out BENCH_hotpath.json
    PYTHONPATH=src python scripts/bench_hotpath.py --check BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time

from repro.attack.evictionset import EvictionSet
from repro.attack.primeprobe import ProbeMonitor
from repro.attack.timing import LatencyThreshold
from repro.cache.legacy import LegacySlicedLLC
from repro.core.config import MachineConfig
from repro.core.machine import Machine

N_SETS = 256
HUGE_PAGES = 24

#: MTU-heavy rx benchmark mix (size, protocol) — mostly full frames on the
#: fragment/flip path, some copies and broadcast discards, like a loaded
#: receive queue during the paper's web-fingerprinting runs.
_RX_MIX_SEED = 7
_RX_SIZES = [1514, 1514, 1514, 1514, 1200, 1024, 512, 256, 128, 64]


def build_monitor(machine: Machine) -> ProbeMonitor:
    """Eviction sets covering ``N_SETS`` LLC sets at full associativity."""
    spy = machine.new_process("spy")
    base = spy.mmap_huge(HUGE_PAGES)
    llc = machine.llc
    hit = llc.timing.llc_hit_latency + llc.timing.measure_overhead
    miss = llc.timing.llc_miss_latency + llc.timing.measure_overhead
    threshold = LatencyThreshold(
        hit_mean=hit, miss_mean=miss, threshold=(hit + miss) / 2
    )
    ways = llc.geometry.ways
    page = 2 * 1024 * 1024
    by_set: dict[int, list[int]] = {}
    for off in range(0, HUGE_PAGES * page, llc.geometry.line_size):
        vaddr = base + off
        flat = llc.flat_set_of(spy.addrspace.translate(vaddr))
        by_set.setdefault(flat, []).append(vaddr)
    flats = [f for f, vs in by_set.items() if len(vs) >= ways][:N_SETS]
    if len(flats) < N_SETS:
        raise SystemExit(f"only {len(flats)} full sets found; raise HUGE_PAGES")
    sets = [
        EvictionSet(spy, by_set[f][:ways], threshold, set_index=f) for f in flats
    ]
    monitor = ProbeMonitor(spy, sets)
    monitor.prime()
    monitor.probe_once()  # settle into the steady all-hit state
    monitor.probe_once()
    return monitor


def bench_engine_sweeps(monitor: ProbeMonitor, rounds: int) -> tuple[float, float]:
    t0 = time.perf_counter()
    for _ in range(rounds):
        monitor.probe_once()
    sweep_ms = (time.perf_counter() - t0) / rounds * 1e3
    monitor.sample(2, fast_probe=True)
    t0 = time.perf_counter()
    monitor.sample(rounds, fast_probe=True)
    fast_ms = (time.perf_counter() - t0) / rounds * 1e3
    return sweep_ms, fast_ms


def bench_legacy_sweep(machine: Machine, monitor: ProbeMonitor, rounds: int) -> float:
    """The identical timed sweep, one Python call per line, legacy model."""
    llc = LegacySlicedLLC(
        geometry=machine.config.cache,
        ddio=machine.config.ddio,
        timing=machine.config.timing,
    )
    traversals = [
        [int(p) for p in es.probe_order_paddrs()] for es in monitor.sets
    ]
    thresholds = [es.threshold for es in monitor.sets]
    for traversal in traversals:  # prime
        for paddr in traversal:
            llc.cpu_access(paddr)
    overhead = llc.timing.measure_overhead
    t0 = time.perf_counter()
    for _ in range(rounds):
        for traversal, threshold in zip(traversals, thresholds):
            misses = 0
            for paddr in traversal:
                _hit, latency = llc.cpu_access(paddr)
                if threshold.is_miss(latency + overhead):
                    misses += 1
            traversal.reverse()
    return (time.perf_counter() - t0) / rounds * 1e3


def _rx_frames(n_frames: int):
    """The deterministic benchmark frame mix (identical for both sides)."""
    from repro.net.packet import Frame

    rng = random.Random(_RX_MIX_SEED)
    frames = []
    for _ in range(n_frames):
        size = rng.choice(_RX_SIZES)
        proto = "broadcast" if rng.random() < 0.2 else "tcp"
        frames.append(Frame(size=size, protocol=proto))
    return frames


def _bench_rx_direct(legacy: bool, n_frames: int) -> float:
    """Seconds to push ``n_frames`` straight through ``nic.deliver``."""
    machine = Machine(MachineConfig().bench_scale())
    machine.install_nic(legacy=legacy)
    deliver = machine.nic.deliver
    warmup = _rx_frames(n_frames // 10)
    for frame in warmup:
        deliver(frame)
    frames = _rx_frames(n_frames)
    t0 = time.perf_counter()
    for frame in frames:
        deliver(frame)
    return time.perf_counter() - t0


def _bench_rx_stream(legacy: bool, n_frames: int) -> float:
    """Seconds to deliver ``n_frames`` through the event queue (paced
    stream + idle loop), exercising burst drains on the batched side."""
    from repro.net.traffic import PatternStream

    machine = Machine(MachineConfig().bench_scale())
    machine.install_nic(legacy=legacy)
    machine.allow_bursts = not legacy
    sizes = [frame.size for frame in _rx_frames(n_frames)]
    source = PatternStream(sizes, rate_pps=1e6, protocol="tcp")
    t0 = time.perf_counter()
    source.attach(machine, machine.nic)
    machine.drain_events()
    elapsed = time.perf_counter() - t0
    if source.sent != n_frames:
        raise SystemExit(f"rx stream bench delivered {source.sent}/{n_frames}")
    return elapsed


def bench_rx(n_frames: int) -> dict:
    """Batched-vs-legacy rx datapath throughput (frames per wall second).

    The headline ``rx_speedup`` compares the full datapath both sides
    actually run — traffic source through the event queue into the NIC —
    which is where the cross-frame burst batching operates (a drained
    window hands ``Nic.deliver_burst`` whole frame groups).  The
    ``rx_direct_*`` secondaries push frames one at a time through
    ``nic.deliver``, isolating the per-frame template path where
    cross-frame vectorisation cannot apply.
    """
    legacy_direct_s = _bench_rx_direct(True, n_frames)
    batched_direct_s = _bench_rx_direct(False, n_frames)
    legacy_s = _bench_rx_stream(True, n_frames)
    batched_s = _bench_rx_stream(False, n_frames)
    return {
        "rx_frames": n_frames,
        "rx_frames_per_s": round(n_frames / batched_s),
        "legacy_rx_frames_per_s": round(n_frames / legacy_s),
        "rx_speedup": round(legacy_s / batched_s, 2),
        "rx_direct_frames_per_s": round(n_frames / batched_direct_s),
        "legacy_rx_direct_frames_per_s": round(n_frames / legacy_direct_s),
        "rx_direct_speedup": round(legacy_direct_s / batched_direct_s, 2),
    }


def _bench_backend_sweep(backend: str, rounds: int, n_lines: int = 4096) -> float:
    """Milliseconds per batched ``access_many`` sweep under ``backend``.

    The sweep touches ``n_lines`` distinct lines, so for epochal backends
    it also pays the memo-miss recompute after each re-key — the same
    cost profile the attack loops see.
    """
    import numpy as np

    from repro.cache.llc import SlicedLLC

    config = MachineConfig().bench_scale()
    llc = SlicedLLC(
        geometry=config.cache,
        ddio=config.ddio,
        timing=config.timing,
        backend=backend,
        seed=1,
    )
    paddrs = (
        np.arange(n_lines, dtype=np.int64) << config.cache.offset_bits
    )
    llc.access_many(paddrs)  # warm: fill + populate the flat memo
    t0 = time.perf_counter()
    for _ in range(rounds):
        llc.access_many(paddrs)
    return (time.perf_counter() - t0) / rounds * 1e3


def bench_backend_overhead(rounds: int) -> dict:
    """Per-backend batched sweep cost relative to the modulo baseline."""
    modulo_ms = _bench_backend_sweep("modulo", rounds)
    keyed_ms = _bench_backend_sweep("keyed:epoch=0", rounds)
    rekey_ms = _bench_backend_sweep("keyed:epoch=100000", rounds)
    skewed_ms = _bench_backend_sweep("skewed:partitions=2", rounds)
    return {
        "backend_overhead": {
            "modulo_sweep_ms": round(modulo_ms, 4),
            "keyed_sweep_ms": round(keyed_ms, 4),
            "keyed_rekeying_sweep_ms": round(rekey_ms, 4),
            "skewed_sweep_ms": round(skewed_ms, 4),
            "keyed_ratio": round(keyed_ms / modulo_ms, 2),
            "keyed_rekeying_ratio": round(rekey_ms / modulo_ms, 2),
            "skewed_ratio": round(skewed_ms / modulo_ms, 2),
        }
    }


def _bench_pair(fn, legacy_fn, rounds: int) -> tuple[float, float]:
    """(vectorised_ms, legacy_ms) per call, same inputs both sides."""
    fn()  # warm (numpy one-time init, allocator)
    legacy_fn()
    t0 = time.perf_counter()
    for _ in range(rounds):
        fn()
    vec_ms = (time.perf_counter() - t0) / rounds * 1e3
    t0 = time.perf_counter()
    for _ in range(rounds):
        legacy_fn()
    leg_ms = (time.perf_counter() - t0) / rounds * 1e3
    return vec_ms, leg_ms


def bench_analysis(rounds: int) -> dict:
    """Columnar analysis pipeline vs the frozen scalar reference.

    Three stages, each on synthetic inputs shaped like the real attack's
    (bit-identical outputs are pinned separately in
    ``tests/test_analysis_equivalence.py``; this only times them):

    * sequencer — successor-graph build + greedy walk over a 4000x32
      sample matrix (``transition_graph``/``greedy_sequence`` vs
      ``legacy_build_graph``/``legacy_make_sequence``);
    * levenshtein — ``cyclic_levenshtein`` between two 256-symbol rings
      (NumPy rolling-row DP vs the frozen scalar table);
    * correlation — classifier scoring of 100 captured traces against 5
      site representatives (one score matrix vs a per-trace scalar loop).

    ``analysis_speedup`` is the geometric mean of the three legacy/new
    ratios, gated in CI like ``sweep_speedup``/``rx_speedup``.
    """
    import numpy as np

    from repro.analysis.correlation import CorrelationClassifier
    from repro.analysis.legacy import (
        CorrelationClassifier as LegacyClassifier,
    )
    from repro.analysis.legacy import cyclic_levenshtein as legacy_cyclic
    from repro.analysis.levenshtein import cyclic_levenshtein
    from repro.attack.legacy_analysis import (
        legacy_build_graph,
        legacy_make_sequence,
    )
    from repro.attack.sequencer import (
        Sequencer,
        greedy_sequence,
        transition_graph,
    )

    rng = random.Random(11)
    rounds = max(rounds // 5, 3)  # each analysis round is heavier than a sweep

    # -- sequencer ----------------------------------------------------
    n_samples, n_sets = 4000, 32
    matrix = np.zeros((n_samples, n_sets), dtype=np.int64)
    pos = 0
    for i in range(n_samples):  # a noisy ring walk, like a real scan
        if rng.random() < 0.8:
            pos = (pos + 1) % n_sets
        matrix[i, pos] = 2
        if rng.random() < 0.1:
            matrix[i, rng.randrange(n_sets)] = 2
    samples_list = [list(map(int, row)) for row in matrix]

    def _seq():
        graph = transition_graph(matrix, miss_threshold=1)
        root = Sequencer._get_root(graph)
        return greedy_sequence(graph, root, 8 * n_sets, weight_cutoff=2)

    def _seq_legacy():
        graph = legacy_build_graph(samples_list, miss_threshold=1)
        return legacy_make_sequence(graph, n_sets, weight_cutoff=2)

    seq_ms, seq_legacy_ms = _bench_pair(_seq, _seq_legacy, rounds)

    # -- levenshtein --------------------------------------------------
    ring = [rng.randrange(256) for _ in range(256)]
    recovered = ring[37:] + ring[:37]
    for i in range(0, len(recovered), 9):  # sprinkle edit errors
        recovered[i] = rng.randrange(256)

    lev_ms, lev_legacy_ms = _bench_pair(
        lambda: cyclic_levenshtein(recovered, ring),
        lambda: legacy_cyclic(recovered, ring),
        rounds,
    )

    # -- correlation classifier --------------------------------------
    trace_length, n_sites, n_trials = 100, 5, 100
    reps = {
        f"site{s}": [float(rng.randrange(1, 5)) for _ in range(trace_length)]
        for s in range(n_sites)
    }
    traces = [
        [rng.randrange(1, 5) for _ in range(trace_length)] for _ in range(n_trials)
    ]
    clf = CorrelationClassifier(trace_length=trace_length, max_lag=8)
    clf.representatives = dict(reps)
    legacy_clf = LegacyClassifier(trace_length=trace_length, max_lag=8)
    legacy_clf.representatives = dict(reps)

    corr_ms, corr_legacy_ms = _bench_pair(
        lambda: clf.classify_many(traces),
        lambda: [legacy_clf.classify(t) for t in traces],
        rounds,
    )

    ratios = [
        seq_legacy_ms / seq_ms,
        lev_legacy_ms / lev_ms,
        corr_legacy_ms / corr_ms,
    ]
    geomean = float(np.exp(np.mean(np.log(ratios))))
    return {
        "analysis": {
            "sequencer_ms": round(seq_ms, 4),
            "legacy_sequencer_ms": round(seq_legacy_ms, 4),
            "sequencer_speedup": round(ratios[0], 2),
            "levenshtein_ms": round(lev_ms, 4),
            "legacy_levenshtein_ms": round(lev_legacy_ms, 4),
            "levenshtein_speedup": round(ratios[1], 2),
            "correlation_ms": round(corr_ms, 4),
            "legacy_correlation_ms": round(corr_legacy_ms, 4),
            "correlation_speedup": round(ratios[2], 2),
        },
        "analysis_speedup": round(geomean, 2),
    }


def bench_init(config: MachineConfig, rounds: int = 3) -> tuple[float, float]:
    t0 = time.perf_counter()
    for _ in range(rounds):
        Machine(config)
    machine_ms = (time.perf_counter() - t0) / rounds * 1e3
    t0 = time.perf_counter()
    for _ in range(rounds):
        LegacySlicedLLC(geometry=config.cache, ddio=config.ddio, timing=config.timing)
    legacy_ms = (time.perf_counter() - t0) / rounds * 1e3
    return machine_ms, legacy_ms


def bench_fig6() -> float:
    from repro.experiments.mapping import run_fig6

    t0 = time.perf_counter()
    run_fig6(instances=100, config=MachineConfig().bench_scale())
    return time.perf_counter() - t0


def run_benchmarks(rounds: int, skip_fig6: bool, rx_frames: int = 4000) -> dict:
    config = MachineConfig().bench_scale()
    machine = Machine(config)
    monitor = build_monitor(machine)
    n_accesses = sum(len(es) for es in monitor.sets)
    sweep_ms, fast_ms = bench_engine_sweeps(monitor, rounds)
    legacy_ms = bench_legacy_sweep(machine, monitor, rounds)
    machine_init_ms, legacy_llc_init_ms = bench_init(config)
    result = {
        "bench": "probe-sweep + rx datapath hot paths (engine vs legacy)",
        "geometry": {
            "monitored_sets": len(monitor.sets),
            "ways": machine.llc.geometry.ways,
            "accesses_per_sweep": n_accesses,
        },
        "rounds": rounds,
        "probe_sweep_ms": round(sweep_ms, 4),
        "probe_sweep_us_per_access": round(sweep_ms * 1e3 / n_accesses, 4),
        "fast_sweep_ms": round(fast_ms, 4),
        "legacy_sweep_ms": round(legacy_ms, 4),
        "sweep_speedup": round(legacy_ms / sweep_ms, 2),
        "machine_init_ms": round(machine_init_ms, 2),
        "legacy_llc_init_ms": round(legacy_llc_init_ms, 2),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    result.update(bench_rx(rx_frames))
    result.update(bench_backend_overhead(rounds))
    result.update(bench_analysis(rounds))
    if not skip_fig6:
        result["fig6_seconds"] = round(bench_fig6(), 2)
    return result


#: Ratio metrics gated by ``--check``: each must stay within tolerance of
#: the committed baseline (ratios transfer across runners; absolutes don't).
GATED_RATIOS = ("sweep_speedup", "rx_speedup", "analysis_speedup")


def check_against(result: dict, baseline: dict, tolerance: float) -> int:
    """Gate current ratio metrics against a committed baseline; 0 = pass."""
    status = 0
    for key in GATED_RATIOS:
        current = result[key]
        committed = baseline.get(key)
        if committed is None:
            print(f"regression gate: {key} absent from baseline, skipped")
            continue
        floor = committed * (1.0 - tolerance)
        print(
            f"regression gate: {key} {current:.2f} vs committed "
            f"{committed:.2f} (floor {floor:.2f})"
        )
        if current < floor:
            print(
                f"FAIL: {key} regressed by more than the tolerance",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print("OK")
    return status


#: Result keys copied into a bench ledger record's headline (the gated
#: ratios plus the absolute numbers they are built from).
BENCH_HEADLINE_KEYS = (
    "sweep_speedup",
    "rx_speedup",
    "analysis_speedup",
    "probe_sweep_ms",
    "fast_sweep_ms",
    "legacy_sweep_ms",
    "rx_frames_per_s",
    "machine_init_ms",
    "fig6_seconds",
)


def bench_ledger_record(result: dict):
    """A ``kind='bench'`` ledger record for one benchmark run."""
    from repro.telemetry.ledger import LedgerRecord

    headline = {
        key: float(result[key]) for key in BENCH_HEADLINE_KEYS if key in result
    }
    return LedgerRecord(
        experiment="bench-hotpath",
        kind="bench",
        timestamp=time.time(),
        jobs=1,
        trials=result.get("rounds", 0),
        headline=headline,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--out", help="write results to this JSON file")
    parser.add_argument(
        "--check", help="compare against a committed baseline JSON; exit 1 on regression"
    )
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument(
        "--rx-frames", type=int, default=4000, help="frames per rx benchmark side"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative drop in a gated ratio vs the baseline",
    )
    parser.add_argument(
        "--skip-fig6", action="store_true", help="skip the end-to-end fig6 timing"
    )
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        help="append this run to DIR/ledger.jsonl as a kind='bench' record "
        "(shown by 'repro report bench-hotpath')",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        help="append this run's ledger record to a standalone JSONL history "
        "file (e.g. a CI BENCH_history.jsonl artifact)",
    )
    args = parser.parse_args(argv)

    result = run_benchmarks(args.rounds, args.skip_fig6, rx_frames=args.rx_frames)
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.ledger or args.history:
        from repro.telemetry.ledger import RunLedger

        record = bench_ledger_record(result)
        if args.ledger:
            RunLedger(args.ledger).append(record)
            print(f"appended bench record to {args.ledger}/ledger.jsonl")
        if args.history:
            import os
            from pathlib import Path

            history = RunLedger(os.path.dirname(args.history) or ".")
            history.path = Path(args.history)
            history.append(record)
            print(f"appended bench record to {args.history}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        return check_against(result, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
