"""``python -m repro`` — run reproduction experiments from the shell."""

from repro.cli import main

raise SystemExit(main())
