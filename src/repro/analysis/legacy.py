"""Frozen scalar analysis pipeline — the pre-columnar reference.

These are the pure-Python implementations that shipped before the
analysis layer was vectorised, kept verbatim (same loops, same tie
breaking, same floating-point operation order) as the ground truth for
the differential harnesses in ``tests/test_analysis_equivalence.py``.
The live modules (:mod:`repro.analysis.levenshtein`,
:mod:`repro.analysis.correlation`, :mod:`repro.analysis.lfsr`) must stay
bit-identical to these on every integer-valued output and within
last-ulp noise on batched float scores; see the tests for the exact
contract.  Do not "improve" this file — its value is that it never
changes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

# ----------------------------------------------------------------------
# Edit distance family (frozen from repro.analysis.levenshtein)
# ----------------------------------------------------------------------


def levenshtein(a: Sequence, b: Sequence) -> int:
    """Classic two-row dynamic program, scalar inner loop."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def cyclic_levenshtein(recovered: Sequence, truth: Sequence) -> int:
    """Rotation-minimised edit distance, anchored on ``recovered[0]``."""
    if not truth:
        return len(recovered)
    best = None
    doubled = list(truth) + list(truth)
    n = len(truth)
    anchors = [i for i in range(n) if doubled[i] == recovered[0]] if recovered else [0]
    if not anchors:
        anchors = range(n)
    for start in anchors:
        rotated = doubled[start : start + n]
        distance = levenshtein(recovered, rotated)
        if best is None or distance < best:
            best = distance
            if best == 0:
                break
    return best if best is not None else len(recovered)


def best_rotation(recovered: Sequence, truth: Sequence) -> list:
    """Rotation of ``truth`` minimising edit distance (first wins ties)."""
    if not truth:
        return []
    doubled = list(truth) + list(truth)
    n = len(truth)
    best_distance, best_start = None, 0
    anchors = [i for i in range(n) if recovered and doubled[i] == recovered[0]]
    for start in anchors or range(n):
        distance = levenshtein(recovered, doubled[start : start + n])
        if best_distance is None or distance < best_distance:
            best_distance, best_start = distance, start
            if distance == 0:
                break
    return doubled[best_start : best_start + n]


def edit_breakdown(sent: Sequence, received: Sequence) -> tuple[int, int, int]:
    """``(substitutions, insertions, deletions)`` from one minimum edit
    script; ties prefer the diagonal, then deletion."""
    n, m = len(sent), len(received)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        row = dp[i]
        prev = dp[i - 1]
        si = sent[i - 1]
        for j in range(1, m + 1):
            cost = 0 if si == received[j - 1] else 1
            row[j] = min(prev[j] + 1, row[j - 1] + 1, prev[j - 1] + cost)
    substitutions = insertions = deletions = 0
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if sent[i - 1] == received[j - 1] else 1
            if dp[i][j] == dp[i - 1][j - 1] + cost:
                substitutions += cost
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i][j] == dp[i - 1][j] + 1:
            deletions += 1
            i -= 1
        else:
            insertions += 1
            j -= 1
    return substitutions, insertions, deletions


def longest_mismatch_run(recovered: Sequence, truth: Sequence) -> int:
    """Longest run of mismatching alignment columns (Table I)."""
    n, m = len(recovered), len(truth)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        row = dp[i]
        prev = dp[i - 1]
        ai = recovered[i - 1]
        for j in range(1, m + 1):
            cost = 0 if ai == truth[j - 1] else 1
            row[j] = min(prev[j] + 1, row[j - 1] + 1, prev[j - 1] + cost)
    flags: list[bool] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if recovered[i - 1] == truth[j - 1] else 1
            if dp[i][j] == dp[i - 1][j - 1] + cost:
                flags.append(cost == 1)
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i][j] == dp[i - 1][j] + 1:
            flags.append(True)
            i -= 1
        else:
            flags.append(True)
            j -= 1
    longest = current = 0
    for mismatched in flags:
        current = current + 1 if mismatched else 0
        longest = max(longest, current)
    return longest


# ----------------------------------------------------------------------
# Cross-correlation classifier (frozen from repro.analysis.correlation)
# ----------------------------------------------------------------------


def cross_correlation(a: Sequence[float], b: Sequence[float], max_lag: int = 8) -> float:
    """Peak normalised cross-correlation, one ``np.dot`` per lag."""
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    n = min(len(x), len(y))
    if n == 0:
        return 0.0
    x = x[:n] - x[:n].mean()
    y = y[:n] - y[:n].mean()
    denom = np.linalg.norm(x) * np.linalg.norm(y)
    if denom == 0:
        return 0.0
    best = 0.0
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            xs, ys = x[lag:], y[: n - lag]
        else:
            xs, ys = x[: n + lag], y[-lag:]
        if len(xs) == 0:
            continue
        value = float(np.dot(xs, ys)) / denom
        best = max(best, value)
    return best


class CorrelationClassifier:
    """One ``cross_correlation`` call per (trace, representative) pair."""

    def __init__(self, trace_length: int = 100, max_lag: int = 8) -> None:
        if trace_length <= 0:
            raise ValueError(f"trace_length must be positive, got {trace_length}")
        self.trace_length = trace_length
        self.max_lag = max_lag
        self.representatives: dict[str, np.ndarray] = {}

    def _pad(self, trace: Sequence[float]) -> np.ndarray:
        out = np.zeros(self.trace_length, dtype=float)
        n = min(len(trace), self.trace_length)
        out[:n] = np.asarray(trace[:n], dtype=float)
        return out

    def fit(self, training: dict[str, list[Sequence[float]]]) -> None:
        if not training:
            raise ValueError("no training data")
        self.representatives = {}
        for label, traces in training.items():
            if not traces:
                raise ValueError(f"label {label!r} has no training traces")
            stacked = np.stack([self._pad(t) for t in traces])
            self.representatives[label] = stacked.mean(axis=0)

    def scores(self, trace: Sequence[float]) -> dict[str, float]:
        if not self.representatives:
            raise RuntimeError("classifier not fitted")
        padded = self._pad(trace)
        return {
            label: cross_correlation(padded, rep, self.max_lag)
            for label, rep in self.representatives.items()
        }

    def classify(self, trace: Sequence[float]) -> str:
        scored = self.scores(trace)
        return max(scored, key=scored.get)

    def accuracy(self, labelled_traces: list[tuple[str, Sequence[float]]]) -> float:
        if not labelled_traces:
            raise ValueError("no traces to score")
        correct = sum(
            1 for label, trace in labelled_traces if self.classify(trace) == label
        )
        return correct / len(labelled_traces)


# ----------------------------------------------------------------------
# LFSR (frozen from repro.analysis.lfsr)
# ----------------------------------------------------------------------

_MAXIMAL_TAPS = {4: 3, 7: 6, 15: 14, 16: 15}


class LFSR:
    """Fibonacci LFSR stepped one bit per Python call."""

    def __init__(self, width: int = 15, seed: int = 0x5A5A) -> None:
        if width not in _MAXIMAL_TAPS:
            raise ValueError(
                f"no maximal polynomial configured for width {width}; "
                f"available: {sorted(_MAXIMAL_TAPS)}"
            )
        self.width = width
        self.mask = (1 << width) - 1
        seed &= self.mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed
        self._tap = _MAXIMAL_TAPS[width]

    @property
    def period(self) -> int:
        return self.mask

    def next_bit(self) -> int:
        new_bit = ((self.state >> (self.width - 1)) ^ (self.state >> (self._tap - 1))) & 1
        self.state = ((self.state << 1) | new_bit) & self.mask
        return new_bit

    def bits(self, count: int) -> list[int]:
        return [self.next_bit() for _ in range(count)]


def lfsr_bits(count: int, width: int = 15, seed: int = 0x5A5A) -> list[int]:
    return LFSR(width=width, seed=seed).bits(count)


def lfsr_symbols(count: int, alphabet: int, width: int = 15, seed: int = 0x5A5A) -> list[int]:
    """Rejection-sampled symbols, ``bits_per`` bits consumed per attempt."""
    if alphabet < 2:
        raise ValueError(f"alphabet must be >= 2, got {alphabet}")
    bits_per = max(1, (alphabet - 1).bit_length())
    lfsr = LFSR(width=width, seed=seed)
    symbols: list[int] = []
    while len(symbols) < count:
        value = 0
        for _ in range(bits_per):
            value = (value << 1) | lfsr.next_bit()
        if value < alphabet:
            symbols.append(value)
    return symbols


def bit_iter(width: int = 15, seed: int = 0x5A5A) -> Iterator[int]:
    lfsr = LFSR(width=width, seed=seed)
    while True:
        yield lfsr.next_bit()
