"""Covert-channel bandwidth and error accounting (Section IV methodology).

A channel run transmits a known pseudo-random symbol sequence; the spy
decodes what it observed.  ``evaluate_channel`` scores the run the way the
paper does: raw bandwidth from symbols sent over elapsed simulated time,
error rate from the edit distance between sent and received sequences
(which penalises loss, duplication and swaps alike).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.levenshtein import edit_breakdown


@dataclass(frozen=True)
class ChannelReport:
    """Outcome of one covert-channel measurement run."""

    symbols_sent: int
    symbols_received: int
    elapsed_seconds: float
    error_rate: float
    alphabet: int
    #: Minimum-edit-script error classes (they sum to the edit distance):
    #: a flipped bit is a substitution, a lost symbol a deletion, a
    #: spurious detection an insertion.
    substitutions: int = 0
    insertions: int = 0
    deletions: int = 0

    @property
    def edit_distance(self) -> int:
        return self.substitutions + self.insertions + self.deletions

    @property
    def symbol_rate(self) -> float:
        """Symbols per second actually achieved."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.symbols_sent / self.elapsed_seconds

    @property
    def bandwidth_bps(self) -> float:
        """Raw bit rate: symbol rate times bits per symbol."""
        return self.symbol_rate * math.log2(self.alphabet)

    @property
    def effective_bandwidth_bps(self) -> float:
        """Bandwidth discounted by the binary-entropy error penalty.

        A common capacity-style correction: C = B * (1 - H(e)) for a
        symmetric channel with error probability e.
        """
        e = min(max(self.error_rate, 0.0), 0.999999)
        if e == 0:
            return self.bandwidth_bps
        h = -e * math.log2(e) - (1 - e) * math.log2(1 - e)
        return self.bandwidth_bps * max(0.0, 1.0 - h)


def evaluate_channel(
    sent: Sequence[int],
    received: Sequence[int],
    elapsed_seconds: float,
    alphabet: int,
) -> ChannelReport:
    """Score one run: edit-distance error rate + bandwidth.

    The distance is attributed to substitutions/insertions/deletions (the
    breakdown sums to the plain Levenshtein distance, so the error rate is
    unchanged), and when a telemetry session with metrics is installed the
    run lands on the ambient registry as ``quality.covert.*``.
    """
    if alphabet < 2:
        raise ValueError(f"alphabet must be >= 2, got {alphabet}")
    if not sent:
        raise ValueError("no symbols were sent")
    substitutions, insertions, deletions = edit_breakdown(
        list(sent), list(received)
    )
    distance = substitutions + insertions + deletions
    report = ChannelReport(
        symbols_sent=len(sent),
        symbols_received=len(received),
        elapsed_seconds=elapsed_seconds,
        error_rate=distance / len(sent),
        alphabet=alphabet,
        substitutions=substitutions,
        insertions=insertions,
        deletions=deletions,
    )
    from repro.telemetry.context import current_telemetry
    from repro.telemetry.quality import quality_registry, record_channel_report

    registry = quality_registry(current_telemetry())
    if registry is not None:
        record_channel_report(registry, report)
    return report
