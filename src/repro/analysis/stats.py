"""Small statistics helpers: means, confidence intervals, percentiles.

Table I reports measured values with confidence intervals; Fig. 16 reports
tail-latency percentiles up to p99.99.  Implemented directly (normal-theory
CI and the nearest-rank percentile) to keep the dependency surface small.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Two-sided z value for 95% coverage.
_Z95 = 1.959963984540054


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for fewer than two points."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def confidence_interval(
    values: Sequence[float], z: float = _Z95
) -> tuple[float, float, float]:
    """(mean, low, high) normal-theory confidence interval."""
    if not values:
        raise ValueError("confidence interval of empty sequence")
    mu = mean(values)
    half = z * stddev(values) / math.sqrt(len(values))
    return mu, mu - half, mu + half


def percentile_rank(n: int, p: float) -> float:
    """The repo-wide percentile rank rule: over ``n`` observations the
    percentile ``p`` targets (1-based, fractional) rank ``p / 100 * n``.

    Both percentile implementations route through this one rule and
    differ only in how they realise a fractional rank: discrete-sample
    consumers (:func:`percentile` here) take the ``ceil(rank)``-th
    smallest observation (nearest-rank, always a real sample), while
    binned consumers (``telemetry.metrics.Histogram.percentile``) have
    lost the samples and interpolate linearly to ``rank`` inside the
    bucket containing it.  ``tests/test_analysis.py`` cross-checks the
    two against each other on shared data.

    Validates ``p`` and raises ValueError outside [0, 100].
    """
    if not 0 <= p <= 100:
        raise ValueError(f"p must be in [0, 100], got {p}")
    return p / 100 * n


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile, ``p`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    rank = percentile_rank(len(ordered), p)
    if p == 0:
        return ordered[0]
    return ordered[min(math.ceil(rank), len(ordered)) - 1]


def percentiles(values: Sequence[float], points: Sequence[float]) -> dict[float, float]:
    """Several percentiles of the same sample, sorted once."""
    if not values:
        raise ValueError("percentiles of empty sequence")
    ordered = sorted(values)
    out: dict[float, float] = {}
    for p in points:
        rank = percentile_rank(len(ordered), p)
        if p == 0:
            out[p] = ordered[0]
        else:
            out[p] = ordered[min(math.ceil(rank), len(ordered)) - 1]
    return out
