"""Linear feedback shift register pseudo-random sequences.

Following Liu et al. (cited by the paper for channel-capacity methodology),
channel quality is measured by transmitting the maximal-length sequence of a
15-bit LFSR — period 2^15 - 1, covering every 15-bit state except all-zeros
— and edit-aligning what the spy received.  The structure of the sequence
makes bit loss, duplication and swaps all visible.
"""

from __future__ import annotations

from typing import Iterator

#: Taps for maximal-length sequences, by register width (x^w + x^t + 1).
_MAXIMAL_TAPS = {4: 3, 7: 6, 15: 14, 16: 15}


class LFSR:
    """Fibonacci LFSR with a two-tap maximal polynomial.

    >>> lfsr = LFSR(width=15, seed=0x1)
    >>> bits = [lfsr.next_bit() for _ in range(10)]
    """

    def __init__(self, width: int = 15, seed: int = 0x5A5A) -> None:
        if width not in _MAXIMAL_TAPS:
            raise ValueError(
                f"no maximal polynomial configured for width {width}; "
                f"available: {sorted(_MAXIMAL_TAPS)}"
            )
        self.width = width
        self.mask = (1 << width) - 1
        seed &= self.mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed
        self._tap = _MAXIMAL_TAPS[width]

    @property
    def period(self) -> int:
        """Sequence period: 2^width - 1."""
        return self.mask

    def next_bit(self) -> int:
        """Advance one step; returns the output bit (0/1)."""
        new_bit = ((self.state >> (self.width - 1)) ^ (self.state >> (self._tap - 1))) & 1
        self.state = ((self.state << 1) | new_bit) & self.mask
        return new_bit

    def bits(self, count: int) -> list[int]:
        """The next ``count`` output bits."""
        return [self.next_bit() for _ in range(count)]


def lfsr_bits(count: int, width: int = 15, seed: int = 0x5A5A) -> list[int]:
    """Convenience: ``count`` bits of a fresh maximal LFSR."""
    return LFSR(width=width, seed=seed).bits(count)


def lfsr_symbols(count: int, alphabet: int, width: int = 15, seed: int = 0x5A5A) -> list[int]:
    """Pseudo-random symbols in ``range(alphabet)`` built from LFSR bits.

    For the ternary covert channel the paper sends base-3 symbols; we pack
    two LFSR bits per draw and reject the out-of-range code so the symbol
    stream stays balanced and reproducible.
    """
    if alphabet < 2:
        raise ValueError(f"alphabet must be >= 2, got {alphabet}")
    bits_per = max(1, (alphabet - 1).bit_length())
    lfsr = LFSR(width=width, seed=seed)
    symbols: list[int] = []
    while len(symbols) < count:
        value = 0
        for _ in range(bits_per):
            value = (value << 1) | lfsr.next_bit()
        if value < alphabet:
            symbols.append(value)
    return symbols


def bit_iter(width: int = 15, seed: int = 0x5A5A) -> Iterator[int]:
    """Infinite iterator over LFSR output bits."""
    lfsr = LFSR(width=width, seed=seed)
    while True:
        yield lfsr.next_bit()
