"""Linear feedback shift register pseudo-random sequences.

Following Liu et al. (cited by the paper for channel-capacity methodology),
channel quality is measured by transmitting the maximal-length sequence of a
15-bit LFSR — period 2^15 - 1, covering every 15-bit state except all-zeros
— and edit-aligning what the spy received.  The structure of the sequence
makes bit loss, duplication and swaps all visible.

Bit generation is batched: a two-tap Fibonacci LFSR's output obeys
``b[k] = b[k-width] ^ b[k-tap]``, so whole blocks of up to ``tap`` bits at
a time are one array XOR over the output history instead of one Python
call per bit.  The block path reproduces the scalar stepper bit for bit
(including the register state left behind), pinned by
``tests/test_analysis_equivalence.py``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

#: Taps for maximal-length sequences, by register width (x^w + x^t + 1).
_MAXIMAL_TAPS = {4: 3, 7: 6, 15: 14, 16: 15}

#: Below this many bits the per-call scalar loop beats array setup.
_SCALAR_BITS_CUTOFF = 64


class LFSR:
    """Fibonacci LFSR with a two-tap maximal polynomial.

    >>> lfsr = LFSR(width=15, seed=0x1)
    >>> bits = [lfsr.next_bit() for _ in range(10)]
    """

    def __init__(self, width: int = 15, seed: int = 0x5A5A) -> None:
        if width not in _MAXIMAL_TAPS:
            raise ValueError(
                f"no maximal polynomial configured for width {width}; "
                f"available: {sorted(_MAXIMAL_TAPS)}"
            )
        self.width = width
        self.mask = (1 << width) - 1
        seed &= self.mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed
        self._tap = _MAXIMAL_TAPS[width]

    @property
    def period(self) -> int:
        """Sequence period: 2^width - 1."""
        return self.mask

    def next_bit(self) -> int:
        """Advance one step; returns the output bit (0/1)."""
        new_bit = ((self.state >> (self.width - 1)) ^ (self.state >> (self._tap - 1))) & 1
        self.state = ((self.state << 1) | new_bit) & self.mask
        return new_bit

    def bits(self, count: int) -> list[int]:
        """The next ``count`` output bits.

        Large requests run block-vectorised on the recurrence
        ``b[k] = b[k-width] ^ b[k-tap]``: the register state seeds the
        history (state bit ``p`` is output ``b[-1-p]``), each block of
        ``tap`` bits is one slice XOR, and the register is re-packed from
        the last ``width`` outputs afterwards — bit- and state-identical
        to stepping :meth:`next_bit` ``count`` times.
        """
        if count < _SCALAR_BITS_CUTOFF:
            return [self.next_bit() for _ in range(count)]
        w, t = self.width, self._tap
        hist = np.empty(w + count, dtype=np.uint8)
        for p in range(w):
            hist[p] = (self.state >> (w - 1 - p)) & 1
        k = 0
        while k < count:
            b = min(t, count - k)
            np.bitwise_xor(
                hist[k : k + b],
                hist[w + k - t : w + k - t + b],
                out=hist[w + k : w + k + b],
            )
            k += b
        out = hist[w:]
        packed = 0
        for bit in out[-w:] if count >= w else out:
            packed = (packed << 1) | int(bit)
        if count >= w:
            self.state = packed
        else:
            self.state = ((self.state << count) | packed) & self.mask
        return out.tolist()


def lfsr_bits(count: int, width: int = 15, seed: int = 0x5A5A) -> list[int]:
    """Convenience: ``count`` bits of a fresh maximal LFSR."""
    return LFSR(width=width, seed=seed).bits(count)


def lfsr_symbols(count: int, alphabet: int, width: int = 15, seed: int = 0x5A5A) -> list[int]:
    """Pseudo-random symbols in ``range(alphabet)`` built from LFSR bits.

    For the ternary covert channel the paper sends base-3 symbols; we pack
    two LFSR bits per draw and reject the out-of-range code so the symbol
    stream stays balanced and reproducible.  Draws are batched: each pass
    generates one block of bits, packs every draw at once and keeps the
    in-range codes — the attempt stream (and hence the symbol sequence)
    is identical to the scalar rejection loop.
    """
    if alphabet < 2:
        raise ValueError(f"alphabet must be >= 2, got {alphabet}")
    bits_per = max(1, (alphabet - 1).bit_length())
    lfsr = LFSR(width=width, seed=seed)
    symbols: list[int] = []
    weights = 1 << np.arange(bits_per - 1, -1, -1, dtype=np.int64)
    while len(symbols) < count:
        need = count - len(symbols)
        raw = np.asarray(lfsr.bits(need * bits_per), dtype=np.int64)
        values = raw.reshape(need, bits_per) @ weights
        symbols.extend(int(v) for v in values[values < alphabet])
    return symbols


def bit_iter(width: int = 15, seed: int = 0x5A5A) -> Iterator[int]:
    """Infinite iterator over LFSR output bits."""
    lfsr = LFSR(width=width, seed=seed)
    while True:
        yield lfsr.next_bit()
