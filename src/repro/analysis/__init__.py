"""Analysis utilities used by the attacks and the evaluation harness.

* :mod:`repro.analysis.levenshtein` — edit distance, used by the paper to
  score both the recovered ring sequence (Table I) and the covert channel's
  bit error rate (Section IV).
* :mod:`repro.analysis.lfsr` — the 15-bit maximal-length LFSR that produces
  the pseudo-random test sequence (period 2^15 - 1) used to measure channel
  capacity, following Liu et al.'s methodology.
* :mod:`repro.analysis.correlation` — the cross-correlation classifier for
  website fingerprinting (Section V).
* :mod:`repro.analysis.stats` — means, confidence intervals, percentiles.
* :mod:`repro.analysis.capacity` — bandwidth/error bookkeeping for covert
  channels.
"""

from repro.analysis.capacity import ChannelReport, evaluate_channel
from repro.analysis.correlation import (
    CorrelationClassifier,
    cross_correlation,
    cross_correlation_many,
)
from repro.analysis.levenshtein import (
    cyclic_levenshtein,
    error_rate,
    levenshtein,
    longest_mismatch_run,
)
from repro.analysis.lfsr import LFSR, lfsr_bits, lfsr_symbols
from repro.analysis.stats import (
    confidence_interval,
    mean,
    percentile,
    percentile_rank,
    percentiles,
    stddev,
)

__all__ = [
    "ChannelReport",
    "evaluate_channel",
    "CorrelationClassifier",
    "cross_correlation",
    "cross_correlation_many",
    "levenshtein",
    "cyclic_levenshtein",
    "error_rate",
    "longest_mismatch_run",
    "LFSR",
    "lfsr_bits",
    "lfsr_symbols",
    "confidence_interval",
    "mean",
    "percentile",
    "percentile_rank",
    "percentiles",
    "stddev",
]
