"""Cross-correlation classifier for website fingerprinting (Section V).

The paper's side-channel attack records, per page load, a vector of packet
sizes in cache-block granularity, computes a point-wise-average
*representative* vector per site from offline traces, and classifies a new
observation by cross-correlation against each representative.  This module
implements exactly that — plus shift tolerance, since traces compress and
stretch between loads.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cross_correlation(a: Sequence[float], b: Sequence[float], max_lag: int = 8) -> float:
    """Peak normalised cross-correlation between two traces.

    Both traces are mean-centred and unit-normalised; the result is the
    maximum correlation coefficient over lags in ``[-max_lag, +max_lag]``,
    which absorbs the slight misalignment between loads of the same page.
    Returns 0.0 for degenerate (constant) traces.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    n = min(len(x), len(y))
    if n == 0:
        return 0.0
    x = x[:n] - x[:n].mean()
    y = y[:n] - y[:n].mean()
    denom = np.linalg.norm(x) * np.linalg.norm(y)
    if denom == 0:
        return 0.0
    best = 0.0
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            xs, ys = x[lag:], y[: n - lag]
        else:
            xs, ys = x[: n + lag], y[-lag:]
        if len(xs) == 0:
            continue
        value = float(np.dot(xs, ys)) / denom
        best = max(best, value)
    return best


class CorrelationClassifier:
    """Closed-world classifier over packet-size traces.

    Offline phase: :meth:`fit` receives several traces per label and stores
    the point-wise average as the label's representative (the paper: "a
    point-wise average of the packet sizes, resulting in a vector of these
    points over time").  Online phase: :meth:`classify` returns the label
    whose representative correlates best with the observation.
    """

    def __init__(self, trace_length: int = 100, max_lag: int = 8) -> None:
        if trace_length <= 0:
            raise ValueError(f"trace_length must be positive, got {trace_length}")
        self.trace_length = trace_length
        self.max_lag = max_lag
        self.representatives: dict[str, np.ndarray] = {}

    def _pad(self, trace: Sequence[float]) -> np.ndarray:
        out = np.zeros(self.trace_length, dtype=float)
        n = min(len(trace), self.trace_length)
        out[:n] = np.asarray(trace[:n], dtype=float)
        return out

    def fit(self, training: dict[str, list[Sequence[float]]]) -> None:
        """Build one representative per label from training traces."""
        if not training:
            raise ValueError("no training data")
        self.representatives = {}
        for label, traces in training.items():
            if not traces:
                raise ValueError(f"label {label!r} has no training traces")
            stacked = np.stack([self._pad(t) for t in traces])
            self.representatives[label] = stacked.mean(axis=0)

    def scores(self, trace: Sequence[float]) -> dict[str, float]:
        """Correlation score of ``trace`` against every representative."""
        if not self.representatives:
            raise RuntimeError("classifier not fitted")
        padded = self._pad(trace)
        return {
            label: cross_correlation(padded, rep, self.max_lag)
            for label, rep in self.representatives.items()
        }

    def classify(self, trace: Sequence[float]) -> str:
        """Best-scoring label for ``trace``."""
        scored = self.scores(trace)
        return max(scored, key=scored.get)

    def accuracy(self, labelled_traces: list[tuple[str, Sequence[float]]]) -> float:
        """Fraction of traces classified as their true label."""
        if not labelled_traces:
            raise ValueError("no traces to score")
        correct = sum(
            1 for label, trace in labelled_traces if self.classify(trace) == label
        )
        return correct / len(labelled_traces)
