"""Cross-correlation classifier for website fingerprinting (Section V).

The paper's side-channel attack records, per page load, a vector of packet
sizes in cache-block granularity, computes a point-wise-average
*representative* vector per site from offline traces, and classifies a new
observation by cross-correlation against each representative.  This module
implements exactly that — plus shift tolerance, since traces compress and
stretch between loads.

Scoring is batched: :meth:`CorrelationClassifier.score_matrix` evaluates
every (trace, representative) pair over every lag with one matrix product
per lag instead of one ``np.dot`` per (pair, lag).  BLAS reassociates the
reductions, so batched scores can differ from the scalar reference in the
last float ulp — classification *decisions* (argmax with first-wins tie
breaking) are pinned exactly against :mod:`repro.analysis.legacy`, scores
to within 1e-12 (``tests/test_analysis_equivalence.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cross_correlation(a: Sequence[float], b: Sequence[float], max_lag: int = 8) -> float:
    """Peak normalised cross-correlation between two traces.

    Both traces are mean-centred and unit-normalised; the result is the
    maximum correlation coefficient over lags in ``[-max_lag, +max_lag]``,
    which absorbs the slight misalignment between loads of the same page.
    Returns 0.0 for degenerate (constant) traces.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    n = min(len(x), len(y))
    if n == 0:
        return 0.0
    x = x[:n] - x[:n].mean()
    y = y[:n] - y[:n].mean()
    denom = np.linalg.norm(x) * np.linalg.norm(y)
    if denom == 0:
        return 0.0
    best = 0.0
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            xs, ys = x[lag:], y[: n - lag]
        else:
            xs, ys = x[: n + lag], y[-lag:]
        if len(xs) == 0:
            continue
        value = float(np.dot(xs, ys)) / denom
        best = max(best, value)
    return best


def cross_correlation_many(
    traces: np.ndarray, reps: np.ndarray, max_lag: int = 8
) -> np.ndarray:
    """Peak normalised cross-correlation of every trace against every
    representative: ``out[i, j]`` pairs ``traces[i]`` with ``reps[j]``.

    Both inputs are 2-D with the same row length; each row is mean-centred
    and unit-normalised independently, then all lags run as one matrix
    product each.  Degenerate (constant) rows score 0.0, and negative
    peaks clip to 0.0, matching :func:`cross_correlation`.
    """
    traces = np.asarray(traces, dtype=float)
    reps = np.asarray(reps, dtype=float)
    if traces.ndim != 2 or reps.ndim != 2 or traces.shape[1] != reps.shape[1]:
        raise ValueError(
            f"expected matching 2-D inputs, got {traces.shape} vs {reps.shape}"
        )
    n = traces.shape[1]
    best = np.zeros((traces.shape[0], reps.shape[0]), dtype=float)
    if n == 0:
        return best
    xc = traces - traces.mean(axis=1, keepdims=True)
    yc = reps - reps.mean(axis=1, keepdims=True)
    denom = np.linalg.norm(xc, axis=1)[:, None] * np.linalg.norm(yc, axis=1)[None, :]
    live = denom > 0
    if not live.any():
        return best
    denom = np.where(live, denom, 1.0)
    for lag in range(-max_lag, max_lag + 1):
        if abs(lag) >= n:
            continue
        if lag >= 0:
            vals = xc[:, lag:] @ yc[:, : n - lag].T
        else:
            vals = xc[:, : n + lag] @ yc[:, -lag:].T
        np.maximum(best, vals / denom, out=best)
    best[~live] = 0.0
    return best


class CorrelationClassifier:
    """Closed-world classifier over packet-size traces.

    Offline phase: :meth:`fit` receives several traces per label and stores
    the point-wise average as the label's representative (the paper: "a
    point-wise average of the packet sizes, resulting in a vector of these
    points over time").  Online phase: :meth:`classify` returns the label
    whose representative correlates best with the observation; batches of
    observations score as one matrix per lag via :meth:`classify_many`.
    """

    def __init__(self, trace_length: int = 100, max_lag: int = 8) -> None:
        if trace_length <= 0:
            raise ValueError(f"trace_length must be positive, got {trace_length}")
        self.trace_length = trace_length
        self.max_lag = max_lag
        self.representatives: dict[str, np.ndarray] = {}

    def _pad(self, trace: Sequence[float]) -> np.ndarray:
        out = np.zeros(self.trace_length, dtype=float)
        n = min(len(trace), self.trace_length)
        out[:n] = np.asarray(trace[:n], dtype=float)
        return out

    def fit(self, training: dict[str, list[Sequence[float]]]) -> None:
        """Build one representative per label from training traces."""
        if not training:
            raise ValueError("no training data")
        self.representatives = {}
        for label, traces in training.items():
            if not traces:
                raise ValueError(f"label {label!r} has no training traces")
            stacked = np.stack([self._pad(t) for t in traces])
            self.representatives[label] = stacked.mean(axis=0)

    @property
    def labels(self) -> list[str]:
        """Fitted labels, in insertion (fit) order — the tie-break order."""
        return list(self.representatives)

    def score_matrix(self, traces: Sequence[Sequence[float]]) -> np.ndarray:
        """``out[i, j]`` = correlation of ``traces[i]`` with label ``j``
        (column order = :attr:`labels`), all pairs and lags batched."""
        if not self.representatives:
            raise RuntimeError("classifier not fitted")
        reps = np.stack([self._pad(r) for r in self.representatives.values()])
        if not len(traces):
            return np.zeros((0, len(reps)), dtype=float)
        padded = np.stack([self._pad(t) for t in traces])
        return cross_correlation_many(padded, reps, self.max_lag)

    def scores(self, trace: Sequence[float]) -> dict[str, float]:
        """Correlation score of ``trace`` against every representative."""
        row = self.score_matrix([trace])[0]
        return {label: float(s) for label, s in zip(self.labels, row)}

    def classify(self, trace: Sequence[float]) -> str:
        """Best-scoring label for ``trace``."""
        return self.classify_many([trace])[0]

    def classify_many(self, traces: Sequence[Sequence[float]]) -> list[str]:
        """Best-scoring label per trace, one score matrix for the batch.

        ``argmax`` keeps the first of tied maxima, matching the scalar
        ``max(scored, key=scored.get)`` over the fit-order dict.
        """
        matrix = self.score_matrix(traces)
        labels = self.labels
        return [labels[i] for i in np.argmax(matrix, axis=1)]

    def accuracy(self, labelled_traces: list[tuple[str, Sequence[float]]]) -> float:
        """Fraction of traces classified as their true label."""
        if not labelled_traces:
            raise ValueError("no traces to score")
        predicted = self.classify_many([trace for _label, trace in labelled_traces])
        correct = sum(
            1 for (label, _), guess in zip(labelled_traces, predicted) if guess == label
        )
        return correct / len(labelled_traces)
