"""Levenshtein (edit) distance and sequence-quality metrics.

The paper uses edit distance twice: Table I scores the recovered ring-buffer
sequence against the instrumented ground truth, and Section IV estimates the
covert channel's error rate by the edit distance between sent and received
pseudo-random sequences.  ``cyclic_levenshtein`` handles the fact that a
recovered *ring* has an arbitrary starting point.
"""

from __future__ import annotations

from typing import Sequence


def levenshtein(a: Sequence, b: Sequence) -> int:
    """Minimum number of single-element insertions, deletions and
    substitutions that turn ``a`` into ``b``.

    Classic dynamic program with two rolling rows: O(len(a) * len(b)) time,
    O(min) space.
    """
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def cyclic_levenshtein(recovered: Sequence, truth: Sequence) -> int:
    """Edit distance between a recovered ring and the true ring, minimised
    over rotations (and reflection is *not* allowed — the ring has a
    direction, packets fill it one way).

    The recovered sequence starts at an arbitrary node (Algorithm 1 begins
    its traversal at a random node), so we rotate the truth to the best
    alignment before scoring.
    """
    if not truth:
        return len(recovered)
    best = None
    doubled = list(truth) + list(truth)
    n = len(truth)
    # Anchor on the first recovered element to limit rotations tried.
    anchors = [i for i in range(n) if doubled[i] == recovered[0]] if recovered else [0]
    if not anchors:
        anchors = range(n)
    for start in anchors:
        rotated = doubled[start : start + n]
        distance = levenshtein(recovered, rotated)
        if best is None or distance < best:
            best = distance
            if best == 0:
                break
    return best if best is not None else len(recovered)


def best_rotation(recovered: Sequence, truth: Sequence) -> list:
    """Rotate ``truth`` to the alignment with minimum edit distance.

    Useful before positional metrics (like mismatch runs) since the
    recovered ring starts at an arbitrary node.
    """
    if not truth:
        return []
    doubled = list(truth) + list(truth)
    n = len(truth)
    best_distance, best_start = None, 0
    anchors = [i for i in range(n) if recovered and doubled[i] == recovered[0]]
    for start in anchors or range(n):
        distance = levenshtein(recovered, doubled[start : start + n])
        if best_distance is None or distance < best_distance:
            best_distance, best_start = distance, start
            if distance == 0:
                break
    return doubled[best_start : best_start + n]


def error_rate(recovered: Sequence, truth: Sequence, cyclic: bool = False) -> float:
    """Edit distance normalised by the ground-truth length (Table I's
    "Error Rate" row and the covert channel's bit error rate)."""
    if not truth:
        raise ValueError("truth sequence is empty")
    distance = cyclic_levenshtein(recovered, truth) if cyclic else levenshtein(recovered, truth)
    return distance / len(truth)


def edit_breakdown(sent: Sequence, received: Sequence) -> tuple[int, int, int]:
    """``(substitutions, insertions, deletions)`` turning ``sent`` into
    ``received``, from one minimum edit script.

    The three counts always sum to ``levenshtein(sent, received)`` — the
    traceback just attributes the minimum distance to error classes, which
    is how the covert channel separates bit flips (substitutions) from
    sync slips (a missed symbol is a deletion, a spurious probe hit is an
    insertion).  Ties prefer the diagonal, then deletion.
    """
    n, m = len(sent), len(received)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        row = dp[i]
        prev = dp[i - 1]
        si = sent[i - 1]
        for j in range(1, m + 1):
            cost = 0 if si == received[j - 1] else 1
            row[j] = min(prev[j] + 1, row[j - 1] + 1, prev[j - 1] + cost)
    substitutions = insertions = deletions = 0
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if sent[i - 1] == received[j - 1] else 1
            if dp[i][j] == dp[i - 1][j - 1] + cost:
                substitutions += cost
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i][j] == dp[i - 1][j] + 1:
            deletions += 1  # sent symbol never showed up
            i -= 1
        else:
            insertions += 1  # received symbol nobody sent
            j -= 1
    return substitutions, insertions, deletions


def longest_mismatch_run(recovered: Sequence, truth: Sequence) -> int:
    """Length of the longest run of positions where aligned sequences differ
    (Table I's "Longest Mismatch").

    Sequences are aligned with the standard edit-distance traceback; runs
    are counted over the alignment, with insertions/deletions counting as
    mismatching positions.
    """
    n, m = len(recovered), len(truth)
    # Full DP table for traceback (sequences here are ring-sized, ~256).
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        row = dp[i]
        prev = dp[i - 1]
        ai = recovered[i - 1]
        for j in range(1, m + 1):
            cost = 0 if ai == truth[j - 1] else 1
            row[j] = min(prev[j] + 1, row[j - 1] + 1, prev[j - 1] + cost)
    # Traceback, collecting match/mismatch flags.
    flags: list[bool] = []  # True = mismatch at this alignment column
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if recovered[i - 1] == truth[j - 1] else 1
            if dp[i][j] == dp[i - 1][j - 1] + cost:
                flags.append(cost == 1)
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i][j] == dp[i - 1][j] + 1:
            flags.append(True)
            i -= 1
        else:
            flags.append(True)
            j -= 1
    longest = current = 0
    for mismatched in flags:
        current = current + 1 if mismatched else 0
        longest = max(longest, current)
    return longest
