"""Levenshtein (edit) distance and sequence-quality metrics.

The paper uses edit distance twice: Table I scores the recovered ring-buffer
sequence against the instrumented ground truth, and Section IV estimates the
covert channel's error rate by the edit distance between sent and received
pseudo-random sequences.  ``cyclic_levenshtein`` handles the fact that a
recovered *ring* has an arbitrary starting point.

The dynamic programs here run row-vectorised in NumPy: elements are first
encoded to integer codes, each DP row is produced with two array minimums,
and the sequential insertion recurrence ``d[j] = min(d[j], d[j-1] + 1)``
collapses to a prefix minimum of ``d[j] - j`` (subtracting the column index
turns the +1-per-step chain into a running minimum).  Integer arithmetic
throughout, so results are bit-identical to the frozen scalar DP in
:mod:`repro.analysis.legacy` — ``tests/test_analysis_equivalence.py`` pins
that equivalence on randomized inputs.  ``cyclic_levenshtein`` and
``best_rotation`` batch *all* candidate rotations through one DP whose rows
carry a rotation axis.  Unhashable elements (no integer encoding) fall back
to the scalar reference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis import legacy as _legacy

#: Below this DP area the Python loop beats NumPy's per-row overhead.
_SCALAR_AREA_CUTOFF = 256


def _encode(a: Sequence, b: Sequence) -> tuple[np.ndarray, np.ndarray] | None:
    """Map elements of both sequences to shared integer codes.

    Equality of codes must match ``==`` on the originals, which holds for
    any consistently-hashable elements; returns None when an element is
    unhashable (caller falls back to the scalar DP).
    """
    table: dict = {}
    try:
        ca = np.fromiter(
            (table.setdefault(x, len(table)) for x in a), np.int64, count=len(a)
        )
        cb = np.fromiter(
            (table.setdefault(x, len(table)) for x in b), np.int64, count=len(b)
        )
    except TypeError:
        return None
    return ca, cb


def _row_distance(ca: np.ndarray, cb: np.ndarray) -> int:
    """Rolling-row vectorised DP over encoded sequences (both non-empty)."""
    m = len(cb)
    ar = np.arange(m + 1, dtype=np.int64)
    prev = ar.copy()
    cur = np.empty(m + 1, dtype=np.int64)
    for i in range(1, len(ca) + 1):
        cost = (cb != ca[i - 1]).astype(np.int64)
        cur[0] = i
        np.minimum(prev[1:] + 1, prev[:-1] + cost, out=cur[1:])
        np.subtract(cur, ar, out=cur)
        np.minimum.accumulate(cur, out=cur)
        np.add(cur, ar, out=cur)
        prev, cur = cur, prev
    return int(prev[-1])


def levenshtein(a: Sequence, b: Sequence) -> int:
    """Minimum number of single-element insertions, deletions and
    substitutions that turn ``a`` into ``b``.

    O(len(a) * len(b)) time, O(min) space; the inner DP row is a NumPy
    kernel for large inputs and the classic scalar loop below the
    crossover point (identical results either way).
    """
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    if len(a) * len(b) <= _SCALAR_AREA_CUTOFF:
        return _legacy.levenshtein(a, b)
    encoded = _encode(a, b)
    if encoded is None:
        return _legacy.levenshtein(a, b)
    return _row_distance(*encoded)


def _rotation_distances(
    recovered: Sequence, doubled: list, starts: Sequence[int], n: int
) -> np.ndarray | None:
    """Edit distance of ``recovered`` against every ``doubled[s : s + n]``,
    all rotations sharing one DP whose rows have a rotation axis."""
    encoded = _encode(recovered, doubled)
    if encoded is None:
        return None
    rec, dbl = encoded
    starts_arr = np.asarray(list(starts), dtype=np.int64)
    rots = dbl[starts_arr[:, None] + np.arange(n, dtype=np.int64)[None, :]]
    nrot = len(starts_arr)
    ar = np.arange(n + 1, dtype=np.int64)
    prev = np.tile(ar, (nrot, 1))
    cur = np.empty_like(prev)
    for i in range(1, len(rec) + 1):
        cost = (rots != rec[i - 1]).astype(np.int64)
        cur[:, 0] = i
        np.minimum(prev[:, 1:] + 1, prev[:, :-1] + cost, out=cur[:, 1:])
        np.subtract(cur, ar, out=cur)
        np.minimum.accumulate(cur, axis=1, out=cur)
        np.add(cur, ar, out=cur)
        prev, cur = cur, prev
    return prev[:, -1]


def _anchored_starts(recovered: Sequence, doubled: list, n: int) -> list[int]:
    """Rotation start offsets to try, anchored on ``recovered[0]``."""
    anchors = (
        [i for i in range(n) if doubled[i] == recovered[0]] if recovered else [0]
    )
    if not anchors:
        anchors = list(range(n))
    return anchors


def cyclic_levenshtein(recovered: Sequence, truth: Sequence) -> int:
    """Edit distance between a recovered ring and the true ring, minimised
    over rotations (and reflection is *not* allowed — the ring has a
    direction, packets fill it one way).

    The recovered sequence starts at an arbitrary node (Algorithm 1 begins
    its traversal at a random node), so we rotate the truth to the best
    alignment before scoring.  All candidate rotations run through one
    batched DP.
    """
    if not truth:
        return len(recovered)
    doubled = list(truth) + list(truth)
    n = len(truth)
    anchors = _anchored_starts(recovered, doubled, n)
    if not recovered:
        return n
    distances = _rotation_distances(recovered, doubled, anchors, n)
    if distances is None:
        return _legacy.cyclic_levenshtein(recovered, truth)
    return int(distances.min())


def best_rotation(recovered: Sequence, truth: Sequence) -> list:
    """Rotate ``truth`` to the alignment with minimum edit distance.

    Useful before positional metrics (like mismatch runs) since the
    recovered ring starts at an arbitrary node.  Ties keep the earliest
    anchor, matching the scalar reference's first-strictly-better scan.
    """
    if not truth:
        return []
    doubled = list(truth) + list(truth)
    n = len(truth)
    anchors = [i for i in range(n) if recovered and doubled[i] == recovered[0]]
    starts = anchors or list(range(n))
    distances = _rotation_distances(recovered, doubled, starts, n)
    if distances is None:
        return _legacy.best_rotation(recovered, truth)
    best_start = starts[int(np.argmin(distances))]
    return doubled[best_start : best_start + n]


def error_rate(recovered: Sequence, truth: Sequence, cyclic: bool = False) -> float:
    """Edit distance normalised by the ground-truth length (Table I's
    "Error Rate" row and the covert channel's bit error rate)."""
    if not truth:
        raise ValueError("truth sequence is empty")
    distance = cyclic_levenshtein(recovered, truth) if cyclic else levenshtein(recovered, truth)
    return distance / len(truth)


def _full_dp(ca: np.ndarray, cb: np.ndarray) -> np.ndarray:
    """The complete (n+1, m+1) DP table, rows filled vectorised."""
    n, m = len(ca), len(cb)
    dp = np.empty((n + 1, m + 1), dtype=np.int64)
    ar = np.arange(m + 1, dtype=np.int64)
    dp[0] = ar
    for i in range(1, n + 1):
        cost = (cb != ca[i - 1]).astype(np.int64)
        row = dp[i]
        row[0] = i
        np.minimum(dp[i - 1, 1:] + 1, dp[i - 1, :-1] + cost, out=row[1:])
        np.subtract(row, ar, out=row)
        np.minimum.accumulate(row, out=row)
        np.add(row, ar, out=row)
    return dp


def edit_breakdown(sent: Sequence, received: Sequence) -> tuple[int, int, int]:
    """``(substitutions, insertions, deletions)`` turning ``sent`` into
    ``received``, from one minimum edit script.

    The three counts always sum to ``levenshtein(sent, received)`` — the
    traceback just attributes the minimum distance to error classes, which
    is how the covert channel separates bit flips (substitutions) from
    sync slips (a missed symbol is a deletion, a spurious probe hit is an
    insertion).  Ties prefer the diagonal, then deletion.  The DP table
    fills vectorised; the O(n + m) traceback stays scalar and reads the
    same table values as the frozen reference, so the attribution is
    bit-identical.
    """
    encoded = _encode(sent, received)
    if encoded is None:
        return _legacy.edit_breakdown(sent, received)
    ca, cb = encoded
    dp = _full_dp(ca, cb)
    substitutions = insertions = deletions = 0
    i, j = len(ca), len(cb)
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if ca[i - 1] == cb[j - 1] else 1
            if dp[i, j] == dp[i - 1, j - 1] + cost:
                substitutions += cost
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i, j] == dp[i - 1, j] + 1:
            deletions += 1  # sent symbol never showed up
            i -= 1
        else:
            insertions += 1  # received symbol nobody sent
            j -= 1
    return substitutions, insertions, deletions


def longest_mismatch_run(recovered: Sequence, truth: Sequence) -> int:
    """Length of the longest run of positions where aligned sequences differ
    (Table I's "Longest Mismatch").

    Sequences are aligned with the standard edit-distance traceback; runs
    are counted over the alignment, with insertions/deletions counting as
    mismatching positions.
    """
    encoded = _encode(recovered, truth)
    if encoded is None:
        return _legacy.longest_mismatch_run(recovered, truth)
    ca, cb = encoded
    dp = _full_dp(ca, cb)
    flags: list[bool] = []  # True = mismatch at this alignment column
    i, j = len(ca), len(cb)
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if ca[i - 1] == cb[j - 1] else 1
            if dp[i, j] == dp[i - 1, j - 1] + cost:
                flags.append(cost == 1)
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i, j] == dp[i - 1, j] + 1:
            flags.append(True)
            i -= 1
        else:
            flags.append(True)
            j -= 1
    longest = current = 0
    for mismatched in flags:
        current = current + 1 if mismatched else 0
        longest = max(longest, current)
    return longest
