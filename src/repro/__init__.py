"""Packet Chasing (ISCA 2020) — full-system reproduction in Python.

This library reproduces Taram, Venkat and Tullsen's *Packet Chasing* attack
and defenses end to end against a cycle-granular simulated machine:

* :mod:`repro.core` — clock, events, configuration, machine assembly.
* :mod:`repro.mem` — physical frames, address spaces (4 KB + huge pages).
* :mod:`repro.cache` — sliced LLC with complex indexing and DDIO.
* :mod:`repro.net` — frames, paced traffic sources, website traces.
* :mod:`repro.nic` — rx ring, DMA engine, IGB driver receive path.
* :mod:`repro.attack` — the paper's contribution: eviction sets,
  PRIME+PROBE, ring discovery, the SEQUENCER, covert channels, web
  fingerprinting.
* :mod:`repro.defense` — ring-buffer randomization and adaptive I/O cache
  partitioning.
* :mod:`repro.perf` — workload models and load generation for the defense
  evaluation.
* :mod:`repro.analysis` — Levenshtein distance, LFSR bit sources,
  correlation classification, channel metrics, confidence intervals.

Quick start::

    from repro import Machine
    machine = Machine()
    machine.install_nic()

See ``examples/quickstart.py`` for a complete tour.
"""

from repro.core.config import (
    CacheGeometry,
    DDIOConfig,
    LinkConfig,
    MachineConfig,
    ProcessorConfig,
    RingConfig,
    TimingParams,
)
from repro.core.machine import Machine, Process

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "Process",
    "MachineConfig",
    "CacheGeometry",
    "DDIOConfig",
    "LinkConfig",
    "ProcessorConfig",
    "RingConfig",
    "TimingParams",
    "__version__",
]
