"""Synthetic website packet traces for the fingerprinting experiments.

The paper's Section V attack fingerprints websites from the *sizes* of their
response packets measured in cache-block granularity (Fig. 13), using traces
captured with tcpdump during Firefox page loads.  Without network access we
synthesise a corpus with the statistical structure the paper describes
(citing Sinha et al.): packets congregate at the two ends of the spectrum —
MTU-sized fragments of large objects and tiny control packets — while the
*last* packet of each object falls anywhere in between, and it is largely
those tail packets that identify a page.

Each :class:`WebsiteProfile` is deterministic in its name and seed, and
every simulated load jitters timing, occasionally drops/duplicates control
packets and re-sizes tails slightly — mimicking load-to-load variation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

MTU_FRAME = 1514  # MTU + Ethernet header
ACK_FRAME = 64


@dataclass
class WebsiteProfile:
    """A synthetic website: a canonical packet-size/timing pattern.

    The canonical trace is built object-by-object: a page is a set of
    responses (HTML, scripts, images...), each a burst of MTU frames ending
    in a tail frame whose size is object-specific, interleaved with ACKs.
    """

    name: str
    seed: int = 0
    n_objects_range: tuple[int, int] = (6, 18)
    object_frames_range: tuple[int, int] = (1, 12)
    base_gap_s: float = 150e-6
    canonical: list[tuple[float, int]] = field(init=False)

    def __post_init__(self) -> None:
        rng = random.Random(f"{self.name}:{self.seed}")
        trace: list[tuple[float, int]] = []
        n_objects = rng.randint(*self.n_objects_range)
        # Initial request handshake: SYN-ACK-ish control frames.
        trace.append((self.base_gap_s, ACK_FRAME))
        trace.append((self.base_gap_s, rng.randint(200, 600)))
        for _ in range(n_objects):
            burst = rng.randint(*self.object_frames_range)
            for _ in range(burst - 1):
                trace.append((self.base_gap_s, MTU_FRAME))
            # The object's tail frame: the discriminating feature.
            trace.append((self.base_gap_s, rng.randint(66, MTU_FRAME)))
            # Control/ack chatter between objects.
            for _ in range(rng.randint(1, 3)):
                trace.append((self.base_gap_s * 2, ACK_FRAME))
        self.canonical = trace

    def sample(
        self,
        rng: random.Random,
        gap_jitter: float = 0.3,
        drop_prob: float = 0.02,
        dup_prob: float = 0.02,
        tail_resize_prob: float = 0.05,
    ) -> list[tuple[float, int]]:
        """One simulated load: the canonical trace with realistic noise."""
        out: list[tuple[float, int]] = []
        for gap, size in self.canonical:
            if size == ACK_FRAME and rng.random() < drop_prob:
                continue
            jittered_gap = gap * (1.0 + rng.uniform(-gap_jitter, gap_jitter))
            if size not in (ACK_FRAME, MTU_FRAME) and rng.random() < tail_resize_prob:
                size = max(ACK_FRAME, min(MTU_FRAME, size + rng.randint(-64, 64)))
            out.append((jittered_gap, size))
            if size == ACK_FRAME and rng.random() < dup_prob:
                out.append((jittered_gap * 0.5, ACK_FRAME))
        return out

    def canonical_block_sizes(self, line_size: int = 64, cap: int = 4) -> list[int]:
        """Canonical sizes in cache-block granularity, capped at ``cap``
        (the attacker distinguishes 1, 2, 3 and "4 or more" blocks)."""
        return [min(cap, -(-size // line_size)) for _, size in self.canonical]


class WebsiteCorpus:
    """The paper's closed-world corpus: five well-known sites."""

    DEFAULT_SITES = (
        "facebook.com",
        "twitter.com",
        "google.com",
        "amazon.com",
        "apple.com",
    )

    def __init__(self, sites: tuple[str, ...] | None = None, seed: int = 7) -> None:
        names = sites or self.DEFAULT_SITES
        self.profiles = {name: WebsiteProfile(name, seed=seed) for name in names}

    def __iter__(self):
        return iter(self.profiles.values())

    def __len__(self) -> int:
        return len(self.profiles)

    def names(self) -> list[str]:
        return list(self.profiles)

    def get(self, name: str) -> WebsiteProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(
                f"unknown site {name!r}; corpus has {sorted(self.profiles)}"
            ) from None


class LoginTraceFactory:
    """Synthetic hotcrp.com login traces (Fig. 13).

    A successful login triggers a redirect plus a personalised dashboard
    (more, larger responses); a failed login re-renders the small login form
    with an error banner.  The two therefore differ visibly in the first
    ~100 packet sizes, which is exactly what the paper's figure shows.
    """

    def __init__(self, seed: int = 11) -> None:
        self._success = WebsiteProfile(
            "hotcrp.com/login-success",
            seed=seed,
            n_objects_range=(10, 14),
            object_frames_range=(2, 10),
        )
        self._failure = WebsiteProfile(
            "hotcrp.com/login-failure",
            seed=seed + 1,
            n_objects_range=(3, 5),
            object_frames_range=(1, 4),
        )

    def success(self, rng: random.Random) -> list[tuple[float, int]]:
        """One successful-login load trace."""
        return self._success.sample(rng)

    def failure(self, rng: random.Random) -> list[tuple[float, int]]:
        """One failed-login load trace."""
        return self._failure.sample(rng)

    @property
    def profiles(self) -> dict[str, WebsiteProfile]:
        return {"success": self._success, "failure": self._failure}
