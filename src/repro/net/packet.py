"""Ethernet frame abstraction.

Only metadata is modelled: the attack observes which cache blocks of an rx
buffer are touched, which depends solely on the frame's size in 64-byte
increments.  The Ethernet header is 26 bytes on the wire but what lands in
the rx buffer is header + payload starting at the buffer base, so the
number of cache blocks is ``ceil(size / 64)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Ethernet MAC header: 6 dst + 6 src + 2 ethertype, plus VLAN allowance.
ETHERNET_HEADER_BYTES = 14

_frame_ids = itertools.count()


@dataclass
class Frame:
    """One received Ethernet frame.

    Parameters
    ----------
    size:
        Total bytes placed into the rx buffer (header + payload).  Must be
        between 60 (minimum frame, minus CRC) and the buffer size.
    protocol:
        Free-form protocol tag.  Frames with protocol ``"unknown"`` are
        discarded by the driver after header inspection — the paper's covert
        channel uses exactly such broadcast frames, which still land in the
        cache under DDIO.
    symbol:
        Optional covert-channel symbol this frame encodes (set by the trojan,
        used by experiments as ground truth; the spy never reads it).
    """

    size: int
    protocol: str = "raw"
    symbol: int | None = None
    sent_time: int | None = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"frame size must be positive, got {self.size}")

    def n_blocks(self, line_size: int = 64) -> int:
        """Cache blocks the frame occupies in the rx buffer."""
        return -(-self.size // line_size)

    def is_broadcast(self) -> bool:
        """Whether the frame is a broadcast (discarded above the driver)."""
        return self.protocol in ("unknown", "broadcast")
