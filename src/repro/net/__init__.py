"""Network-side modelling: frames, paced traffic sources, website traces.

The attack never reads packet *contents* — only sizes and timing matter —
so frames here carry size and protocol metadata, not payload bytes.  Traffic
sources schedule frame deliveries onto the machine's event queue, paced by
the Ethernet line rate (:class:`repro.core.config.LinkConfig`), which is
what bounds the covert channel's capacity in Section IV of the paper.
"""

from repro.net.packet import ETHERNET_HEADER_BYTES, Frame
from repro.net.traffic import (
    ConstantStream,
    PatternStream,
    PoissonNoise,
    TraceReplay,
    TrafficSource,
)
from repro.net.websites import LoginTraceFactory, WebsiteCorpus, WebsiteProfile

__all__ = [
    "Frame",
    "ETHERNET_HEADER_BYTES",
    "TrafficSource",
    "ConstantStream",
    "PatternStream",
    "PoissonNoise",
    "TraceReplay",
    "WebsiteCorpus",
    "WebsiteProfile",
    "LoginTraceFactory",
]
