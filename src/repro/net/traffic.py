"""Traffic sources: schedule paced frame deliveries into the NIC.

Each source is attached to a machine + NIC pair and schedules its frames on
the machine's event queue.  Delivery times respect both the requested send
rate and the physical line rate for the frame size (a 1 GbE link cannot
carry more than ~500k 192-byte frames per second — the limit behind the
covert channel's 1953 symbols/s ceiling in Section IV).

Sources self-reschedule one event at a time, so arbitrarily long streams
cost O(1) queue space.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from repro.core.config import LinkConfig
from repro.net.packet import Frame


class TrafficSource(ABC):
    """Base class: generates frames and schedules them onto a machine."""

    def __init__(self, link: LinkConfig | None = None) -> None:
        self.link = link or LinkConfig()
        self.sent = 0
        self._machine = None
        self._nic = None
        self._stopped = False

    @abstractmethod
    def _frames(self) -> Iterator[tuple[float, Frame]]:
        """Yield ``(gap_seconds, frame)`` pairs; gap precedes the frame."""

    def attach(self, machine, nic, start_at: int | None = None) -> None:
        """Begin delivering frames via ``machine.events`` into ``nic``.

        When the machine carries an active fault plan with net faults, the
        frame stream is transparently wrapped with seeded loss, duplication,
        reordering and burst jitter (:mod:`repro.faults.injectors`) — every
        source, including experiment senders, sees the same lossy link.
        """
        self._machine = machine
        self._nic = nic
        self._iter = self._frames()
        faults = getattr(machine, "faults", None)
        if faults is not None and faults.net_active:
            from repro.faults.injectors import faulty_frames

            self._iter = faulty_frames(faults, self._iter)
        start = machine.clock.now if start_at is None else start_at
        self._schedule_next(start)

    def stop(self) -> None:
        """Stop after the currently scheduled frame (if any)."""
        self._stopped = True

    def _schedule_next(self, earliest: int) -> None:
        if self._stopped:
            return
        try:
            gap_s, frame = next(self._iter)
        except StopIteration:
            return
        clock = self._machine.clock
        # The frame cannot arrive faster than the wire can carry it.
        gap_s = max(gap_s, self.link.frame_time_seconds(frame.size))
        at = max(earliest + clock.cycles(gap_s), clock.now)

        def deliver() -> None:
            frame.sent_time = self._machine.clock.now
            self._nic.deliver(frame)
            self.sent += 1
            self._schedule_next(self._machine.clock.now)

        self._machine.events.schedule(at, deliver, label=f"frame#{frame.frame_id}")


class ConstantStream(TrafficSource):
    """A fixed-size, fixed-rate stream (the paper's broadcast sender)."""

    def __init__(
        self,
        size: int,
        rate_pps: float,
        count: int | None = None,
        protocol: str = "broadcast",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.size = size
        self.rate_pps = rate_pps
        self.count = count
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        gap = 1.0 / self.rate_pps
        n = 0
        while self.count is None or n < self.count:
            yield gap, Frame(size=self.size, protocol=self.protocol)
            n += 1


class PatternStream(TrafficSource):
    """Replays an explicit sequence of frame sizes at a fixed rate.

    The covert-channel trojan builds on this: each symbol becomes a burst of
    equal-size frames (see :mod:`repro.attack.covert`).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rate_pps: float,
        symbols: Sequence[int] | None = None,
        protocol: str = "broadcast",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        if symbols is not None and len(symbols) != len(sizes):
            raise ValueError("symbols must parallel sizes")
        self.sizes = list(sizes)
        self.symbols = list(symbols) if symbols is not None else None
        self.rate_pps = rate_pps
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        gap = 1.0 / self.rate_pps
        for i, size in enumerate(self.sizes):
            symbol = self.symbols[i] if self.symbols is not None else None
            yield gap, Frame(size=size, protocol=self.protocol, symbol=symbol)


class PoissonNoise(TrafficSource):
    """Background traffic with exponential inter-arrivals and random sizes.

    Used to stress the attack's noise tolerance: these are the "extra
    packets not sent by the co-operating sender" of Section III-C.
    """

    def __init__(
        self,
        rate_pps: float,
        rng: random.Random,
        size_choices: Sequence[int] = (64, 128, 256, 512, 1514),
        count: int | None = None,
        protocol: str = "tcp",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.rate_pps = rate_pps
        self.rng = rng
        self.size_choices = list(size_choices)
        self.count = count
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        n = 0
        while self.count is None or n < self.count:
            gap = self.rng.expovariate(self.rate_pps)
            size = self.rng.choice(self.size_choices)
            yield gap, Frame(size=size, protocol=self.protocol)
            n += 1


class TraceReplay(TrafficSource):
    """Replays ``(gap_seconds, size)`` pairs — e.g. a website load trace."""

    def __init__(
        self,
        trace: Iterable[tuple[float, int]],
        protocol: str = "tcp",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        self.trace = list(trace)
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        for gap_s, size in self.trace:
            yield gap_s, Frame(size=size, protocol=self.protocol)
