"""Traffic sources: schedule paced frame deliveries into the NIC.

Each source is attached to a machine + NIC pair and schedules its frames on
the machine's event queue.  Delivery times respect both the requested send
rate and the physical line rate for the frame size (a 1 GbE link cannot
carry more than ~500k 192-byte frames per second — the limit behind the
covert channel's 1953 symbols/s ceiling in Section IV).

Sources self-reschedule one event at a time, so arbitrarily long streams
cost O(1) queue space.

Frame events are *burst-capable*: when the machine's event loop finds one
at the head of the queue with no other event pending before it would
matter, it hands the source the whole window up to the next foreign event
(see ``Machine._run_pending``) and :meth:`TrafficSource._drain` delivers
frames back-to-back — one heap round-trip per *burst* instead of per
frame.  The drain bails back to per-event scheduling whenever the
interleaving could be observable: injected faults, DDIO off (receives go
through the event queue), or an active cache partition.  Each frame is
still delivered at exactly the cycle and in exactly the iterator/RNG
order of the scalar path, which ``tests/test_rx_equivalence.py`` pins.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from repro.core.config import LinkConfig
from repro.net.packet import Frame


#: Frames per ``Nic.deliver_burst`` call when a drain batches: bounds
#: working memory and keeps each vectorised engine call comfortably
#: inside cache-friendly array sizes.
_BATCH_MAX = 128


class TrafficSource(ABC):
    """Base class: generates frames and schedules them onto a machine."""

    #: Whether :meth:`_frames` is pure with respect to simulation state: it
    #: must not read machine/cache/ring state and must not share an RNG
    #: with any machine component.  All built-in sources qualify.  A pure
    #: iterator may be drawn a batch ahead of the deliveries during a
    #: burst drain; subclasses whose generators observe the simulation
    #: must set this False to keep draw-vs-delivery interleaving scalar.
    pure_frames = True

    def __init__(self, link: LinkConfig | None = None) -> None:
        self.link = link or LinkConfig()
        self.sent = 0
        self._machine = None
        self._nic = None
        self._stopped = False
        self._pending: Frame | None = None

    @abstractmethod
    def _frames(self) -> Iterator[tuple[float, Frame]]:
        """Yield ``(gap_seconds, frame)`` pairs; gap precedes the frame."""

    def attach(self, machine, nic, start_at: int | None = None) -> None:
        """Begin delivering frames via ``machine.events`` into ``nic``.

        When the machine carries an active fault plan with net faults, the
        frame stream is transparently wrapped with seeded loss, duplication,
        reordering and burst jitter (:mod:`repro.faults.injectors`) — every
        source, including experiment senders, sees the same lossy link.
        """
        self._machine = machine
        self._nic = nic
        self._iter = self._frames()
        faults = getattr(machine, "faults", None)
        if faults is not None and faults.net_active:
            from repro.faults.injectors import faulty_frames

            self._iter = faulty_frames(faults, self._iter)
        start = machine.clock.now if start_at is None else start_at
        self._schedule_next(start)

    def stop(self) -> None:
        """Stop after the currently scheduled frame (if any)."""
        self._stopped = True

    def _schedule_next(self, earliest: int) -> None:
        if self._stopped:
            return
        try:
            gap_s, frame = next(self._iter)
        except StopIteration:
            return
        clock = self._machine.clock
        # The frame cannot arrive faster than the wire can carry it.
        gap_s = max(gap_s, self.link.frame_time_seconds(frame.size))
        at = max(earliest + clock.cycles(gap_s), clock.now)
        self._pending = frame
        self._machine.events.schedule(
            at, self._fire, label=f"frame#{frame.frame_id}", drain=self._drain
        )

    def _deliver_pending(self) -> None:
        frame = self._pending
        self._pending = None
        frame.sent_time = self._machine.clock.now
        self._nic.deliver(frame)
        self.sent += 1

    def _fire(self) -> None:
        """Scalar event action: deliver one frame, schedule the next."""
        self._deliver_pending()
        self._schedule_next(self._machine.clock.now)

    def _burstable(self) -> bool:
        """True when back-to-back delivery cannot change observable state.

        Faults may drop/stall/jitter per frame; with DDIO off the driver
        receive and payload touches go through the event queue (so frames
        must interleave with them through the heap); a cache partition is
        an intervening actor the harness pins via the scalar path.
        """
        machine = self._machine
        llc = machine.llc
        return (
            machine.faults is None
            and llc.ddio.enabled
            and llc.partition is None
        )

    def _drain(self, event, limit: int | None) -> None:
        """Burst handler: deliver frames back-to-back until ``limit``.

        Invoked by the machine's event loop in place of ``_fire`` with the
        clock already advanced to the event time.  Each iteration delivers
        the pending frame at ``clock.now``, draws the next from the
        iterator at the same simulated instant the scalar path would
        (keeping shared-RNG draw order identical), and either keeps
        going — advancing the clock directly — or falls back to a
        scheduled event when the burst window closes or conditions make
        interleaving observable.

        When the source iterator is pure (:attr:`pure_frames`) and the NIC
        supports it, deliveries are additionally *batched*: frames are
        collected with their arrival cycles and handed to
        ``Nic.deliver_burst`` in groups, which vectorises the cache work
        of the whole group across frames.  Batch state is bit-identical to
        the per-frame drain (pinned by ``tests/test_rx_equivalence.py``).
        """
        machine = self._machine
        clock = machine.clock
        events = machine.events
        nic = self._nic
        burstable = self._burstable()
        deliver_burst = getattr(nic, "deliver_burst", None) if burstable else None
        batch = (
            []
            if deliver_burst is not None and self.pure_frames and nic.can_batch()
            else None
        )
        while True:
            if batch is None:
                self._deliver_pending()
            else:
                frame = self._pending
                self._pending = None
                frame.sent_time = clock.now
                batch.append((clock.now, frame))
                self.sent += 1
                if len(batch) >= _BATCH_MAX:
                    deliver_burst(batch)
                    batch = []
            if self._stopped:
                break
            try:
                gap_s, frame = next(self._iter)
            except StopIteration:
                break
            gap_s = max(gap_s, self.link.frame_time_seconds(frame.size))
            at = max(clock.now + clock.cycles(gap_s), clock.now)
            self._pending = frame
            if not burstable or (limit is not None and at > limit):
                events.schedule(
                    at, self._fire, label=f"frame#{frame.frame_id}", drain=self._drain
                )
                break
            clock.advance_to(at)
        if batch:
            deliver_burst(batch)


class ConstantStream(TrafficSource):
    """A fixed-size, fixed-rate stream (the paper's broadcast sender)."""

    def __init__(
        self,
        size: int,
        rate_pps: float,
        count: int | None = None,
        protocol: str = "broadcast",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.size = size
        self.rate_pps = rate_pps
        self.count = count
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        gap = 1.0 / self.rate_pps
        n = 0
        while self.count is None or n < self.count:
            yield gap, Frame(size=self.size, protocol=self.protocol)
            n += 1


class PatternStream(TrafficSource):
    """Replays an explicit sequence of frame sizes at a fixed rate.

    The covert-channel trojan builds on this: each symbol becomes a burst of
    equal-size frames (see :mod:`repro.attack.covert`).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rate_pps: float,
        symbols: Sequence[int] | None = None,
        protocol: str = "broadcast",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        if symbols is not None and len(symbols) != len(sizes):
            raise ValueError("symbols must parallel sizes")
        self.sizes = list(sizes)
        self.symbols = list(symbols) if symbols is not None else None
        self.rate_pps = rate_pps
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        gap = 1.0 / self.rate_pps
        for i, size in enumerate(self.sizes):
            symbol = self.symbols[i] if self.symbols is not None else None
            yield gap, Frame(size=size, protocol=self.protocol, symbol=symbol)


class PoissonNoise(TrafficSource):
    """Background traffic with exponential inter-arrivals and random sizes.

    Used to stress the attack's noise tolerance: these are the "extra
    packets not sent by the co-operating sender" of Section III-C.
    """

    def __init__(
        self,
        rate_pps: float,
        rng: random.Random,
        size_choices: Sequence[int] = (64, 128, 256, 512, 1514),
        count: int | None = None,
        protocol: str = "tcp",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.rate_pps = rate_pps
        self.rng = rng
        self.size_choices = list(size_choices)
        self.count = count
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        n = 0
        while self.count is None or n < self.count:
            gap = self.rng.expovariate(self.rate_pps)
            size = self.rng.choice(self.size_choices)
            yield gap, Frame(size=size, protocol=self.protocol)
            n += 1


class TraceReplay(TrafficSource):
    """Replays ``(gap_seconds, size)`` pairs — e.g. a website load trace."""

    def __init__(
        self,
        trace: Iterable[tuple[float, int]],
        protocol: str = "tcp",
        link: LinkConfig | None = None,
    ) -> None:
        super().__init__(link)
        self.trace = list(trace)
        self.protocol = protocol

    def _frames(self) -> Iterator[tuple[float, Frame]]:
        for gap_s, size in self.trace:
            yield gap_s, Frame(size=size, protocol=self.protocol)
