"""The NIC's DMA engine: frames land in the LLC (DDIO) or DRAM (no DDIO).

With DDIO (the default on the paper's platform), every cache block of an
incoming frame is written straight into the last-level cache at arrival
time, so header and payload appear simultaneously — the property that lets
the spy read packet *sizes*.  Without DDIO the frame is written to DRAM;
blocks only enter the cache when the driver reads the header (after an
I/O-to-driver latency) and when the stack touches the payload (later
still), which delays and blurs — but does not eliminate — the signal
(Section IV-d of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Frame
from repro.nic.driver import IgbDriver
from repro.nic.ring import RxRing


@dataclass
class NicStats:
    """DMA-side counters."""

    frames: int = 0
    blocks_written: int = 0
    oversize_dropped: int = 0
    #: Frames lost to injected rx-ring overflow (fault plan only).
    overflow_dropped: int = 0
    #: Receives delayed by an injected descriptor-refill stall.
    refill_stalled: int = 0


class Nic:
    """The adapter: accepts frames, DMAs them, and signals the driver."""

    def __init__(self, machine, ring: RxRing, driver: IgbDriver) -> None:
        self.machine = machine
        self.ring = ring
        self.driver = driver
        self.stats = NicStats()
        self._line = machine.llc.geometry.line_size

    def deliver(self, frame: Frame) -> None:
        """Receive one frame at the current simulated time."""
        if frame.size > self.ring.config.buffer_size:
            self.stats.oversize_dropped += 1
            return
        machine = self.machine
        faults = machine.faults
        if faults is not None and faults.should_overflow():
            # Injected rx-ring overflow: no free descriptor, the adapter
            # drops the frame on the floor — no DMA, no driver work.
            self.stats.overflow_dropped += 1
            return
        llc = machine.llc
        now = machine.clock.now
        ring_slot = self.ring.head
        buffer = self.ring.advance()
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        tele = machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "dma-fill",
                cat="nic",
                args={
                    "slot": ring_slot,
                    "size": frame.size,
                    "blocks": n_blocks,
                    "ddio": llc.ddio.enabled,
                    "sim_now": now,
                },
            ):
                for i in range(n_blocks):
                    llc.io_write(base + i * self._line, now=now)
        else:
            for i in range(n_blocks):
                llc.io_write(base + i * self._line, now=now)
        self.stats.frames += 1
        self.stats.blocks_written += n_blocks

        # An injected descriptor-refill stall delays the driver's receive
        # processing (softirq starvation / delayed refill), on top of the
        # no-DDIO I/O-to-driver latency when that applies.
        stall = faults.refill_stall() if faults is not None else 0
        if stall:
            self.stats.refill_stalled += 1
        if llc.ddio.enabled and not stall:
            # Interrupt + driver processing happen effectively at arrival
            # (the driver runs on another core; its accesses are immediate).
            self.driver.receive(frame, buffer, ring_slot)
        else:
            # The driver sees the frame only after the I/O-write-to-read
            # latency; schedule the receive on the event queue.
            delay = stall
            if not llc.ddio.enabled:
                delay += machine.llc.timing.io_to_driver_latency
            machine.events.schedule(
                now + delay,
                lambda f=frame, b=buffer, s=ring_slot: self.driver.receive(f, b, s),
                label=f"rx-intr#{frame.frame_id}",
            )
