"""The NIC's DMA engine: frames land in the LLC (DDIO) or DRAM (no DDIO).

With DDIO (the default on the paper's platform), every cache block of an
incoming frame is written straight into the last-level cache at arrival
time, so header and payload appear simultaneously — the property that lets
the spy read packet *sizes*.  Without DDIO the frame is written to DRAM;
blocks only enter the cache when the driver reads the header (after an
I/O-to-driver latency) and when the stack touches the payload (later
still), which delays and blurs — but does not eliminate — the signal
(Section IV-d of the paper).

Since the rx-datapath refactor the per-frame DMA burst is issued as one
batched engine call (:meth:`repro.cache.llc.SlicedLLC.io_write_many`)
over a precomputed block-address template (:class:`RxTemplates`) instead
of a Python loop of scalar ``io_write`` calls.  The pre-batching path is
frozen in :mod:`repro.nic.legacy` and pinned bit-identical by
``tests/test_rx_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.counters import CounterStats
from repro.net.packet import Frame
from repro.nic.driver import IgbDriver
from repro.nic.ring import RxRing


@dataclass
class NicStats(CounterStats):
    """DMA-side counters.

    ``merge``/``delta``/``snapshot`` come from :class:`CounterStats`, so
    per-shard rx counters reduce the same way :class:`CacheStats` does.
    """

    frames: int = 0
    blocks_written: int = 0
    oversize_dropped: int = 0
    #: Frames lost to injected rx-ring overflow (fault plan only).
    overflow_dropped: int = 0
    #: Receives delayed by an injected descriptor-refill stall.
    refill_stalled: int = 0


class RxTemplates:
    """Per-buffer block-address templates for the batched rx datapath.

    An rx buffer is a fixed run of consecutive cache lines, so every touch
    sequence the NIC and driver issue against it — the DMA fill, the
    header+prefetch read, the copy/fragment payload reads — is a slice of
    one precomputed decomposition of ``base + [0, line, 2*line, ...]``.
    The template is computed once per buffer base address and shared by
    the NIC and the driver; the cache is bounded because the
    randomization defenses replace buffer pages continuously.
    """

    _MAX_ENTRIES = 4096

    __slots__ = ("llc", "offsets", "_cache")

    def __init__(self, llc, buffer_size: int) -> None:
        self.llc = llc
        line = llc.geometry.line_size
        self.offsets = np.arange(buffer_size // line, dtype=np.int64) * line
        self._cache: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def decomp(self, base: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(paddrs, flats, lines)`` arrays for every block of the buffer
        at ``base``; slice before use."""
        entry = self._cache.get(base)
        if entry is None:
            if len(self._cache) >= self._MAX_ENTRIES:
                self._cache.clear()
            paddrs = base + self.offsets
            flats, lines = self.llc.decompose_many(paddrs)
            entry = (paddrs, flats, lines)
            self._cache[base] = entry
        return entry


class Nic:
    """The adapter: accepts frames, DMAs them, and signals the driver."""

    def __init__(
        self,
        machine,
        ring: RxRing,
        driver: IgbDriver,
        templates: RxTemplates | None = None,
    ) -> None:
        self.machine = machine
        self.ring = ring
        self.driver = driver
        self.stats = NicStats()
        self._line = machine.llc.geometry.line_size
        self.templates = templates or RxTemplates(
            machine.llc, ring.config.buffer_size
        )

    def _dma_fill(self, base: int, n_blocks: int, now: int) -> None:
        """DMA every block of the frame into the cache hierarchy — the one
        place the fill loop lives (it used to be duplicated per tracer
        branch), now a single batched engine call."""
        paddrs, flats, lines = self.templates.decomp(base)
        self.machine.llc.io_write_many(
            paddrs[:n_blocks],
            now=now,
            decomp=(flats[:n_blocks], lines[:n_blocks]),
        )

    def deliver(self, frame: Frame) -> None:
        """Receive one frame at the current simulated time."""
        if frame.size > self.ring.config.buffer_size:
            self.stats.oversize_dropped += 1
            return
        machine = self.machine
        faults = machine.faults
        if faults is not None and faults.should_overflow():
            # Injected rx-ring overflow: no free descriptor, the adapter
            # drops the frame on the floor — no DMA, no driver work.
            self.stats.overflow_dropped += 1
            return
        llc = machine.llc
        now = machine.clock.now
        ring_slot = self.ring.head
        buffer = self.ring.advance()
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        tele = machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "dma-fill",
                cat="nic",
                args={
                    "slot": ring_slot,
                    "size": frame.size,
                    "blocks": n_blocks,
                    "ddio": llc.ddio.enabled,
                    "sim_now": now,
                },
            ):
                self._dma_fill(base, n_blocks, now)
        else:
            self._dma_fill(base, n_blocks, now)
        self.stats.frames += 1
        self.stats.blocks_written += n_blocks

        # An injected descriptor-refill stall delays the driver's receive
        # processing (softirq starvation / delayed refill), on top of the
        # no-DDIO I/O-to-driver latency when that applies.
        stall = faults.refill_stall() if faults is not None else 0
        if stall:
            self.stats.refill_stalled += 1
        if llc.ddio.enabled and not stall:
            # Interrupt + driver processing happen effectively at arrival
            # (the driver runs on another core; its accesses are immediate).
            self.driver.receive(frame, buffer, ring_slot)
        else:
            # The driver sees the frame only after the I/O-write-to-read
            # latency; schedule the receive on the event queue.
            delay = stall
            if not llc.ddio.enabled:
                delay += machine.llc.timing.io_to_driver_latency
            machine.events.schedule(
                now + delay,
                lambda f=frame, b=buffer, s=ring_slot: self.driver.receive(f, b, s),
                label=f"rx-intr#{frame.frame_id}",
            )

    # ------------------------------------------------------------------
    # Cross-frame burst delivery
    # ------------------------------------------------------------------
    def can_batch(self) -> bool:
        """Whether :meth:`deliver_burst` may batch cache work across frames.

        Static machine-level conditions only — per-packet hooks that
        observe individual fills or evictions, a partition's victim
        policy, DDIO off (receives detour through the event queue) and
        fault plans (per-frame drop/stall draws) all force the per-frame
        path.  The engine may still decline an individual burst
        (cache-state dependent), which :meth:`deliver_burst` handles by
        replaying that burst through the scalar-equivalent sequence.
        """
        llc = self.machine.llc
        return (
            llc.ddio.enabled
            and llc.ddio.write_allocate_ways >= 1
            and llc.partition is None
            and llc.evict_hook is None
            and llc.io_fill_hook is None
            and llc.supports_rx_burst()
            and self.machine.faults is None
        )

    def deliver_burst(self, batch: list[tuple[int, "Frame"]]) -> None:
        """Deliver ``[(arrival_cycle, frame), ...]`` back-to-back.

        Used by a drained traffic source (``TrafficSource._drain``) when
        :meth:`can_batch` holds and nothing can observe the machine
        between the arrivals.  Phase 1 runs every frame's *control flow*
        in arrival order — ring advance, receive stats and log, skb
        cursor, page flips/replacements and their RNG draws, randomizer
        hooks — none of which reads cache state.  Phase 2 then applies
        the concatenated cache-op stream of all frames in one
        :meth:`~repro.cache.llc.SlicedLLC.rx_burst` engine call (a
        round-by-rank kernel, see
        :meth:`~repro.cache.engine.CacheEngine.rx_burst_apply`); should
        the LLC refuse the stream outright (policy changed under us —
        cannot happen from a drain, kept as a safety net), each frame's
        exact scalar-equivalent access sequence is replayed instead.
        Either way the final machine state is bit-identical to a loop of
        :meth:`deliver` — pinned by ``tests/test_rx_equivalence.py``.
        """
        machine = self.machine
        llc = machine.llc
        driver = self.driver
        clock = machine.clock
        ring = self.ring
        buffer_size = ring.config.buffer_size
        stats = self.stats
        line = self._line
        template = driver._burst_template
        skb_flats = driver._skb_flats
        skb_lines = driver._skb_line_ids
        recs = []
        flat_parts: list[np.ndarray] = []
        line_parts: list[np.ndarray] = []
        kind_parts: list[np.ndarray] = []
        off_parts: list[np.ndarray] = []
        bases: list[int] = []
        lens: list[int] = []
        span_total = 0
        folded = 0
        for at, frame in batch:
            clock.advance_to(at)
            if frame.size > buffer_size:
                stats.oversize_dropped += 1
                continue
            ring_slot = ring.head
            buffer = ring.advance()
            entry = self.templates.decomp(buffer.dma_paddr)
            n = frame.n_blocks(line)
            stats.frames += 1
            stats.blocks_written += n
            path, skb_a, skb_b = driver._burst_prep(frame, buffer, ring_slot, at)
            kinds_t, offs_t, span_t, folded_t, buf_ops = template(path, n)
            flat_parts.append(entry[1][:buf_ops])
            line_parts.append(entry[2][:buf_ops])
            for a, b in (skb_a, skb_b):
                if b > a:
                    flat_parts.append(skb_flats[a:b])
                    line_parts.append(skb_lines[a:b])
            kind_parts.append(kinds_t)
            off_parts.append(offs_t)
            bases.append(span_total)
            lens.append(len(offs_t))
            span_total += span_t
            folded += folded_t
            recs.append((path, n, entry, skb_a, skb_b))
        if not recs:
            return
        flats = np.concatenate(flat_parts)
        lines = np.concatenate(line_parts)
        kinds = np.concatenate(kind_parts)
        offs = np.concatenate(off_parts) + np.repeat(
            np.asarray(bases, dtype=np.int64), lens
        )
        if not llc.rx_burst(flats, lines, kinds, offs, span_total, folded):
            for rec in recs:
                self._burst_replay(rec)

    def _burst_replay(self, rec: tuple) -> None:
        """Exact scalar-equivalent cache-op sequence for one burst frame
        whose phase-1 bookkeeping already ran."""
        path, n, entry, skb_a, skb_b = rec
        llc = self.machine.llc
        driver = self.driver
        paddrs, flats, lines = entry
        llc.io_write_many(paddrs[:n], decomp=(flats[:n], lines[:n]))
        if path == driver._PATH_BCAST:
            base = int(paddrs[0])
            llc.cpu_access(base)
            llc.cpu_access(base + self._line)
            return
        if path == driver._PATH_COPY:
            seq = np.concatenate([paddrs[:2], paddrs[:n]])
            decomp = (
                np.concatenate([flats[:2], flats[:n]]),
                np.concatenate([lines[:2], lines[:n]]),
            )
            llc.access_many(seq, decomp=decomp)
        else:
            llc.access_many(paddrs[:n], decomp=(flats[:n], lines[:n]))
        driver._skb_replay(skb_a, skb_b)
