"""Frozen scalar receive path: the pre-batching NIC and IGB driver.

These are verbatim copies of :class:`repro.nic.nic.Nic` and
:class:`repro.nic.driver.IgbDriver` as they stood before the rx datapath
moved onto the batched cache-engine kernels: one ``llc.io_write`` /
``llc.cpu_access`` Python call per cache block, in the exact order the
original code issued them.  They exist solely as the reference side of the
differential harness (``tests/test_rx_equivalence.py``) and the rx
benchmark (``repro.bench``), the same role :mod:`repro.cache.legacy` plays
for the cache engine.

Production code must not import this module; construct the frozen path via
``Machine.install_nic(legacy=True)``.
"""

from __future__ import annotations

import random

from repro.core.config import RingConfig
from repro.net.packet import Frame
from repro.nic.ring import RxBuffer, RxRing


class LegacyNic:
    """The pre-batching adapter: scalar per-block DMA writes."""

    def __init__(self, machine, ring: RxRing, driver: "LegacyIgbDriver") -> None:
        from repro.nic.nic import NicStats

        self.machine = machine
        self.ring = ring
        self.driver = driver
        self.stats = NicStats()
        self._line = machine.llc.geometry.line_size

    def deliver(self, frame: Frame) -> None:
        """Receive one frame at the current simulated time."""
        if frame.size > self.ring.config.buffer_size:
            self.stats.oversize_dropped += 1
            return
        machine = self.machine
        faults = machine.faults
        if faults is not None and faults.should_overflow():
            # Injected rx-ring overflow: no free descriptor, the adapter
            # drops the frame on the floor — no DMA, no driver work.
            self.stats.overflow_dropped += 1
            return
        llc = machine.llc
        now = machine.clock.now
        ring_slot = self.ring.head
        buffer = self.ring.advance()
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        tele = machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "dma-fill",
                cat="nic",
                args={
                    "slot": ring_slot,
                    "size": frame.size,
                    "blocks": n_blocks,
                    "ddio": llc.ddio.enabled,
                    "sim_now": now,
                },
            ):
                for i in range(n_blocks):
                    llc.io_write(base + i * self._line, now=now)
        else:
            for i in range(n_blocks):
                llc.io_write(base + i * self._line, now=now)
        self.stats.frames += 1
        self.stats.blocks_written += n_blocks

        # An injected descriptor-refill stall delays the driver's receive
        # processing (softirq starvation / delayed refill), on top of the
        # no-DDIO I/O-to-driver latency when that applies.
        stall = faults.refill_stall() if faults is not None else 0
        if stall:
            self.stats.refill_stalled += 1
        if llc.ddio.enabled and not stall:
            # Interrupt + driver processing happen effectively at arrival
            # (the driver runs on another core; its accesses are immediate).
            self.driver.receive(frame, buffer, ring_slot)
        else:
            # The driver sees the frame only after the I/O-write-to-read
            # latency; schedule the receive on the event queue.
            delay = stall
            if not llc.ddio.enabled:
                delay += machine.llc.timing.io_to_driver_latency
            machine.events.schedule(
                now + delay,
                lambda f=frame, b=buffer, s=ring_slot: self.driver.receive(f, b, s),
                label=f"rx-intr#{frame.frame_id}",
            )


class LegacyIgbDriver:
    """The pre-batching driver: scalar per-block touch sequences."""

    def __init__(
        self,
        machine,
        ring: RxRing,
        config: RingConfig | None = None,
        shared_page_prob: float = 0.0,
        log_receives: bool = False,
        rng: random.Random | None = None,
    ) -> None:
        from repro.nic.driver import DriverStats

        self.machine = machine
        self.ring = ring
        self.config = config or ring.config
        self.shared_page_prob = shared_page_prob
        self.stats = DriverStats()
        self.rng = rng or random.Random(17)
        self.local_node = ring.node
        self.log_receives = log_receives
        self.receive_log = []
        #: Optional randomization defense (see repro.defense.randomization).
        self.randomizer = None
        self._line = machine.llc.geometry.line_size
        # skb slab: a modest recycled kernel region the copy path writes to.
        self._skb_region = machine.kernel.mmap(16)
        self._skb_cursor = 0
        self._skb_lines = 16 * machine.physmem.page_size // self._line

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, frame: Frame, buffer: RxBuffer, ring_slot: int) -> None:
        """Process one frame that the NIC has DMA'd into ``buffer``."""
        tele = self.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "driver-rx",
                cat="driver",
                args={
                    "slot": ring_slot,
                    "size": frame.size,
                    "blocks": frame.n_blocks(self._line),
                    "sim_now": self.machine.clock.now,
                },
            ):
                self._receive(frame, buffer, ring_slot)
            return
        self._receive(frame, buffer, ring_slot)

    def _receive(self, frame: Frame, buffer: RxBuffer, ring_slot: int) -> None:
        from repro.nic.driver import ReceiveRecord

        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        self.stats.frames += 1
        if self.log_receives:
            self.receive_log.append(
                ReceiveRecord(
                    time=now,
                    ring_slot=ring_slot,
                    page_paddr=buffer.page_paddr,
                    dma_paddr=base,
                    n_blocks=frame.n_blocks(self._line),
                    size=frame.size,
                    symbol=frame.symbol,
                )
            )
        # Header read + unconditional prefetch of the second block.
        llc.cpu_access(base, now=now)
        llc.cpu_access(base + self._line, now=now)

        if frame.is_broadcast():
            # Unknown protocol: dropped before any skb is built.
            self.stats.discarded += 1
            self._after_packet(buffer)
            return

        if frame.size <= self.config.copy_threshold:
            self._copy_small(frame, buffer)
        else:
            self._frag_large(frame, buffer)
        self._after_packet(buffer)

    def _copy_small(self, frame: Frame, buffer: RxBuffer) -> None:
        """memcpy path of igb_add_rx_frag: read frame, write into skb."""
        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        for i in range(n_blocks):
            llc.cpu_access(base + i * self._line, now=now)
        self._skb_write(n_blocks)
        self.stats.copied += 1
        if buffer.node != self.local_node:
            # Remote page: put_page + fresh allocation (cannot be reused).
            self._replace(buffer)

    def _frag_large(self, frame: Frame, buffer: RxBuffer) -> None:
        """Fragment path: hand the half-page to the stack, try to reuse."""
        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        if llc.ddio.enabled:
            # Payload is already cache-resident; the stack reads it now.
            for i in range(2, n_blocks):
                llc.cpu_access(base + i * self._line, now=now)
        else:
            # Without DDIO the stack touches the payload noticeably after
            # the header (Huggahalli et al.: < 20k cycles) — the lag that
            # makes size detection of large packets noisier (Section IV-d).
            delay = llc.timing.payload_touch_delay

            def touch_payload(base=base, n_blocks=n_blocks) -> None:
                later = self.machine.clock.now
                for i in range(2, n_blocks):
                    llc.cpu_access(base + i * self._line, now=later)

            self.machine.events.schedule(now + delay, touch_payload, label="payload")
        self._skb_write(2)  # skb metadata only; payload stays in the page
        self.stats.fragged += 1
        if buffer.node != self.local_node or self.rng.random() < self.shared_page_prob:
            self._replace(buffer)
        else:
            buffer.flip(self.config.buffer_size)
            self.stats.page_flips += 1
            tele = self.machine.telemetry
            if tele is not None and tele.tracer.enabled:
                tele.tracer.instant(
                    "page-flip",
                    cat="driver",
                    args={"slot": buffer.index, "offset": buffer.page_offset},
                )

    def _replace(self, buffer: RxBuffer) -> None:
        tele = self.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "driver-refill",
                cat="driver",
                args={
                    "reason": "replace",
                    "slot": buffer.index,
                    "sim_now": self.machine.clock.now,
                },
            ):
                self.ring.replace_buffer(buffer.index)
        else:
            self.ring.replace_buffer(buffer.index)
        self.stats.buffers_replaced += 1

    def _after_packet(self, buffer: RxBuffer) -> None:
        if self.randomizer is not None:
            self.randomizer.on_packet(self, buffer)

    # ------------------------------------------------------------------
    # skb slab
    # ------------------------------------------------------------------
    def _skb_write(self, n_lines: int) -> None:
        """Write ``n_lines`` cache lines of skb data (recycled slab)."""
        llc = self.machine.llc
        kernel = self.machine.kernel
        now = self.machine.clock.now
        base_vaddr = self._skb_region
        for _ in range(n_lines):
            vaddr = base_vaddr + (self._skb_cursor % self._skb_lines) * self._line
            llc.cpu_access(kernel.translate(vaddr), write=True, now=now)
            self._skb_cursor += 1
