"""NIC and driver model: rx descriptor ring, DMA engine, IGB driver logic.

This package reproduces the driver behaviour that Section III-A of the
paper deconstructs, because that behaviour *is* the leak:

* the driver allocates 256 rx buffers of 2048 bytes, packed two per 4 KB
  page, page/half-page aligned (:class:`~repro.nic.ring.RxRing`);
* buffers are recycled in a fixed order for the lifetime of the driver, so
  the fill sequence is stable (:class:`~repro.nic.ring.RxRing`);
* small frames (<= 256 B) are copied into the skb and the buffer is reused
  as-is; larger frames hand the half-page to the stack and flip the page
  offset (:class:`~repro.nic.driver.IgbDriver`, Figs. 3/4 of the paper);
* the driver always touches the first *two* blocks of a buffer (header
  prefetch) — the reason 1-block packets light up block 1 in Fig. 8;
* with DDIO the NIC writes every block of the frame straight into the LLC;
  without it, DMA goes to DRAM and blocks enter the cache only when the
  driver/stack reads them (:class:`~repro.nic.nic.Nic`).
"""

from repro.nic.driver import IgbDriver
from repro.nic.nic import Nic
from repro.nic.ring import RxBuffer, RxRing

__all__ = ["IgbDriver", "Nic", "RxBuffer", "RxRing"]
