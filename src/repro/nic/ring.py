"""The rx descriptor ring and its buffers.

The ring is a circular array of descriptors shared between NIC and driver
(Fig. 1 of the paper).  Each descriptor points at a 2048-byte buffer: the
first or second half of a 4 KB kernel page.  Because descriptor writes are
expensive (coherent DMA memory), the driver recycles buffers instead of
re-allocating them, so the *order in which buffers receive packets is fixed*
— the property the SEQUENCER attack recovers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import RingConfig
from repro.mem.physmem import PhysicalMemory


@dataclass
class RxBuffer:
    """One rx buffer: half of a DMA-mapped kernel page.

    ``page_paddr`` is the physical address of the page; ``page_offset`` is 0
    or 2048 and selects the half currently owned by the NIC.  The driver
    flips ``page_offset`` when it gives a half to the networking stack
    (large packets), so consecutive large packets alternate halves.
    """

    index: int
    page_paddr: int
    page_offset: int = 0
    node: int = 0

    @property
    def dma_paddr(self) -> int:
        """Physical address the NIC will DMA the next frame into."""
        return self.page_paddr + self.page_offset

    def flip(self, buffer_size: int) -> None:
        """Flip to the other half of the page (igb_can_reuse_rx_page)."""
        self.page_offset ^= buffer_size


class RxRing:
    """Circular buffer of rx descriptors with stable recycling order."""

    def __init__(
        self,
        physmem: PhysicalMemory,
        config: RingConfig | None = None,
        node: int = 0,
        rng: random.Random | None = None,
    ) -> None:
        self.physmem = physmem
        self.config = config or RingConfig()
        self.node = node
        self._rng = rng or random.Random(0)
        self.buffers: list[RxBuffer] = []
        for index in range(self.config.n_descriptors):
            self.buffers.append(self._allocate_buffer(index))
        self.head = 0
        #: Total frames ever placed into the ring (monotonic).
        self.fill_count = 0

    def _allocate_buffer(self, index: int) -> RxBuffer:
        frame = self.physmem.alloc_frame(node=self.node)
        return RxBuffer(
            index=index,
            page_paddr=self.physmem.frame_addr(frame),
            page_offset=0,
            node=self.physmem.node_of_frame(frame),
        )

    def __len__(self) -> int:
        return len(self.buffers)

    def next_buffer(self) -> RxBuffer:
        """The buffer the next incoming frame will be DMA'd into."""
        return self.buffers[self.head]

    def advance(self) -> RxBuffer:
        """Consume the head descriptor; returns the buffer just filled."""
        buffer = self.buffers[self.head]
        self.head = (self.head + 1) % len(self.buffers)
        self.fill_count += 1
        return buffer

    def replace_buffer(self, index: int) -> RxBuffer:
        """Allocate a fresh page for descriptor ``index`` (remote page, or a
        randomization defense); frees the old page."""
        old = self.buffers[index]
        self.physmem.free_frame(old.page_paddr // self.physmem.page_size)
        new = self._allocate_buffer(index)
        self.buffers[index] = new
        return new

    def shuffle_order(self, rng: random.Random | None = None) -> None:
        """Permute descriptor order in place (partial-randomization defense).

        Buffers keep their pages; only the order in which they will be
        filled changes, which is what invalidates a recovered sequence.
        """
        r = rng or self._rng
        r.shuffle(self.buffers)
        for i, buffer in enumerate(self.buffers):
            buffer.index = i

    # ------------------------------------------------------------------
    # Ground truth for experiments
    # ------------------------------------------------------------------
    def page_paddrs(self) -> list[int]:
        """Physical page addresses of all buffers, in ring order."""
        return [b.page_paddr for b in self.buffers]

    def order_fingerprint(self) -> tuple[int, ...]:
        """Immutable snapshot of the current buffer order (page addresses),
        used by tests to detect reordering."""
        return tuple(b.page_paddr for b in self.buffers)
