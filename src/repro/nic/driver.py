"""Model of the IGB driver's receive path (Figs. 3 and 4 of the paper).

The driver runs on its own core: its memory accesses hit the shared LLC at
the simulated instant they occur but do not advance the global clock (which
is driven by the process under observation, usually the spy).

Receive-path behaviour reproduced here:

* **Header prefetch** — the driver always reads the first two cache blocks
  of the buffer, regardless of frame size.  This is why 1-block packets
  still produce activity on block 1 (Fig. 8's one anomaly).
* **Small frames** (<= ``copy_threshold``): ``igb_add_rx_frag`` memcpys the
  payload into the skb, reading every block of the frame, and reuses the
  buffer as-is — unless the page is on a remote NUMA node, in which case it
  is released and a fresh buffer allocated.
* **Large frames**: the half-page is attached to the skb as a fragment;
  ``igb_can_reuse_rx_page`` flips ``page_offset`` to the other half unless
  the page is remote or still shared with the stack (rare), in which case
  the buffer is replaced.
* **Broadcast/unknown protocol**: discarded right after the header check —
  no skb, no flip — yet the payload already sits in the LLC if DDIO wrote
  it there, which is what makes the covert channel stealthy.

Since the rx-datapath refactor each of those touch sequences is a slice of
a precomputed per-buffer block template (:class:`repro.nic.nic.
RxTemplates`) issued through one batched :meth:`~repro.cache.llc.
SlicedLLC.access_many` call, and the skb slab writes ride a precomputed
decomposition of the recycled slab region.  The scalar original is frozen
in :mod:`repro.nic.legacy` and pinned bit-identical by
``tests/test_rx_equivalence.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.config import RingConfig
from repro.core.counters import CounterStats
from repro.net.packet import Frame
from repro.nic.ring import RxBuffer, RxRing


@dataclass
class DriverStats(CounterStats):
    """Receive-path counters.

    ``merge``/``delta``/``snapshot`` come from :class:`CounterStats`, so
    per-shard rx counters reduce the same way :class:`CacheStats` does.
    """

    frames: int = 0
    discarded: int = 0
    copied: int = 0
    fragged: int = 0
    page_flips: int = 0
    buffers_replaced: int = 0


@dataclass
class ReceiveRecord:
    """Ground-truth log entry for one received frame (experiment use only —
    nothing attacker-visible lives here)."""

    time: int
    ring_slot: int
    page_paddr: int
    dma_paddr: int
    n_blocks: int
    size: int
    symbol: int | None = None


class IgbDriver:
    """The driver half of the receive path."""

    def __init__(
        self,
        machine,
        ring: RxRing,
        config: RingConfig | None = None,
        shared_page_prob: float = 0.0,
        log_receives: bool = False,
        rng: random.Random | None = None,
        templates=None,
    ) -> None:
        self.machine = machine
        self.ring = ring
        self.config = config or ring.config
        self.shared_page_prob = shared_page_prob
        self.stats = DriverStats()
        self.rng = rng or random.Random(17)
        self.local_node = ring.node
        self.log_receives = log_receives
        self.receive_log: list[ReceiveRecord] = []
        #: Optional randomization defense (see repro.defense.randomization).
        self.randomizer = None
        self._line = machine.llc.geometry.line_size
        #: Shared per-buffer block templates (set by Machine.install_nic to
        #: the same object the NIC uses; built lazily when constructed bare).
        if templates is None:
            from repro.nic.nic import RxTemplates

            templates = RxTemplates(machine.llc, self.config.buffer_size)
        self.templates = templates
        # skb slab: a modest recycled kernel region the copy path writes to.
        # The region is fixed at driver init, so its translation and cache
        # decomposition are precomputed once and sliced per write.
        self._skb_region = machine.kernel.mmap(16)
        self._skb_cursor = 0
        self._skb_lines = 16 * machine.physmem.page_size // self._line
        translate = machine.kernel.translate
        line = self._line
        region = self._skb_region
        self._skb_paddrs = np.fromiter(
            (translate(region + i * line) for i in range(self._skb_lines)),
            np.int64,
            count=self._skb_lines,
        )
        self._skb_flats, self._skb_line_ids = machine.llc.decompose_many(
            self._skb_paddrs
        )
        # Footprint-op templates for the cross-frame burst path, keyed by
        # (path, n_blocks); see _burst_template.
        self._burst_tmpl: dict[tuple[int, int], tuple] = {}

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, frame: Frame, buffer: RxBuffer, ring_slot: int) -> None:
        """Process one frame that the NIC has DMA'd into ``buffer``."""
        tele = self.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "driver-rx",
                cat="driver",
                args={
                    "slot": ring_slot,
                    "size": frame.size,
                    "blocks": frame.n_blocks(self._line),
                    "sim_now": self.machine.clock.now,
                },
            ):
                self._receive(frame, buffer, ring_slot)
            return
        self._receive(frame, buffer, ring_slot)

    def _receive(self, frame: Frame, buffer: RxBuffer, ring_slot: int) -> None:
        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        self.stats.frames += 1
        if self.log_receives:
            self.receive_log.append(
                ReceiveRecord(
                    time=now,
                    ring_slot=ring_slot,
                    page_paddr=buffer.page_paddr,
                    dma_paddr=base,
                    n_blocks=frame.n_blocks(self._line),
                    size=frame.size,
                    symbol=frame.symbol,
                )
            )
        if frame.is_broadcast():
            # Unknown protocol: header read + unconditional prefetch of the
            # second block, then dropped before any skb is built.  Two
            # scalar accesses beat the batch setup cost on this (covert
            # channel) hot path.
            llc.cpu_access(base, now=now)
            llc.cpu_access(base + self._line, now=now)
            self.stats.discarded += 1
            self._after_packet(buffer)
            return

        if frame.size <= self.config.copy_threshold:
            self._copy_small(frame, buffer)
        else:
            self._frag_large(frame, buffer)
        self._after_packet(buffer)

    def _copy_small(self, frame: Frame, buffer: RxBuffer) -> None:
        """memcpy path of igb_add_rx_frag: read frame, write into skb.

        One batched call issues the header+prefetch reads (blocks 0 and 1)
        followed by the copy's read of every frame block — the exact scalar
        sequence, duplicates included.
        """
        llc = self.machine.llc
        now = self.machine.clock.now
        n_blocks = frame.n_blocks(self._line)
        paddrs, flats, lines = self.templates.decomp(buffer.dma_paddr)
        seq = np.concatenate([paddrs[:2], paddrs[:n_blocks]])
        decomp = (
            np.concatenate([flats[:2], flats[:n_blocks]]),
            np.concatenate([lines[:2], lines[:n_blocks]]),
        )
        llc.access_many(seq, now=now, decomp=decomp)
        self._skb_write(n_blocks)
        self.stats.copied += 1
        if buffer.node != self.local_node:
            # Remote page: put_page + fresh allocation (cannot be reused).
            self._replace(buffer)

    def _frag_large(self, frame: Frame, buffer: RxBuffer) -> None:
        """Fragment path: hand the half-page to the stack, try to reuse."""
        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        paddrs, flats, lines = self.templates.decomp(base)
        if llc.ddio.enabled:
            # Header + prefetch + payload: blocks 0..n-1 in order (the
            # payload is already cache-resident; the stack reads it now).
            llc.access_many(
                paddrs[:n_blocks],
                now=now,
                decomp=(flats[:n_blocks], lines[:n_blocks]),
            )
        else:
            # Header read + unconditional prefetch of the second block.
            llc.access_many(paddrs[:2], now=now, decomp=(flats[:2], lines[:2]))
            # Without DDIO the stack touches the payload noticeably after
            # the header (Huggahalli et al.: < 20k cycles) — the lag that
            # makes size detection of large packets noisier (Section IV-d).
            delay = llc.timing.payload_touch_delay

            def touch_payload(base=base, n_blocks=n_blocks) -> None:
                later = self.machine.clock.now
                p, f, ln = self.templates.decomp(base)
                llc.access_many(
                    p[2:n_blocks],
                    now=later,
                    decomp=(f[2:n_blocks], ln[2:n_blocks]),
                )

            self.machine.events.schedule(now + delay, touch_payload, label="payload")
        self._skb_write(2)  # skb metadata only; payload stays in the page
        self.stats.fragged += 1
        if buffer.node != self.local_node or self.rng.random() < self.shared_page_prob:
            self._replace(buffer)
        else:
            buffer.flip(self.config.buffer_size)
            self.stats.page_flips += 1
            tele = self.machine.telemetry
            if tele is not None and tele.tracer.enabled:
                tele.tracer.instant(
                    "page-flip",
                    cat="driver",
                    args={"slot": buffer.index, "offset": buffer.page_offset},
                )

    def _replace(self, buffer: RxBuffer) -> None:
        tele = self.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "driver-refill",
                cat="driver",
                args={
                    "reason": "replace",
                    "slot": buffer.index,
                    "sim_now": self.machine.clock.now,
                },
            ):
                self.ring.replace_buffer(buffer.index)
        else:
            self.ring.replace_buffer(buffer.index)
        self.stats.buffers_replaced += 1

    def _after_packet(self, buffer: RxBuffer) -> None:
        if self.randomizer is not None:
            self.randomizer.on_packet(self, buffer)

    # ------------------------------------------------------------------
    # skb slab
    # ------------------------------------------------------------------
    def _skb_write(self, n_lines: int) -> None:
        """Write ``n_lines`` cache lines of skb data (recycled slab)."""
        llc = self.machine.llc
        now = self.machine.clock.now
        cursor = self._skb_cursor
        wrap = self._skb_lines
        self._skb_cursor = cursor + n_lines
        start = cursor % wrap
        if start + n_lines <= wrap:
            # Contiguous run: slice views, no fancy-index copies.
            sl = slice(start, start + n_lines)
            llc.access_many(
                self._skb_paddrs[sl],
                write=True,
                now=now,
                decomp=(self._skb_flats[sl], self._skb_line_ids[sl]),
            )
            return
        idx = [(start + i) % wrap for i in range(n_lines)]
        llc.access_many(
            self._skb_paddrs[idx],
            write=True,
            now=now,
            decomp=(self._skb_flats[idx], self._skb_line_ids[idx]),
        )

    # ------------------------------------------------------------------
    # Cross-frame burst path (see Nic.deliver_burst)
    # ------------------------------------------------------------------
    _PATH_BCAST, _PATH_COPY, _PATH_FRAG = 0, 1, 2

    def _burst_prep(
        self, frame: Frame, buffer: RxBuffer, ring_slot: int, now: int
    ) -> tuple[int, tuple[int, int], tuple[int, int]]:
        """Phase-1 receive: all of :meth:`_receive`'s control flow — stats,
        log, skb cursor, page flip/replace, randomizer — with the cache
        touches deferred to the caller's burst.  None of these decisions
        read cache state, so running them ahead of the deferred touches is
        unobservable.  Returns ``(path, skb_a, skb_b)`` where the skb
        slices are ``(start, stop)`` index ranges into the slab arrays
        (the second non-empty only when the cursor wraps).
        """
        self.stats.frames += 1
        if self.log_receives:
            self.receive_log.append(
                ReceiveRecord(
                    time=now,
                    ring_slot=ring_slot,
                    page_paddr=buffer.page_paddr,
                    dma_paddr=buffer.dma_paddr,
                    n_blocks=frame.n_blocks(self._line),
                    size=frame.size,
                    symbol=frame.symbol,
                )
            )
        if frame.is_broadcast():
            self.stats.discarded += 1
            self._after_packet(buffer)
            return self._PATH_BCAST, (0, 0), (0, 0)
        if frame.size <= self.config.copy_threshold:
            path = self._PATH_COPY
            skb_n = frame.n_blocks(self._line)
            self.stats.copied += 1
        else:
            path = self._PATH_FRAG
            skb_n = 2
            self.stats.fragged += 1
        cursor = self._skb_cursor
        wrap = self._skb_lines
        self._skb_cursor = cursor + skb_n
        start = cursor % wrap
        end = start + skb_n
        if end <= wrap:
            skb_a, skb_b = (start, end), (0, 0)
        else:
            skb_a, skb_b = (start, wrap), (0, end - wrap)
        if path == self._PATH_COPY:
            if buffer.node != self.local_node:
                self._replace(buffer)
        elif buffer.node != self.local_node or self.rng.random() < self.shared_page_prob:
            self._replace(buffer)
        else:
            buffer.flip(self.config.buffer_size)
            self.stats.page_flips += 1
        self._after_packet(buffer)
        return path, skb_a, skb_b

    def _burst_template(self, path: int, n: int) -> tuple:
        """Footprint-op template for one received frame: ``(kinds,
        final_offs, span, folded_hits, buf_ops)``.

        The frame's sequential cache-op stream is fills of blocks
        ``0..n-1``, the driver's touch sequence, then the skb writes; each
        op is one LRU tick.  Touches of blocks the same frame filled are
        *folded*: they cannot miss, so only the line's last-touch position
        survives, recorded in ``final_offs`` (op-order-parallel: ``buf_ops``
        buffer ops — the fills plus, for one-block frames, the block-1
        prefetch read that was NOT filled — then the skb writes).  ``span``
        is the frame's total tick count and ``folded_hits`` the number of
        folded guaranteed-hit touches.
        """
        key = (path, n)
        tmpl = self._burst_tmpl.get(key)
        if tmpl is not None:
            return tmpl
        if path == self._PATH_BCAST:
            # fills 0..n-1, then reads of blocks 0 and 1.
            if n == 1:
                kinds = np.array([0, 1], dtype=np.uint8)
                offs = np.array([1, 2], dtype=np.int64)
                tmpl = (kinds, offs, 3, 1, 2)
            else:
                kinds = np.zeros(n, dtype=np.uint8)
                offs = np.arange(n, dtype=np.int64)
                offs[0] = n
                offs[1] = n + 1
                tmpl = (kinds, offs, n + 2, 2, n)
        elif path == self._PATH_COPY:
            # fills, reads [0, 1, 0..n-1], skb writes 0..n-1.
            if n == 1:
                kinds = np.array([0, 1, 2], dtype=np.uint8)
                offs = np.array([3, 2, 4], dtype=np.int64)
                tmpl = (kinds, offs, 5, 2, 2)
            else:
                kinds = np.concatenate(
                    [np.zeros(n, dtype=np.uint8), np.full(n, 2, dtype=np.uint8)]
                )
                offs = np.concatenate(
                    [
                        n + 2 + np.arange(n, dtype=np.int64),
                        2 * n + 2 + np.arange(n, dtype=np.int64),
                    ]
                )
                tmpl = (kinds, offs, 3 * n + 2, n + 2, n)
        else:
            # fills, reads 0..n-1, two skb writes.
            kinds = np.concatenate(
                [np.zeros(n, dtype=np.uint8), np.full(2, 2, dtype=np.uint8)]
            )
            offs = np.concatenate(
                [
                    n + np.arange(n, dtype=np.int64),
                    2 * n + np.arange(2, dtype=np.int64),
                ]
            )
            tmpl = (kinds, offs, 2 * n + 2, n, n)
        self._burst_tmpl[key] = tmpl
        return tmpl

    def _skb_replay(self, skb_a: tuple[int, int], skb_b: tuple[int, int]) -> None:
        """Scalar-equivalent skb writes for a burst frame being replayed."""
        llc = self.machine.llc
        now = self.machine.clock.now
        for a, b in (skb_a, skb_b):
            if b > a:
                llc.access_many(
                    self._skb_paddrs[a:b],
                    write=True,
                    now=now,
                    decomp=(self._skb_flats[a:b], self._skb_line_ids[a:b]),
                )
