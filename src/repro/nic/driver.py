"""Model of the IGB driver's receive path (Figs. 3 and 4 of the paper).

The driver runs on its own core: its memory accesses hit the shared LLC at
the simulated instant they occur but do not advance the global clock (which
is driven by the process under observation, usually the spy).

Receive-path behaviour reproduced here:

* **Header prefetch** — the driver always reads the first two cache blocks
  of the buffer, regardless of frame size.  This is why 1-block packets
  still produce activity on block 1 (Fig. 8's one anomaly).
* **Small frames** (<= ``copy_threshold``): ``igb_add_rx_frag`` memcpys the
  payload into the skb, reading every block of the frame, and reuses the
  buffer as-is — unless the page is on a remote NUMA node, in which case it
  is released and a fresh buffer allocated.
* **Large frames**: the half-page is attached to the skb as a fragment;
  ``igb_can_reuse_rx_page`` flips ``page_offset`` to the other half unless
  the page is remote or still shared with the stack (rare), in which case
  the buffer is replaced.
* **Broadcast/unknown protocol**: discarded right after the header check —
  no skb, no flip — yet the payload already sits in the LLC if DDIO wrote
  it there, which is what makes the covert channel stealthy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import RingConfig
from repro.net.packet import Frame
from repro.nic.ring import RxBuffer, RxRing


@dataclass
class DriverStats:
    """Receive-path counters."""

    frames: int = 0
    discarded: int = 0
    copied: int = 0
    fragged: int = 0
    page_flips: int = 0
    buffers_replaced: int = 0


@dataclass
class ReceiveRecord:
    """Ground-truth log entry for one received frame (experiment use only —
    nothing attacker-visible lives here)."""

    time: int
    ring_slot: int
    page_paddr: int
    dma_paddr: int
    n_blocks: int
    size: int
    symbol: int | None = None


class IgbDriver:
    """The driver half of the receive path."""

    def __init__(
        self,
        machine,
        ring: RxRing,
        config: RingConfig | None = None,
        shared_page_prob: float = 0.0,
        log_receives: bool = False,
        rng: random.Random | None = None,
    ) -> None:
        self.machine = machine
        self.ring = ring
        self.config = config or ring.config
        self.shared_page_prob = shared_page_prob
        self.stats = DriverStats()
        self.rng = rng or random.Random(17)
        self.local_node = ring.node
        self.log_receives = log_receives
        self.receive_log: list[ReceiveRecord] = []
        #: Optional randomization defense (see repro.defense.randomization).
        self.randomizer = None
        self._line = machine.llc.geometry.line_size
        # skb slab: a modest recycled kernel region the copy path writes to.
        self._skb_region = machine.kernel.mmap(16)
        self._skb_cursor = 0
        self._skb_lines = 16 * machine.physmem.page_size // self._line

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, frame: Frame, buffer: RxBuffer, ring_slot: int) -> None:
        """Process one frame that the NIC has DMA'd into ``buffer``."""
        tele = self.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "driver-rx",
                cat="driver",
                args={
                    "slot": ring_slot,
                    "size": frame.size,
                    "blocks": frame.n_blocks(self._line),
                    "sim_now": self.machine.clock.now,
                },
            ):
                self._receive(frame, buffer, ring_slot)
            return
        self._receive(frame, buffer, ring_slot)

    def _receive(self, frame: Frame, buffer: RxBuffer, ring_slot: int) -> None:
        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        self.stats.frames += 1
        if self.log_receives:
            self.receive_log.append(
                ReceiveRecord(
                    time=now,
                    ring_slot=ring_slot,
                    page_paddr=buffer.page_paddr,
                    dma_paddr=base,
                    n_blocks=frame.n_blocks(self._line),
                    size=frame.size,
                    symbol=frame.symbol,
                )
            )
        # Header read + unconditional prefetch of the second block.
        llc.cpu_access(base, now=now)
        llc.cpu_access(base + self._line, now=now)

        if frame.is_broadcast():
            # Unknown protocol: dropped before any skb is built.
            self.stats.discarded += 1
            self._after_packet(buffer)
            return

        if frame.size <= self.config.copy_threshold:
            self._copy_small(frame, buffer)
        else:
            self._frag_large(frame, buffer)
        self._after_packet(buffer)

    def _copy_small(self, frame: Frame, buffer: RxBuffer) -> None:
        """memcpy path of igb_add_rx_frag: read frame, write into skb."""
        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        for i in range(n_blocks):
            llc.cpu_access(base + i * self._line, now=now)
        self._skb_write(n_blocks)
        self.stats.copied += 1
        if buffer.node != self.local_node:
            # Remote page: put_page + fresh allocation (cannot be reused).
            self._replace(buffer)

    def _frag_large(self, frame: Frame, buffer: RxBuffer) -> None:
        """Fragment path: hand the half-page to the stack, try to reuse."""
        llc = self.machine.llc
        now = self.machine.clock.now
        base = buffer.dma_paddr
        n_blocks = frame.n_blocks(self._line)
        if llc.ddio.enabled:
            # Payload is already cache-resident; the stack reads it now.
            for i in range(2, n_blocks):
                llc.cpu_access(base + i * self._line, now=now)
        else:
            # Without DDIO the stack touches the payload noticeably after
            # the header (Huggahalli et al.: < 20k cycles) — the lag that
            # makes size detection of large packets noisier (Section IV-d).
            delay = llc.timing.payload_touch_delay

            def touch_payload(base=base, n_blocks=n_blocks) -> None:
                later = self.machine.clock.now
                for i in range(2, n_blocks):
                    llc.cpu_access(base + i * self._line, now=later)

            self.machine.events.schedule(now + delay, touch_payload, label="payload")
        self._skb_write(2)  # skb metadata only; payload stays in the page
        self.stats.fragged += 1
        if buffer.node != self.local_node or self.rng.random() < self.shared_page_prob:
            self._replace(buffer)
        else:
            buffer.flip(self.config.buffer_size)
            self.stats.page_flips += 1
            tele = self.machine.telemetry
            if tele is not None and tele.tracer.enabled:
                tele.tracer.instant(
                    "page-flip",
                    cat="driver",
                    args={"slot": buffer.index, "offset": buffer.page_offset},
                )

    def _replace(self, buffer: RxBuffer) -> None:
        tele = self.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "driver-refill",
                cat="driver",
                args={
                    "reason": "replace",
                    "slot": buffer.index,
                    "sim_now": self.machine.clock.now,
                },
            ):
                self.ring.replace_buffer(buffer.index)
        else:
            self.ring.replace_buffer(buffer.index)
        self.stats.buffers_replaced += 1

    def _after_packet(self, buffer: RxBuffer) -> None:
        if self.randomizer is not None:
            self.randomizer.on_packet(self, buffer)

    # ------------------------------------------------------------------
    # skb slab
    # ------------------------------------------------------------------
    def _skb_write(self, n_lines: int) -> None:
        """Write ``n_lines`` cache lines of skb data (recycled slab)."""
        llc = self.machine.llc
        kernel = self.machine.kernel
        now = self.machine.clock.now
        base_vaddr = self._skb_region
        for _ in range(n_lines):
            vaddr = base_vaddr + (self._skb_cursor % self._skb_lines) * self._line
            llc.cpu_access(kernel.translate(vaddr), write=True, now=now)
            self._skb_cursor += 1
