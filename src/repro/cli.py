"""Command-line entry point: regenerate any experiment from the shell.

Usage::

    python -m repro list               # available experiments
    python -m repro fig7               # run one, print the paper-style rows
    python -m repro table1 --paper-scale
    python -m repro all                # everything (slow)

Each experiment runs at the scaled machine size by default (seconds to a
couple of minutes); ``--paper-scale`` switches to the paper's full set
structure where the harness supports it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.core.config import MachineConfig
from repro import experiments as exp

#: name -> (description, runner taking a MachineConfig)
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig5": (
        "buffer-to-set mapping, one driver init",
        lambda cfg: exp.run_fig5(cfg),
    ),
    "fig6": (
        "buffers-per-set histogram over many inits",
        lambda cfg: exp.run_fig6(instances=100, config=cfg),
    ),
    "fig7": (
        "page-aligned footprint: idle vs receiving",
        lambda cfg: exp.run_fig7(cfg, n_samples=250, huge_pages=4),
    ),
    "fig8": (
        "cache footprint vs packet size",
        lambda cfg: exp.run_fig8(cfg, n_samples=100, huge_pages=4, n_buffers=6),
    ),
    "table1": (
        "ring sequence recovery (Algorithm 1)",
        lambda cfg: exp.run_table1(
            cfg,
            n_monitored=16,
            n_samples=4000,
            packet_rate=15_000,
            probe_rate_hz=16_000,
            huge_pages=4,
        ),
    ),
    "fig10": (
        "covert decode of the '201' pattern",
        lambda cfg: exp.run_fig10(cfg, n_symbols=24, huge_pages=4),
    ),
    "fig11": (
        "covert capacity: binary/ternary x probe rate",
        lambda cfg: exp.run_fig11(cfg, n_symbols=50, huge_pages=4),
    ),
    "fig12ab": (
        "multi-buffer covert capacity",
        lambda cfg: exp.run_fig12_multibuffer(
            cfg, buffer_counts=(1, 2, 4, 8), n_symbols=48, huge_pages=4
        ),
    ),
    "fig12cd": (
        "full chasing channel vs send rate",
        lambda cfg: exp.run_fig12_chase(cfg, n_symbols=150, huge_pages=4),
    ),
    "fig13": (
        "login success/failure trace recovery",
        lambda cfg: exp.run_fig13_login(cfg, huge_pages=4, trace_length=80),
    ),
    "accuracy": (
        "website fingerprinting accuracy, DDIO on/off",
        lambda cfg: exp.run_fingerprint_accuracy(
            cfg, train_loads=3, trials_per_site=4, huge_pages=4, trace_length=80
        ),
    ),
    "fig14": (
        "Nginx throughput: DDIO vs adaptive partitioning",
        lambda cfg: exp.run_fig14(cfg, n_requests=500),
    ),
    "fig15": (
        "memory traffic + miss rate per cache variant",
        lambda cfg: exp.run_fig15(cfg, copy_kb=512, tcp_packets=1000, nginx_requests=300),
    ),
    "fig16": (
        "tail latency per defense scheme",
        lambda cfg: exp.run_fig16(cfg, n_requests=2000),
    ),
    "ablation-ring": (
        "ring size as a mitigation",
        lambda cfg: exp.run_ring_size_ablation(cfg),
    ),
    "ablation-interval": (
        "partial randomization interval vs chase quality",
        lambda cfg: exp.run_randomization_interval_ablation(cfg),
    ),
    "ablation-ddio-ways": (
        "DDIO allocation limit vs covert error",
        lambda cfg: exp.run_ddio_ways_ablation(cfg),
    ),
    "ablation-probe-rate": (
        "probe rate vs sequence recovery error",
        lambda cfg: exp.run_probe_rate_ablation(cfg),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Packet Chasing (ISCA 2020) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', or 'all'",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full set structure (much slower)",
    )
    return parser


def run_one(name: str, config: MachineConfig) -> None:
    description, runner = EXPERIMENTS[name]
    print(f"== {name}: {description}")
    start = time.time()
    result = runner(config)
    for row in result.format_rows():
        print(row)
    print(f"   ({time.time() - start:.1f}s wall)\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:{width}s}  {description}")
        return 0
    config = (
        MachineConfig().bench_scale()
        if args.paper_scale
        else MachineConfig().scaled_down()
    )
    if args.experiment == "all":
        for name in EXPERIMENTS:
            run_one(name, config)
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    run_one(args.experiment, config)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
