"""Command-line entry point: regenerate any experiment from the shell.

Usage::

    python -m repro list                # available experiments
    python -m repro fig7                # run one, print the paper-style rows
    python -m repro fig6 --jobs 4       # shard the trial fan-out over 4 procs
    python -m repro all --jobs 8        # everything, parallel, cached
    python -m repro all --force         # ignore cached results and re-run
    python -m repro table1 --paper-scale
    python -m repro run randomized-cache        # 'run' alias for a name
    python -m repro backends list               # cache index backends
    python -m repro fig10 --backend keyed:epoch=50000
    python -m repro bench --skip-fig6   # hot-path benchmarks + gate
                                        # (see repro.bench for options)
    python -m repro report fig6         # signal-quality dashboard from the
                                        # run ledger (repro.telemetry.report)

Each experiment runs at the scaled machine size by default (seconds to a
couple of minutes); ``--paper-scale`` switches to the paper's full set
structure where the harness supports it.

Orchestration is handled by :mod:`repro.runner`: Monte Carlo experiments
shard their trials over ``--jobs`` worker processes with seeds derived
from ``--seed`` (bit-identical results for any job count), and every
result is cached under ``.repro-cache/`` keyed by (experiment, machine
config, parameters, seed) — a warm rerun of ``all`` executes nothing.
``python -m repro all`` exits non-zero if any experiment failed and prints
a per-experiment summary table either way.

Observability (see OBSERVABILITY.md)::

    python -m repro trace fig6            # run traced, write fig6.trace.json
    python -m repro fig7 --trace t.json   # Chrome trace -> Perfetto
    python -m repro table1 --metrics m.json

``--trace``/``--metrics`` install a :mod:`repro.telemetry` session for the
run; traced runs force re-execution (a cache hit records nothing) and the
trace/metrics files are written next to the printed summary.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.cache.backends import backend_infos, parse_backend_spec
from repro.core.config import MachineConfig
from repro.faults import FAULT_PROFILES, FAULT_SCHEDULES, parse_fault_spec
from repro.runner import (
    ConsoleProgress,
    ExperimentRunner,
    ResultCache,
    ShardCrashError,
    ShardFailedError,
    ShardTimeoutError,
)
from repro.runner.cache import DEFAULT_CACHE_DIR
from repro.telemetry import RunLedger, Telemetry, session
from repro import experiments as exp

# Exit codes (see ROBUSTNESS.md): distinct failure modes get distinct
# codes so CI and scripts can branch on *why* a run failed.
EXIT_OK = 0
EXIT_FAILURE = 1  # generic/mixed failure ('all' with heterogeneous causes)
EXIT_USAGE = 2
EXIT_TIMEOUT = 3  # a shard exceeded --shard-timeout on every attempt
EXIT_CRASH = 4  # a worker died repeatedly (segfault/OOM-kill)
EXIT_BAD_RESULT = 5  # a shard raised / produced an unusable result
EXIT_PARTIAL = 6  # completed with <= --max-failed-shards failed shards


@dataclass(frozen=True)
class ExperimentDef:
    """One runnable experiment: how to invoke it and how to cache it.

    ``sharded`` experiments thread the runner through to their trial loop
    and cache per phase internally; the rest have no trial fan-out, so the
    CLI wraps them in :meth:`ExperimentRunner.run_cached` keyed by
    ``params`` — either way a warm ``all`` rerun executes nothing.
    """

    description: str
    params: dict
    run: Callable[[MachineConfig, ExperimentRunner], Any]
    sharded: bool = False


EXPERIMENTS: dict[str, ExperimentDef] = {
    "fig5": ExperimentDef(
        "buffer-to-set mapping, one driver init",
        params={},
        run=lambda cfg, runner: exp.run_fig5(cfg),
    ),
    "fig6": ExperimentDef(
        "buffers-per-set histogram over many inits",
        params={"instances": 100},
        run=lambda cfg, runner: exp.run_fig6(instances=100, config=cfg, runner=runner),
        sharded=True,
    ),
    "fig7": ExperimentDef(
        "page-aligned footprint: idle vs receiving",
        params={"n_samples": 250, "huge_pages": 4},
        run=lambda cfg, runner: exp.run_fig7(cfg, n_samples=250, huge_pages=4),
    ),
    "fig8": ExperimentDef(
        "cache footprint vs packet size",
        params={"n_samples": 100, "huge_pages": 4, "n_buffers": 6},
        run=lambda cfg, runner: exp.run_fig8(
            cfg, n_samples=100, huge_pages=4, n_buffers=6
        ),
    ),
    "table1": ExperimentDef(
        "ring sequence recovery (Algorithm 1)",
        params={
            "n_monitored": 16,
            "n_samples": 4000,
            "packet_rate": 15_000,
            "probe_rate_hz": 16_000,
            "huge_pages": 4,
        },
        run=lambda cfg, runner: exp.run_table1(
            cfg,
            n_monitored=16,
            n_samples=4000,
            packet_rate=15_000,
            probe_rate_hz=16_000,
            huge_pages=4,
        ),
    ),
    "fig10": ExperimentDef(
        "covert decode of the '201' pattern",
        params={"n_symbols": 24, "huge_pages": 4},
        run=lambda cfg, runner: exp.run_fig10(cfg, n_symbols=24, huge_pages=4),
    ),
    "fig11": ExperimentDef(
        "covert capacity: binary/ternary x probe rate",
        params={"n_symbols": 50, "huge_pages": 4},
        run=lambda cfg, runner: exp.run_fig11(
            cfg, n_symbols=50, huge_pages=4, runner=runner
        ),
        sharded=True,
    ),
    "fig12ab": ExperimentDef(
        "multi-buffer covert capacity",
        params={"buffer_counts": [1, 2, 4, 8], "n_symbols": 48, "huge_pages": 4},
        run=lambda cfg, runner: exp.run_fig12_multibuffer(
            cfg, buffer_counts=(1, 2, 4, 8), n_symbols=48, huge_pages=4, runner=runner
        ),
        sharded=True,
    ),
    "fig12cd": ExperimentDef(
        "full chasing channel vs send rate",
        params={"n_symbols": 150, "huge_pages": 4},
        run=lambda cfg, runner: exp.run_fig12_chase(
            cfg, n_symbols=150, huge_pages=4, runner=runner
        ),
        sharded=True,
    ),
    "fig13": ExperimentDef(
        "login success/failure trace recovery",
        params={"huge_pages": 4, "trace_length": 80},
        run=lambda cfg, runner: exp.run_fig13_login(
            cfg, huge_pages=4, trace_length=80
        ),
    ),
    "accuracy": ExperimentDef(
        "website fingerprinting accuracy, DDIO on/off",
        params={
            "train_loads": 3,
            "trials_per_site": 4,
            "huge_pages": 4,
            "trace_length": 80,
        },
        run=lambda cfg, runner: exp.run_fingerprint_accuracy(
            cfg,
            train_loads=3,
            trials_per_site=4,
            huge_pages=4,
            trace_length=80,
            runner=runner,
        ),
        sharded=True,
    ),
    "fig14": ExperimentDef(
        "Nginx throughput: DDIO vs adaptive partitioning",
        params={"n_requests": 500},
        run=lambda cfg, runner: exp.run_fig14(cfg, n_requests=500),
    ),
    "fig15": ExperimentDef(
        "memory traffic + miss rate per cache variant",
        params={"copy_kb": 512, "tcp_packets": 1000, "nginx_requests": 300},
        run=lambda cfg, runner: exp.run_fig15(
            cfg, copy_kb=512, tcp_packets=1000, nginx_requests=300
        ),
    ),
    "fig16": ExperimentDef(
        "tail latency per defense scheme",
        params={"n_requests": 2000},
        run=lambda cfg, runner: exp.run_fig16(cfg, n_requests=2000),
    ),
    "ablation-ring": ExperimentDef(
        "ring size as a mitigation",
        params={},
        run=lambda cfg, runner: exp.run_ring_size_ablation(cfg, runner=runner),
        sharded=True,
    ),
    "ablation-interval": ExperimentDef(
        "partial randomization interval vs chase quality",
        params={},
        run=lambda cfg, runner: exp.run_randomization_interval_ablation(
            cfg, runner=runner
        ),
        sharded=True,
    ),
    "ablation-ddio-ways": ExperimentDef(
        "DDIO allocation limit vs covert error",
        params={},
        run=lambda cfg, runner: exp.run_ddio_ways_ablation(cfg, runner=runner),
        sharded=True,
    ),
    "ablation-probe-rate": ExperimentDef(
        "probe rate vs sequence recovery error",
        params={},
        run=lambda cfg, runner: exp.run_probe_rate_ablation(cfg, runner=runner),
        sharded=True,
    ),
    "ablation-noise": ExperimentDef(
        "fault-injection intensity vs covert bit recovery",
        params={},
        run=lambda cfg, runner: exp.run_noise_ablation(cfg, runner=runner),
        sharded=True,
    ),
    "drift-resilience": ExperimentDef(
        "adaptive recovery vs time-varying fault schedules",
        params={},
        run=lambda cfg, runner: exp.run_drift_resilience(cfg, runner=runner),
        sharded=True,
    ),
    "randomized-cache": ExperimentDef(
        "randomized-index backends vs the full attack pipeline",
        params={"n_samples": 600, "n_symbols": 24, "huge_pages": 8},
        run=lambda cfg, runner: exp.run_randomized_cache(cfg, runner=runner),
        sharded=True,
    ),
}


@dataclass
class ExperimentOutcome:
    """What happened to one experiment in this invocation."""

    name: str
    ok: bool
    wall_seconds: float
    error: str = ""
    cached: bool = False
    phases: str = ""
    #: EXIT_* code this outcome maps to (EXIT_OK / EXIT_PARTIAL when ok).
    exit_code: int = EXIT_OK
    #: One-line cause for the summary table (empty on clean success).
    cause: str = ""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Packet Chasing (ISCA 2020) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', 'all', 'run' (alias: run TARGET), "
        "'trace' (traced run of TARGET), 'faults' (with 'list': show fault "
        "profiles), or 'backends' (with 'list': show cache index backends)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment to run/trace (with 'run'/'trace') or subcommand "
        "(with 'faults'/'backends')",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full set structure (much slower)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded experiments (default 1; results "
        "are identical for any value)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="root seed for trial derivation and the machine config "
        "(default: the config's built-in seed)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-run even if a cached result exists (and overwrite it)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--faults",
        default="off",
        metavar="PROFILE[@SCALE]",
        help="fault-injection profile, optionally scaled: 'moderate', "
        "'drift@1.5', ... (see 'repro faults list'; default 'off' — outputs "
        "are then bit-identical to a build without fault hooks)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="attach the adaptive attack supervisor (online threshold "
        "recalibration + eviction-set self-healing) to experiments that "
        "support it; see ROBUSTNESS.md 'Adaptive recovery'",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help="cache index backend for the machine, as 'name[:k=v,...]' — see "
        "'repro backends list' (default: the config's 'modulo', the "
        "conventional bit-identical mapping)",
    )
    parser.add_argument(
        "--max-failed-shards",
        type=int,
        default=0,
        metavar="N",
        help="tolerate up to N terminally failed shards per experiment: the "
        "run completes with partial results and exit code 6 (default 0: "
        "any failure aborts)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first terminal shard failure even when "
        "--max-failed-shards would tolerate it",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="persist per-shard results as they complete and resume an "
        "interrupted run from them (needs the cache; ignored with "
        "--no-cache or under --trace/--metrics)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="kill and retry a shard that runs longer than SEC seconds "
        "(parallel runs only; default: no timeout)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the ledger (.repro-cache/ledger.jsonl, "
        "read by 'repro report'); implied by --no-cache",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a Chrome trace_event JSON to PATH (open in Perfetto); "
        "forces re-execution",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a JSON metrics snapshot (counters, latency histograms, "
        "runner phase timings) to PATH; forces re-execution",
    )
    return parser


def build_runner(args: argparse.Namespace) -> ExperimentRunner:
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.max_failed_shards < 0:
        raise SystemExit("--max-failed-shards must be >= 0")
    ledger = None
    if not args.no_cache and not getattr(args, "no_ledger", False):
        ledger = RunLedger(args.cache_dir)
    return ExperimentRunner(
        jobs=args.jobs,
        root_seed=args.seed,
        cache=ResultCache(args.cache_dir),
        use_cache=not args.no_cache,
        force=args.force,
        progress=ConsoleProgress(),
        shard_timeout=args.shard_timeout,
        max_failed_shards=args.max_failed_shards,
        fail_fast=args.fail_fast,
        checkpoint=args.checkpoint,
        ledger=ledger,
    )


def print_backends() -> None:
    """The ``repro backends list`` table: registered index backends."""
    infos = backend_infos()
    width = max(len("backend"), max(len(info.name) for info in infos))
    pwidth = max(len(info.params) for info in infos)
    print(f"  {'backend':{width}s}  {'params':{pwidth}s}  description")
    for info in infos:
        print(f"  {info.name:{width}s}  {info.params:{pwidth}s}  {info.summary}")


def print_fault_profiles() -> None:
    """The ``repro faults list`` tables: profiles, then time schedules."""
    width = max(len(name) for name in FAULT_PROFILES)
    print(f"  {'profile':{width}s}  drop   dup    reord  jitter ovflw  stall  corun(Hz) probe-jit schedule")
    for name, profile in FAULT_PROFILES.items():
        print(
            f"  {name:{width}s}  {profile.drop_prob:<6.3f} {profile.dup_prob:<6.3f} "
            f"{profile.reorder_prob:<6.3f} {profile.gap_jitter:<6.2f} "
            f"{profile.nic_overflow_prob:<6.3f} {profile.refill_stall_prob:<6.3f} "
            f"{profile.corunner_rate_hz:<9.0f} {profile.probe_jitter_cycles:<9d} "
            f"{profile.schedule or '-'}"
        )
    print()
    swidth = max(len("schedule"), max(len(name) for name in FAULT_SCHEDULES))
    print(f"  {'schedule':{swidth}s}  {'mode':5s}  {'max':>4s}  description")
    for name, sched in FAULT_SCHEDULES.items():
        print(
            f"  {name:{swidth}s}  {sched.mode:5s}  {sched.max_scale():4.1f}"
            f"  {sched.summary}"
        )
    print()
    print("  any profile accepts an intensity multiplier: --faults PROFILE@SCALE")


def run_one(
    name: str, config: MachineConfig, runner: ExperimentRunner
) -> ExperimentOutcome:
    definition = EXPERIMENTS[name]
    print(f"== {name}: {definition.description}")
    start = time.time()
    history_start = len(runner.history)
    try:
        if definition.sharded:
            result = definition.run(config, runner)
        else:
            result = runner.run_cached(
                name, config, definition.params, lambda: definition.run(config, runner)
            )
    except Exception as error:
        wall = time.time() - start
        print(f"   FAILED after {wall:.1f}s:", file=sys.stderr)
        traceback.print_exc()
        if isinstance(error, ShardTimeoutError):
            exit_code, kind = EXIT_TIMEOUT, "timeout"
        elif isinstance(error, ShardCrashError):
            exit_code, kind = EXIT_CRASH, "crash"
        elif isinstance(error, ShardFailedError):
            exit_code, kind = EXIT_BAD_RESULT, "bad-result"
        else:
            exit_code, kind = EXIT_FAILURE, "failed"
        cause = str(error).strip().splitlines()
        return ExperimentOutcome(
            name=name,
            ok=False,
            wall_seconds=wall,
            error=traceback.format_exc(limit=1).strip().splitlines()[-1],
            exit_code=exit_code,
            cause=f"{kind}: {cause[0] if cause else type(error).__name__}",
        )
    wall = time.time() - start
    for row in result.format_rows():
        print(row)
    print(f"   ({wall:.1f}s wall)\n")
    outcome = ExperimentOutcome(name=name, ok=True, wall_seconds=wall)
    run_history = runner.history[history_start:]
    failed = [f for m in run_history for f in m.failed_shards]
    if failed:
        outcome.exit_code = EXIT_PARTIAL
        outcome.cause = "partial: " + ", ".join(
            f"shard {f['index']} {f['kind']}" for f in failed
        )
    history = [m for m in runner.history if m.experiment == name]
    if history:
        outcome.cached = all(m.cache_hit for m in history)
        phase_totals: dict[str, float] = {}
        for m in history:
            for phase, seconds in m.phase_seconds.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        outcome.phases = " ".join(
            f"{phase}={seconds:.1f}s" for phase, seconds in phase_totals.items()
        )
    return outcome


def print_summary(outcomes: list[ExperimentOutcome]) -> None:
    width = max(len(outcome.name) for outcome in outcomes)
    print("== summary ==")
    print(
        f"  {'experiment':{width}s}  {'status':7s}  {'wall':>7s}  {'cache':5s}"
        "  phases / cause"
    )
    for outcome in outcomes:
        if not outcome.ok:
            status = "FAILED"
        elif outcome.exit_code == EXIT_PARTIAL:
            status = "PARTIAL"
        else:
            status = "ok"
        cache = "hit" if outcome.cached else "-"
        detail = outcome.cause if outcome.cause else outcome.phases
        print(
            f"  {outcome.name:{width}s}  {status:7s}  {outcome.wall_seconds:6.1f}s"
            f"  {cache:5s}  {detail}"
            + (f"  {outcome.error}" if outcome.error else "")
        )
    failed = sum(1 for outcome in outcomes if not outcome.ok)
    total_wall = sum(outcome.wall_seconds for outcome in outcomes)
    print(
        f"  {len(outcomes) - failed}/{len(outcomes)} experiments ok, "
        f"{total_wall:.1f}s total"
    )


def aggregate_exit_code(outcomes: list[ExperimentOutcome]) -> int:
    """Fold per-experiment exit codes into one process exit code.

    A single distinct failure cause keeps its specific code; mixed causes
    collapse to the generic :data:`EXIT_FAILURE`.  Partial completions
    surface as :data:`EXIT_PARTIAL` only when nothing failed outright.
    """
    failures = {o.exit_code for o in outcomes if not o.ok}
    if failures:
        return failures.pop() if len(failures) == 1 else EXIT_FAILURE
    partials = {o.exit_code for o in outcomes if o.exit_code != EXIT_OK}
    if partials:
        return EXIT_PARTIAL
    return EXIT_OK


def _write_telemetry(
    telemetry: Telemetry, args: argparse.Namespace, runner: ExperimentRunner
) -> None:
    """Export the session's trace / metrics files and say where they went."""
    if args.trace:
        n_events = telemetry.tracer.write_chrome(args.trace)
        dropped = telemetry.tracer.dropped
        note = f" ({dropped} dropped)" if dropped else ""
        print(
            f"[telemetry] wrote {n_events} trace event(s){note} to {args.trace} "
            "— open at https://ui.perfetto.dev"
        )
    if args.metrics:
        payload = {
            "metrics": telemetry.metrics.snapshot(),
            "runner": [
                {
                    "experiment": m.experiment,
                    "wall_seconds": m.wall_seconds,
                    "phase_seconds": m.phase_seconds,
                    "shards": m.shards_done,
                    "trials": m.trials_done,
                    "retries": m.retries,
                    "cache_hit": m.cache_hit,
                    "jobs": m.jobs,
                    "worker_utilization": m.worker_utilization,
                    "shards_resumed": m.shards_resumed,
                    "failed_shards": m.failed_shards,
                }
                for m in runner.history
            ],
            "cache": runner.cache.stats.to_dict(),
        }
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"[telemetry] wrote metrics snapshot to {args.metrics}")
        histograms = payload["metrics"].get("histograms", {})
        if histograms:
            width = max(len(name) for name in histograms)
            print(f"[telemetry] {'histogram':{width}s}  {'count':>8s}"
                  f"  {'p50':>10s}  {'p95':>10s}  {'p99':>10s}")
            for name in sorted(histograms):
                snap = histograms[name]
                pct = snap.get("percentiles", {})
                print(
                    f"[telemetry] {name:{width}s}  {snap.get('count', 0):8d}"
                    f"  {pct.get('p50', 0.0):10.2f}"
                    f"  {pct.get('p95', 0.0):10.2f}"
                    f"  {pct.get('p99', 0.0):10.2f}"
                )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # The benchmark suite has its own option surface (see repro.bench);
        # dispatch before experiment parsing so `repro bench --check ...`
        # does not collide with experiment flags.
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "report":
        # Same deal: `repro report [exp]` reads the run ledger and renders
        # the signal-quality dashboard (see repro.telemetry.report).
        from repro.telemetry.report import report_main

        return report_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "run":
        if args.target is None:
            print("usage: repro run <experiment>", file=sys.stderr)
            return EXIT_USAGE
        args.experiment = args.target
        args.target = None
    if args.experiment == "trace":
        if args.target is None:
            raise SystemExit("usage: repro trace <experiment> [--trace PATH]")
        args.experiment = args.target
        args.target = None
        if args.trace is None:
            args.trace = f"{args.experiment}.trace.json"
    if args.experiment == "faults":
        if args.target != "list":
            print("usage: repro faults list", file=sys.stderr)
            return EXIT_USAGE
        print_fault_profiles()
        return EXIT_OK
    if args.experiment == "backends":
        if args.target != "list":
            print("usage: repro backends list", file=sys.stderr)
            return EXIT_USAGE
        print_backends()
        return EXIT_OK
    if args.target is not None:
        raise SystemExit(f"unexpected extra argument {args.target!r}")
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, definition in EXPERIMENTS.items():
            print(f"  {name:{width}s}  {definition.description}")
        return EXIT_OK
    config = (
        MachineConfig().bench_scale()
        if args.paper_scale
        else MachineConfig().scaled_down()
    )
    if args.seed is not None:
        if args.seed < 0:
            raise SystemExit("--seed must be non-negative")
        config = replace(config, seed=args.seed)
    if args.faults != "off":
        try:
            config = replace(config, faults=parse_fault_spec(args.faults))
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return EXIT_USAGE
    if args.adaptive:
        config = replace(config, adaptive=True)
    if args.backend is not None:
        try:
            parse_backend_spec(args.backend)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return EXIT_USAGE
        config = replace(config, cache_backend=args.backend)
    telemetry = None
    if args.trace or args.metrics:
        telemetry = Telemetry.create(
            trace=args.trace is not None, metrics=args.metrics is not None
        )
        # A cache hit executes nothing, so a traced/metered run would record
        # nothing; force re-execution (results are still stored back).
        args.force = True
    runner = build_runner(args)

    def execute() -> int:
        if args.experiment == "all":
            outcomes = [run_one(name, config, runner) for name in EXPERIMENTS]
            print_summary(outcomes)
            return aggregate_exit_code(outcomes)
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
            return EXIT_USAGE
        outcome = run_one(args.experiment, config, runner)
        if outcome.cause:
            print_summary([outcome])
        return outcome.exit_code

    if telemetry is None:
        return execute()
    with session(telemetry):
        status = execute()
    _write_telemetry(telemetry, args, runner)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
