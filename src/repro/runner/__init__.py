"""Sharded parallel experiment orchestration.

The paper's evaluation is Monte Carlo everywhere — 1000 driver inits for
Fig. 6, per-site page-load trials for Section V, sweep points for
Figs. 11/12 — and every trial is independent.  This package turns that
independence into wall-clock speed without touching the statistics:

* :mod:`repro.runner.spec` — trials → shards with deterministic
  seed-sequence-spawned seeds (bit-identical results for any ``--jobs``);
* :mod:`repro.runner.executor` — process-per-shard execution with
  per-shard timeout and retry-on-crash;
* :mod:`repro.runner.cache` — content-addressed disk cache keyed by
  ``(experiment, MachineConfig, params, root_seed)``;
* :mod:`repro.runner.progress` — trials/sec, shards-done and cache-hit
  reporting hooks;
* :mod:`repro.runner.runner` — the :class:`ExperimentRunner` orchestrator
  the CLI and the experiment harnesses share.
"""

from repro.runner.cache import (
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    MISS,
    CacheStats,
    ResultCache,
    cache_key,
)
from repro.runner.executor import (
    ExecutorStats,
    ShardCrashError,
    ShardError,
    ShardExecutor,
    ShardFailedError,
    ShardFailure,
    ShardTimeoutError,
)
from repro.runner.progress import (
    ConsoleProgress,
    ProgressHook,
    RecordingProgress,
    RunnerMetrics,
)
from repro.runner.runner import ExperimentRunner, default_runner, shard_entry_name
from repro.runner.spec import Shard, ShardPlan, TrialSpec, experiment_tag

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "MISS",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "ExecutorStats",
    "ShardCrashError",
    "ShardError",
    "ShardExecutor",
    "ShardFailedError",
    "ShardFailure",
    "ShardTimeoutError",
    "shard_entry_name",
    "ConsoleProgress",
    "ProgressHook",
    "RecordingProgress",
    "RunnerMetrics",
    "ExperimentRunner",
    "default_runner",
    "Shard",
    "ShardPlan",
    "TrialSpec",
    "experiment_tag",
]
