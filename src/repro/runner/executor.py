"""Shard execution: serial in-process, or one OS process per shard.

``jobs == 1`` runs shards inline — no pickling, no fork — which is both
the debugging path and the baseline the determinism tests compare against.
``jobs > 1`` runs each shard in its own worker process (up to ``jobs``
concurrently) so a crashing or hanging shard can be isolated, killed and
retried without poisoning its siblings — the failure mode a long
paper-scale sweep actually hits.

Fault policy (per shard):

* **Crash** (worker exits without reporting, e.g. segfault/OOM-kill): the
  shard is re-run, up to ``max_retries`` extra attempts, before the crash
  becomes *terminal*.
* **Timeout** (``shard_timeout`` seconds without a result): the worker is
  terminated and the shard re-run under the same retry budget; exhausted
  retries make the timeout terminal.
* **Exception** inside the shard function: deterministic code misbehaving,
  so it is *not* retried — it is terminal immediately, with the worker
  traceback preserved.

What a *terminal* failure does depends on the failure budget:

* ``max_failed_shards == 0`` (default) — the matching :class:`ShardError`
  subclass is raised and the run aborts (historical behaviour).
* ``max_failed_shards > 0`` — up to that many shards may fail; each
  failed shard's slot in the result list holds a :class:`ShardFailure`
  annotation instead of a result, and the run completes *partially*.
  One failure past the budget aborts as above.
* ``fail_fast=True`` — the first terminal failure aborts regardless of
  the budget (turn a long chaos run into a quick repro).

Results are always returned ordered by shard index, whatever order the
workers finished in.  A retried shard re-runs with the *same*
:class:`~repro.runner.spec.Shard` (same derived seed), so a retry can
never change the numbers — only recover them.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runner.spec import Shard, ShardPlan

#: shard_fn(config, params, shard) -> picklable partial result
ShardFn = Callable[[Any, dict, Shard], Any]


class ShardError(RuntimeError):
    """Base class for shard execution failures."""


class ShardCrashError(ShardError):
    """A worker process died repeatedly without reporting a result."""


class ShardTimeoutError(ShardError):
    """A shard exceeded the per-shard timeout on every attempt."""


class ShardFailedError(ShardError):
    """The shard function raised; the worker traceback is in the message."""


#: Failure kinds, in the order the CLI maps them to exit codes.
FAILURE_KINDS = ("crash", "timeout", "error")

_ERROR_KIND = {
    ShardCrashError: "crash",
    ShardTimeoutError: "timeout",
    ShardFailedError: "error",
}


@dataclass(frozen=True)
class ShardFailure:
    """Annotation for one shard that terminally failed under a nonzero
    failure budget — it occupies the shard's slot in the result list."""

    index: int
    kind: str  # "crash" | "timeout" | "error"
    message: str
    attempts: int

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass
class _Attempt:
    process: multiprocessing.process.BaseProcess
    connection: Any
    shard: Shard
    started: float


@dataclass
class ExecutorStats:
    """What the execution cost — surfaced through the progress hooks."""

    shards_done: int = 0
    trials_done: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    crashed_shards: list[int] = field(default_factory=list)
    #: Terminal failures tolerated under the failure budget, in the order
    #: they became terminal.
    failed_shards: list[ShardFailure] = field(default_factory=list)
    #: Wall-clock seconds of each completed shard, in completion order
    #: (launch-to-harvest for workers) — feeds utilization accounting.
    shard_seconds: list[float] = field(default_factory=list)


def _shard_worker(connection, shard_fn: ShardFn, config, params: dict, shard: Shard):
    """Entry point of one worker process: run the shard, report via pipe."""
    try:
        result = shard_fn(config, params, shard)
        connection.send((True, result))
    except BaseException:  # noqa: BLE001 - report any failure to the parent
        connection.send((False, traceback.format_exc()))
    finally:
        connection.close()


class ShardExecutor:
    """Runs a :class:`ShardPlan` and returns per-shard results in order."""

    #: Poll interval while waiting on worker pipes.
    _POLL_SECONDS = 0.02

    def __init__(
        self,
        jobs: int = 1,
        shard_timeout: float | None = None,
        max_retries: int = 1,
        max_failed_shards: int = 0,
        fail_fast: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if max_failed_shards < 0:
            raise ValueError(
                f"max_failed_shards must be >= 0, got {max_failed_shards}"
            )
        self.jobs = jobs
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.max_failed_shards = max_failed_shards
        self.fail_fast = fail_fast
        self.stats = ExecutorStats()

    def run(
        self,
        shard_fn: ShardFn,
        plan: ShardPlan,
        config,
        on_shard_done: Callable[..., None] | None = None,
        include: set[int] | None = None,
    ) -> list[Any]:
        """Execute the plan's shards (or the ``include`` subset, for
        checkpoint resume) and return their results in shard order.

        Slots of shards that terminally failed within the failure budget
        hold :class:`ShardFailure` annotations; callers filter them.
        """
        start = time.monotonic()
        self.stats = ExecutorStats()
        params = dict(plan.spec.params)
        shards = [
            shard
            for shard in plan.shards
            if include is None or shard.index in include
        ]
        if self.jobs == 1:
            results = self._run_serial(shard_fn, shards, config, params, on_shard_done)
        else:
            results = self._run_parallel(
                shard_fn, shards, config, params, on_shard_done
            )
        self.stats.wall_seconds = time.monotonic() - start
        return results

    # -- failure budget -----------------------------------------------
    def _terminal_failure(
        self, shard: Shard, error: ShardError, attempts: int
    ) -> ShardFailure:
        """Record one terminal failure; raise if the budget disallows it."""
        failure = ShardFailure(
            index=shard.index,
            kind=_ERROR_KIND[type(error)],
            message=str(error),
            attempts=attempts,
        )
        self.stats.failed_shards.append(failure)
        if self.fail_fast or len(self.stats.failed_shards) > self.max_failed_shards:
            raise error
        return failure

    # -- serial path --------------------------------------------------
    def _run_serial(self, shard_fn, shards, config, params, on_shard_done) -> list[Any]:
        results = []
        for shard in shards:
            started = time.monotonic()
            try:
                result = shard_fn(config, params, shard)
            except Exception:
                error = ShardFailedError(
                    f"shard {shard.index} of {shard.n_trials} trial(s) "
                    f"raised:\n{traceback.format_exc()}"
                )
                results.append(self._terminal_failure(shard, error, attempts=1))
                continue
            results.append(result)
            self._mark_done(
                shard, on_shard_done, time.monotonic() - started, result
            )
        return results

    # -- parallel path ------------------------------------------------
    def _run_parallel(self, shard_fn, shards, config, params, on_shard_done) -> list[Any]:
        context = multiprocessing.get_context()
        queue: list[Shard] = list(shards)
        attempts: dict[int, int] = {shard.index: 0 for shard in shards}
        running: dict[int, _Attempt] = {}
        results: dict[int, Any] = {}

        def launch(shard: Shard) -> None:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_shard_worker,
                args=(child_conn, shard_fn, config, params, shard),
                daemon=True,
            )
            process.start()
            child_conn.close()
            running[shard.index] = _Attempt(
                process=process,
                connection=parent_conn,
                shard=shard,
                started=time.monotonic(),
            )

        def retry_or_fail(shard: Shard, error: ShardError) -> None:
            if isinstance(error, ShardFailedError):
                # Deterministic exception: retrying replays it, don't.
                results[shard.index] = self._terminal_failure(
                    shard, error, attempts[shard.index]
                )
            elif attempts[shard.index] <= self.max_retries:
                self.stats.retries += 1
                queue.append(shard)
            else:
                results[shard.index] = self._terminal_failure(
                    shard, error, attempts[shard.index]
                )

        try:
            while queue or running:
                while queue and len(running) < self.jobs:
                    shard = queue.pop(0)
                    attempts[shard.index] += 1
                    launch(shard)
                self._poll(running, results, retry_or_fail, on_shard_done)
        finally:
            for attempt in running.values():
                attempt.process.terminate()
            for attempt in running.values():
                attempt.process.join()
                attempt.connection.close()
        return [results[shard.index] for shard in shards]

    def _poll(self, running, results, retry_or_fail, on_shard_done) -> None:
        """One pass over in-flight workers: harvest, crash-check, time out."""
        time.sleep(self._POLL_SECONDS)
        now = time.monotonic()
        for index in list(running):
            attempt = running[index]
            shard = attempt.shard
            if attempt.connection.poll():
                try:
                    ok, payload = attempt.connection.recv()
                except EOFError:
                    # The pipe hit EOF with no message: the worker died
                    # before reporting (e.g. os._exit, segfault).  poll()
                    # returns True for EOF, so this is the usual way a
                    # crash is observed — not the is_alive() branch below.
                    self._reap(running.pop(index))
                    self.stats.crashed_shards.append(index)
                    retry_or_fail(
                        shard,
                        ShardCrashError(
                            f"shard {index} worker died (exit code "
                            f"{attempt.process.exitcode}) and exhausted "
                            f"{self.max_retries} "
                            f"retr{'y' if self.max_retries == 1 else 'ies'}"
                        ),
                    )
                    continue
                self._reap(running.pop(index))
                if ok:
                    results[index] = payload
                    self._mark_done(
                        shard, on_shard_done, now - attempt.started, payload
                    )
                else:
                    retry_or_fail(
                        shard,
                        ShardFailedError(
                            f"shard {index} of {shard.stop - shard.start} trial(s) "
                            f"raised in worker:\n{payload}"
                        ),
                    )
            elif not attempt.process.is_alive():
                self._reap(running.pop(index))
                self.stats.crashed_shards.append(index)
                retry_or_fail(
                    shard,
                    ShardCrashError(
                        f"shard {index} worker died (exit code "
                        f"{attempt.process.exitcode}) and exhausted "
                        f"{self.max_retries} retr{'y' if self.max_retries == 1 else 'ies'}"
                    ),
                )
            elif (
                self.shard_timeout is not None
                and now - attempt.started > self.shard_timeout
            ):
                attempt.process.terminate()
                self._reap(running.pop(index))
                retry_or_fail(
                    shard,
                    ShardTimeoutError(
                        f"shard {index} exceeded {self.shard_timeout:.1f}s "
                        f"on every attempt"
                    ),
                )

    @staticmethod
    def _reap(attempt: _Attempt) -> None:
        attempt.process.join()
        attempt.connection.close()

    def _mark_done(
        self, shard: Shard, on_shard_done, seconds: float = 0.0, result: Any = None
    ) -> None:
        self.stats.shards_done += 1
        self.stats.trials_done += shard.n_trials
        self.stats.shard_seconds.append(seconds)
        if on_shard_done is not None:
            on_shard_done(shard, result)
