"""Progress and metrics hooks for sharded experiment runs.

The runner reports through a :class:`ProgressHook`; the CLI installs
:class:`ConsoleProgress` to narrate shards, trials/sec and cache hits,
while tests and library callers use :class:`RecordingProgress` (or nothing
at all — the default hook is silent).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TextIO


@dataclass
class RunnerMetrics:
    """Cost and throughput of one experiment run through the runner."""

    experiment: str
    shards_total: int = 0
    shards_done: int = 0
    trials_total: int = 0
    trials_done: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    cache_hit: bool = False
    jobs: int = 1
    #: Wall-clock seconds per runner phase (plan / execute / reduce, or
    #: ``run`` for unsharded experiments), filled by the runner.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds each shard spent executing (completion order).
    shard_seconds: list[float] = field(default_factory=list)
    #: Shards whose results were resumed from checkpoint cache entries.
    shards_resumed: int = 0
    #: Per-shard failure annotations (``ShardFailure.to_dict()``) for runs
    #: that completed partially under a nonzero ``max_failed_shards``.
    failed_shards: list[dict] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """True when the run completed with at least one failed shard."""
        return bool(self.failed_shards)

    @property
    def trials_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.trials_done / self.wall_seconds

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker capacity the execute phase kept busy.

        1.0 means every worker computed the whole time; low values flag
        stragglers or shard-size imbalance.  0.0 when nothing executed.
        """
        execute = self.phase_seconds.get("execute", 0.0)
        if execute <= 0 or self.jobs <= 0 or not self.shard_seconds:
            return 0.0
        return min(1.0, sum(self.shard_seconds) / (self.jobs * execute))


class ProgressHook:
    """No-op base hook; override any subset of the callbacks."""

    def on_start(self, metrics: RunnerMetrics) -> None:
        pass

    def on_shard_done(self, metrics: RunnerMetrics) -> None:
        pass

    def on_cache_hit(self, metrics: RunnerMetrics, key: str) -> None:
        pass

    def on_finish(self, metrics: RunnerMetrics) -> None:
        pass


@dataclass
class RecordingProgress(ProgressHook):
    """Captures every callback — the test double."""

    started: list[RunnerMetrics] = field(default_factory=list)
    shard_events: list[tuple[int, int]] = field(default_factory=list)
    cache_hits: list[tuple[str, str]] = field(default_factory=list)
    finished: list[RunnerMetrics] = field(default_factory=list)

    def on_start(self, metrics: RunnerMetrics) -> None:
        self.started.append(metrics)

    def on_shard_done(self, metrics: RunnerMetrics) -> None:
        self.shard_events.append((metrics.shards_done, metrics.trials_done))

    def on_cache_hit(self, metrics: RunnerMetrics, key: str) -> None:
        self.cache_hits.append((metrics.experiment, key))

    def on_finish(self, metrics: RunnerMetrics) -> None:
        self.finished.append(metrics)


class ConsoleProgress(ProgressHook):
    """Human-readable narration, one line per event, for the CLI."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)

    def on_start(self, metrics: RunnerMetrics) -> None:
        self._emit(
            f"[runner] {metrics.experiment}: {metrics.trials_total} trial(s) "
            f"over {metrics.shards_total} shard(s), jobs={metrics.jobs}"
        )

    def on_shard_done(self, metrics: RunnerMetrics) -> None:
        self._emit(
            f"[runner] {metrics.experiment}: shard {metrics.shards_done}"
            f"/{metrics.shards_total} done "
            f"({metrics.trials_done}/{metrics.trials_total} trials)"
        )

    def on_cache_hit(self, metrics: RunnerMetrics, key: str) -> None:
        self._emit(
            f"[cache] {metrics.experiment}: hit ({key[:16]}) — skipping execution"
        )

    def on_finish(self, metrics: RunnerMetrics) -> None:
        if metrics.cache_hit:
            return
        retries = f", {metrics.retries} retr{'y' if metrics.retries == 1 else 'ies'}"
        rate = (
            f"{metrics.trials_per_second:.1f} trials/s"
            if metrics.trials_total
            else "unsharded"
        )
        line = (
            f"[runner] {metrics.experiment}: done in {metrics.wall_seconds:.1f}s "
            f"({rate}{retries})"
        )
        if metrics.shards_resumed:
            line += f" [{metrics.shards_resumed} shard(s) resumed]"
        if metrics.partial:
            kinds = ", ".join(
                f"shard {f['index']}: {f['kind']}" for f in metrics.failed_shards
            )
            line += f" PARTIAL ({kinds})"
        if metrics.phase_seconds:
            phases = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in metrics.phase_seconds.items()
            )
            line += f" [{phases}]"
            if metrics.jobs > 1 and metrics.shard_seconds:
                line += f" util={metrics.worker_utilization:.0%}"
        self._emit(line)
