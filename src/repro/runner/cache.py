"""Disk-backed, content-addressed result cache under ``.repro-cache/``.

A cache entry is keyed by the stable digest (:mod:`repro.core.hashing`) of
``(experiment, MachineConfig, params, root_seed, format version)``: any
change to the machine geometry, the experiment parameters, or the seed
yields a different key, so a hit is only ever returned for a bit-identical
rerun.  Entries store the experiment's reduced result object as a pickled
blob guarded by a SHA-256 checksum, written atomically (temp file +
rename) so a killed run never leaves a truncated entry behind.

Corrupt entries — truncated pickles, bit-flipped blobs, foreign files —
are *quarantined*: moved to ``.repro-cache/quarantine/`` for post-mortem
inspection and reported as misses, so the caller recomputes instead of
crashing.  Stale formats and mismatched keys are plain misses (nothing is
wrong with the file; it just isn't the entry asked for).  The cache must
only ever make a rerun faster, never able to fail it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.hashing import stable_digest

#: Bump to invalidate every existing entry on a format change.
#: v2: result stored as a pickled blob with a SHA-256 checksum.
CACHE_FORMAT_VERSION = 2

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (under the cache root) holding quarantined corrupt entries.
QUARANTINE_DIR = "quarantine"

#: Sentinel distinguishing "miss" from a cached ``None`` result.
MISS = object()


def cache_key(experiment: str, config, params: Any, root_seed: int) -> str:
    """Stable hex key for one (experiment, machine, params, seed) tuple."""
    return stable_digest(
        {
            "version": CACHE_FORMAT_VERSION,
            "experiment": experiment,
            "config": config.to_dict() if hasattr(config, "to_dict") else config,
            "params": params,
            "root_seed": root_seed,
        }
    )


@dataclass
class CacheStats:
    """Load/store accounting, surfaced through ``--metrics``."""

    loads: int = 0
    hits: int = 0
    misses: int = 0
    quarantined: int = 0
    stores: int = 0

    def to_dict(self) -> dict:
        return {
            "loads": self.loads,
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "stores": self.stores,
        }


class ResultCache:
    """Load/store experiment results keyed by :func:`cache_key`."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def path_for(self, experiment: str, key: str) -> Path:
        return self.root / f"{experiment}-{key[:16]}.pkl"

    def load(self, experiment: str, key: str) -> Any:
        """Return the cached result, or :data:`MISS`.

        A structurally broken entry (unreadable pickle, bad checksum) is
        moved to the quarantine directory and counted; a missing file or a
        well-formed entry for different content is a plain miss.
        """
        self.stats.loads += 1
        path = self.path_for(experiment, key)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return self._miss()
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return self._quarantine(path)
        except OSError:
            return self._miss()
        if not isinstance(payload, dict):
            return self._quarantine(path)
        if payload.get("version") != CACHE_FORMAT_VERSION:
            return self._miss()
        if payload.get("key") != key:
            return self._miss()
        blob = payload.get("blob")
        if not isinstance(blob, bytes):
            return self._quarantine(path)
        if hashlib.sha256(blob).hexdigest() != payload.get("checksum"):
            return self._quarantine(path)
        try:
            result = pickle.loads(blob)
        except Exception:
            return self._quarantine(path)
        self.stats.hits += 1
        return result

    def _miss(self) -> Any:
        self.stats.misses += 1
        return MISS

    def _quarantine(self, path: Path) -> Any:
        """Move a corrupt entry aside (best effort) and report a miss."""
        self.stats.quarantined += 1
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_root / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        return self._miss()

    def store(self, experiment: str, key: str, result: Any) -> Path:
        """Atomically persist ``result`` and return the entry path."""
        path = self.path_for(experiment, key)
        self.root.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "experiment": experiment,
            "key": key,
            "blob": blob,
            "checksum": hashlib.sha256(blob).hexdigest(),
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{experiment}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def invalidate(self, experiment: str, key: str) -> bool:
        """Drop one entry; returns whether anything was removed."""
        path = self.path_for(experiment, key)
        try:
            path.unlink()
            return True
        except OSError:
            return False
