"""Disk-backed, content-addressed result cache under ``.repro-cache/``.

A cache entry is keyed by the stable digest (:mod:`repro.core.hashing`) of
``(experiment, MachineConfig, params, root_seed, format version)``: any
change to the machine geometry, the experiment parameters, or the seed
yields a different key, so a hit is only ever returned for a bit-identical
rerun.  Entries store the experiment's reduced result object via pickle,
written atomically (temp file + rename) so a killed run never leaves a
truncated entry behind.

Corrupt or unreadable entries — truncated pickles, foreign files, stale
formats — are treated as misses, never as errors: the cache must only ever
make a rerun faster, not able to fail it.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.core.hashing import stable_digest

#: Bump to invalidate every existing entry on a format change.
CACHE_FORMAT_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Sentinel distinguishing "miss" from a cached ``None`` result.
MISS = object()


def cache_key(experiment: str, config, params: Any, root_seed: int) -> str:
    """Stable hex key for one (experiment, machine, params, seed) tuple."""
    return stable_digest(
        {
            "version": CACHE_FORMAT_VERSION,
            "experiment": experiment,
            "config": config.to_dict() if hasattr(config, "to_dict") else config,
            "params": params,
            "root_seed": root_seed,
        }
    )


class ResultCache:
    """Load/store experiment results keyed by :func:`cache_key`."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, experiment: str, key: str) -> Path:
        return self.root / f"{experiment}-{key[:16]}.pkl"

    def load(self, experiment: str, key: str) -> Any:
        """Return the cached result, or :data:`MISS`.

        Anything wrong with the entry — missing, truncated, unpicklable,
        or keyed for different content — is a miss.
        """
        path = self.path_for(experiment, key)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return MISS
        if not isinstance(payload, dict):
            return MISS
        if payload.get("version") != CACHE_FORMAT_VERSION:
            return MISS
        if payload.get("key") != key:
            return MISS
        return payload.get("result")

    def store(self, experiment: str, key: str, result: Any) -> Path:
        """Atomically persist ``result`` and return the entry path."""
        path = self.path_for(experiment, key)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "experiment": experiment,
            "key": key,
            "result": result,
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{experiment}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def invalidate(self, experiment: str, key: str) -> bool:
        """Drop one entry; returns whether anything was removed."""
        path = self.path_for(experiment, key)
        try:
            path.unlink()
            return True
        except OSError:
            return False
