"""The experiment runner: plan → (cache?) → execute shards → reduce → store.

:class:`ExperimentRunner` is the one object the CLI and the experiment
harnesses share.  ``run()`` takes a :class:`TrialSpec`, a shard function
and a reduce function and returns the experiment's usual result object;
``run_cached()`` wraps experiments that have no trial structure worth
sharding (single driver inits, workload models) so *every* experiment
participates in the disk cache and a warm ``python -m repro all`` executes
nothing.

Seeding contract: the root seed defaults to ``config.seed``; shard and
trial seeds are spawned from ``(root_seed, experiment, shard_index)`` (see
:mod:`repro.runner.spec`), so a given ``--seed`` fixes every number in the
output regardless of ``--jobs``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.config import MachineConfig
from repro.runner.cache import MISS, ResultCache, cache_key
from repro.runner.executor import ShardExecutor, ShardFn
from repro.runner.progress import ProgressHook, RunnerMetrics
from repro.runner.spec import Shard, ShardPlan, TrialSpec
from repro.telemetry import (
    PhaseTimer,
    TelemetrizedShardFn,
    current_telemetry,
    merge_shard_payloads,
)

#: reduce_fn(ordered per-shard results) -> experiment result object
ReduceFn = Callable[[list[Any]], Any]


class ExperimentRunner:
    """Executes trial specs with sharding, seeding, caching and progress."""

    def __init__(
        self,
        jobs: int = 1,
        root_seed: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = False,
        force: bool = False,
        progress: ProgressHook | None = None,
        shard_timeout: float | None = None,
        max_retries: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.root_seed = root_seed
        self.cache = cache if cache is not None else ResultCache()
        self.use_cache = use_cache
        self.force = force
        self.progress = progress or ProgressHook()
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        #: Metrics of every run this runner performed, in order.
        self.history: list[RunnerMetrics] = []

    # -- helpers ------------------------------------------------------
    def _effective_seed(self, config: MachineConfig) -> int:
        return self.root_seed if self.root_seed is not None else config.seed

    def _try_cache(
        self, experiment: str, key: str, metrics: RunnerMetrics
    ) -> Any:
        if not self.use_cache or self.force:
            return MISS
        cached = self.cache.load(experiment, key)
        if cached is not MISS:
            metrics.cache_hit = True
            self.progress.on_cache_hit(metrics, key)
            self.progress.on_finish(metrics)
            self.history.append(metrics)
        return cached

    def _store(self, experiment: str, key: str, result: Any) -> None:
        if self.use_cache:
            self.cache.store(experiment, key, result)

    # -- sharded experiments ------------------------------------------
    def run(
        self,
        spec: TrialSpec,
        config: MachineConfig,
        shard_fn: ShardFn,
        reduce_fn: ReduceFn,
    ) -> Any:
        """Run ``spec`` through the shard executor (or return a cache hit)."""
        root_seed = self._effective_seed(config)
        key = cache_key(spec.experiment, config, dict(spec.params), root_seed)
        metrics = RunnerMetrics(
            experiment=spec.experiment,
            shards_total=spec.n_shards,
            trials_total=spec.n_trials,
            jobs=self.jobs,
        )
        cached = self._try_cache(spec.experiment, key, metrics)
        if cached is not MISS:
            return cached

        telemetry = current_telemetry()
        timer = PhaseTimer(
            tracer=None if telemetry is None else telemetry.tracer,
            span_prefix=f"runner:{spec.experiment}:",
        )
        with timer.phase("plan"):
            plan = ShardPlan.build(spec, root_seed)
        executor = ShardExecutor(
            jobs=self.jobs,
            shard_timeout=self.shard_timeout,
            max_retries=self.max_retries,
        )
        self.progress.on_start(metrics)

        def on_shard_done(shard: Shard) -> None:
            metrics.shards_done = executor.stats.shards_done
            metrics.trials_done = executor.stats.trials_done
            metrics.retries = executor.stats.retries
            self.progress.on_shard_done(metrics)

        run_fn: ShardFn = shard_fn
        telemetrized = telemetry is not None and telemetry.active
        if telemetrized:
            run_fn = TelemetrizedShardFn(
                shard_fn,
                trace=telemetry.tracer.enabled,
                metrics=telemetry.metrics.enabled,
                max_events=telemetry.tracer.max_events,
            )
        with timer.phase("execute"):
            shard_results = executor.run(run_fn, plan, config, on_shard_done)
        if telemetrized:
            shard_results = merge_shard_payloads(shard_results)
        with timer.phase("reduce"):
            result = reduce_fn(shard_results)
        metrics.retries = executor.stats.retries
        metrics.wall_seconds = executor.stats.wall_seconds
        metrics.phase_seconds = dict(timer.seconds)
        metrics.shard_seconds = list(executor.stats.shard_seconds)
        self._store(spec.experiment, key, result)
        self.progress.on_finish(metrics)
        self.history.append(metrics)
        return result

    # -- unsharded experiments ----------------------------------------
    def run_cached(
        self,
        experiment: str,
        config: MachineConfig,
        params: dict,
        fn: Callable[[], Any],
    ) -> Any:
        """Cache-only wrapper for experiments without a trial fan-out."""
        root_seed = self._effective_seed(config)
        key = cache_key(experiment, config, params, root_seed)
        metrics = RunnerMetrics(experiment=experiment, jobs=self.jobs)
        cached = self._try_cache(experiment, key, metrics)
        if cached is not MISS:
            return cached
        telemetry = current_telemetry()
        timer = PhaseTimer(
            tracer=None if telemetry is None else telemetry.tracer,
            span_prefix=f"runner:{experiment}:",
        )
        with timer.phase("run"):
            result = fn()
        metrics.wall_seconds = timer.seconds["run"]
        metrics.phase_seconds = dict(timer.seconds)
        self._store(experiment, key, result)
        self.history.append(metrics)
        return result


def default_runner() -> ExperimentRunner:
    """The runner experiments build when called without one: serial, no
    cache, silent — byte-for-byte the behaviour library callers expect."""
    return ExperimentRunner(jobs=1, use_cache=False)
