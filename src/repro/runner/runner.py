"""The experiment runner: plan → (cache?) → execute shards → reduce → store.

:class:`ExperimentRunner` is the one object the CLI and the experiment
harnesses share.  ``run()`` takes a :class:`TrialSpec`, a shard function
and a reduce function and returns the experiment's usual result object;
``run_cached()`` wraps experiments that have no trial structure worth
sharding (single driver inits, workload models) so *every* experiment
participates in the disk cache and a warm ``python -m repro all`` executes
nothing.

Seeding contract: the root seed defaults to ``config.seed``; shard and
trial seeds are spawned from ``(root_seed, experiment, shard_index)`` (see
:mod:`repro.runner.spec`), so a given ``--seed`` fixes every number in the
output regardless of ``--jobs``.

Degradation contract: with ``max_failed_shards > 0``, a run whose
terminal shard failures stay within the budget still completes — failed
shards are dropped from the reduce, annotated in
:attr:`RunnerMetrics.failed_shards`, and the partial result is *not*
written to the result cache (a later rerun recomputes the gaps).  With
``checkpoint=True`` (and a cache), every completed shard's result is
persisted under ``experiment@s<index>`` as it finishes, and a rerun of
the same key resumes from those entries instead of re-executing.
"""

from __future__ import annotations

import sys
from typing import Any, Callable

from repro.core.config import MachineConfig
from repro.runner.cache import MISS, ResultCache, cache_key
from repro.runner.executor import ShardExecutor, ShardFailure, ShardFn
from repro.runner.progress import ProgressHook, RunnerMetrics
from repro.runner.spec import Shard, ShardPlan, TrialSpec
from repro.telemetry import (
    PhaseTimer,
    RunLedger,
    TelemetrizedShardFn,
    current_telemetry,
    merge_shard_payloads,
    record_for_run,
)

#: reduce_fn(ordered per-shard results) -> experiment result object
ReduceFn = Callable[[list[Any]], Any]


def shard_entry_name(experiment: str, shard_index: int) -> str:
    """Cache entry name of one shard's checkpoint within an experiment."""
    return f"{experiment}@s{shard_index}"


class ExperimentRunner:
    """Executes trial specs with sharding, seeding, caching and progress."""

    def __init__(
        self,
        jobs: int = 1,
        root_seed: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = False,
        force: bool = False,
        progress: ProgressHook | None = None,
        shard_timeout: float | None = None,
        max_retries: int = 1,
        max_failed_shards: int = 0,
        fail_fast: bool = False,
        checkpoint: bool = False,
        ledger: RunLedger | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_failed_shards < 0:
            raise ValueError(
                f"max_failed_shards must be >= 0, got {max_failed_shards}"
            )
        self.jobs = jobs
        self.root_seed = root_seed
        self.cache = cache if cache is not None else ResultCache()
        self.use_cache = use_cache
        self.force = force
        self.progress = progress or ProgressHook()
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.max_failed_shards = max_failed_shards
        self.fail_fast = fail_fast
        self.checkpoint = checkpoint
        #: When set, every run (live, cached or partial) appends a record
        #: to the persistent ledger for `repro report` (best-effort: a
        #: ledger write failure never fails the run).
        self.ledger = ledger
        #: Metrics of every run this runner performed, in order.
        self.history: list[RunnerMetrics] = []

    # -- helpers ------------------------------------------------------
    def _effective_seed(self, config: MachineConfig) -> int:
        return self.root_seed if self.root_seed is not None else config.seed

    def _try_cache(
        self, experiment: str, key: str, metrics: RunnerMetrics
    ) -> Any:
        if not self.use_cache or self.force:
            return MISS
        cached = self.cache.load(experiment, key)
        if cached is not MISS:
            metrics.cache_hit = True
            self.progress.on_cache_hit(metrics, key)
            self.progress.on_finish(metrics)
            self.history.append(metrics)
        return cached

    def _store(self, experiment: str, key: str, result: Any) -> None:
        if self.use_cache:
            self.cache.store(experiment, key, result)

    def _ledger_emit(
        self,
        experiment: str,
        config: MachineConfig,
        root_seed: int,
        metrics: RunnerMetrics,
        result: Any,
    ) -> None:
        """Append one run record; headline metrics come from the reduced
        result object, so the record is bit-identical at any ``--jobs``."""
        if self.ledger is None:
            return
        try:
            self.ledger.append(
                record_for_run(experiment, config, root_seed, metrics, result)
            )
        except Exception as error:  # noqa: BLE001 - observability must not kill runs
            print(f"[ledger] append failed: {error}", file=sys.stderr)

    # -- sharded experiments ------------------------------------------
    def run(
        self,
        spec: TrialSpec,
        config: MachineConfig,
        shard_fn: ShardFn,
        reduce_fn: ReduceFn,
    ) -> Any:
        """Run ``spec`` through the shard executor (or return a cache hit)."""
        root_seed = self._effective_seed(config)
        key = cache_key(spec.experiment, config, dict(spec.params), root_seed)
        metrics = RunnerMetrics(
            experiment=spec.experiment,
            shards_total=spec.n_shards,
            trials_total=spec.n_trials,
            jobs=self.jobs,
        )
        cached = self._try_cache(spec.experiment, key, metrics)
        if cached is not MISS:
            self._ledger_emit(spec.experiment, config, root_seed, metrics, cached)
            return cached

        telemetry = current_telemetry()
        timer = PhaseTimer(
            tracer=None if telemetry is None else telemetry.tracer,
            span_prefix=f"runner:{spec.experiment}:",
        )
        with timer.phase("plan"):
            plan = ShardPlan.build(spec, root_seed)
        telemetrized = telemetry is not None and telemetry.active
        # Traced runs must re-execute to collect events, so checkpoints
        # neither load nor store while telemetry is active.
        checkpointing = (
            self.checkpoint and self.use_cache and not self.force and not telemetrized
        )

        resumed: dict[int, Any] = {}
        if checkpointing:
            for shard in plan.shards:
                entry = self.cache.load(
                    shard_entry_name(spec.experiment, shard.index), key
                )
                if entry is not MISS:
                    resumed[shard.index] = entry
        include: set[int] | None = None
        if resumed:
            include = {
                shard.index
                for shard in plan.shards
                if shard.index not in resumed
            }
        metrics.shards_resumed = len(resumed)

        executor = ShardExecutor(
            jobs=self.jobs,
            shard_timeout=self.shard_timeout,
            max_retries=self.max_retries,
            max_failed_shards=self.max_failed_shards,
            fail_fast=self.fail_fast,
        )
        self.progress.on_start(metrics)

        def on_shard_done(shard: Shard, result: Any) -> None:
            metrics.shards_done = len(resumed) + executor.stats.shards_done
            metrics.trials_done = executor.stats.trials_done
            metrics.retries = executor.stats.retries
            if checkpointing:
                self.cache.store(
                    shard_entry_name(spec.experiment, shard.index), key, result
                )
            self.progress.on_shard_done(metrics)

        run_fn: ShardFn = shard_fn
        if telemetrized:
            run_fn = TelemetrizedShardFn(
                shard_fn,
                trace=telemetry.tracer.enabled,
                metrics=telemetry.metrics.enabled,
                max_events=telemetry.tracer.max_events,
            )
        with timer.phase("execute"):
            executed = executor.run(
                run_fn, plan, config, on_shard_done, include=include
            )
        by_index = dict(resumed)
        executed_shards = [
            shard
            for shard in plan.shards
            if include is None or shard.index in include
        ]
        for shard, result in zip(executed_shards, executed):
            by_index[shard.index] = result
        ordered = [by_index[shard.index] for shard in plan.shards]
        failures = [r for r in ordered if isinstance(r, ShardFailure)]
        shard_results = [r for r in ordered if not isinstance(r, ShardFailure)]
        if telemetrized:
            shard_results = merge_shard_payloads(shard_results)
        with timer.phase("reduce"):
            result = reduce_fn(shard_results)
        metrics.shards_done = len(plan.shards) - len(failures)
        metrics.trials_done = sum(
            shard.n_trials
            for shard, outcome in zip(plan.shards, ordered)
            if not isinstance(outcome, ShardFailure)
        )
        metrics.retries = executor.stats.retries
        metrics.wall_seconds = executor.stats.wall_seconds
        metrics.phase_seconds = dict(timer.seconds)
        metrics.shard_seconds = list(executor.stats.shard_seconds)
        metrics.failed_shards = [failure.to_dict() for failure in failures]
        if not failures:
            # Partial results never enter the whole-run cache: a rerun must
            # recompute the gaps.  Checkpoints of the completed shards make
            # that rerun cheap.
            self._store(spec.experiment, key, result)
            if checkpointing:
                for shard in plan.shards:
                    self.cache.invalidate(
                        shard_entry_name(spec.experiment, shard.index), key
                    )
        self.progress.on_finish(metrics)
        self.history.append(metrics)
        # Partial runs are recorded too (flagged via metrics.partial), so
        # the ledger shows degraded runs rather than silently omitting them.
        self._ledger_emit(spec.experiment, config, root_seed, metrics, result)
        return result

    # -- unsharded experiments ----------------------------------------
    def run_cached(
        self,
        experiment: str,
        config: MachineConfig,
        params: dict,
        fn: Callable[[], Any],
    ) -> Any:
        """Cache-only wrapper for experiments without a trial fan-out."""
        root_seed = self._effective_seed(config)
        key = cache_key(experiment, config, params, root_seed)
        metrics = RunnerMetrics(experiment=experiment, jobs=self.jobs)
        cached = self._try_cache(experiment, key, metrics)
        if cached is not MISS:
            self._ledger_emit(experiment, config, root_seed, metrics, cached)
            return cached
        telemetry = current_telemetry()
        timer = PhaseTimer(
            tracer=None if telemetry is None else telemetry.tracer,
            span_prefix=f"runner:{experiment}:",
        )
        with timer.phase("run"):
            result = fn()
        metrics.wall_seconds = timer.seconds["run"]
        metrics.phase_seconds = dict(timer.seconds)
        self._store(experiment, key, result)
        self.history.append(metrics)
        self._ledger_emit(experiment, config, root_seed, metrics, result)
        return result


def default_runner() -> ExperimentRunner:
    """The runner experiments build when called without one: serial, no
    cache, silent — byte-for-byte the behaviour library callers expect."""
    return ExperimentRunner(jobs=1, use_cache=False)
