"""Trial and shard planning with deterministic, jobs-independent seeding.

Every paper experiment is a Monte Carlo sweep of independent *trials*
(driver inits for Fig. 6, page loads for Section V, sweep points for the
covert-channel figures).  A :class:`TrialSpec` names the experiment and its
trial count; :class:`ShardPlan.build` splits those trials into *shards* of
a fixed size and assigns each shard — and each trial inside it — a seed
derived purely from ``(root_seed, experiment_name, shard_index)`` via
:class:`numpy.random.SeedSequence` spawning.

The invariant the whole runner rests on: **the plan depends only on the
spec and the root seed, never on how many workers execute it**, so results
are bit-identical for ``--jobs 1`` and ``--jobs 64``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

#: Seeds are delivered as non-negative ints below 2**63 so they are safe
#: for ``MachineConfig.seed``, ``random.Random`` and ``numpy`` alike.
_SEED_BITS = 63


def experiment_tag(experiment: str) -> int:
    """Stable integer identity of an experiment name, for seed entropy."""
    digest = hashlib.sha256(experiment.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _draw_seed(sequence: np.random.SeedSequence) -> int:
    words = sequence.generate_state(2, np.uint32)
    return (int(words[0]) << 31 | int(words[1])) & ((1 << _SEED_BITS) - 1)


@dataclass(frozen=True)
class TrialSpec:
    """What to run: an experiment's trial count, shard size, and params.

    ``params`` must be stable-hashable (see :mod:`repro.core.hashing`): it
    both parameterises the shard function and feeds the cache key.  The
    shard size is part of the spec — *not* derived from the worker count —
    because the shard boundaries determine the seed stream.
    """

    experiment: str
    n_trials: int
    trials_per_shard: int = 1
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ValueError("experiment name must be non-empty")
        if self.n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {self.n_trials}")
        if self.trials_per_shard <= 0:
            raise ValueError(
                f"trials_per_shard must be positive, got {self.trials_per_shard}"
            )

    @property
    def n_shards(self) -> int:
        return math.ceil(self.n_trials / self.trials_per_shard)


@dataclass(frozen=True)
class Shard:
    """One unit of parallel work: trials ``[start, stop)`` plus their seeds."""

    index: int
    start: int
    stop: int
    seed: int
    trial_seeds: tuple[int, ...]

    @property
    def n_trials(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if len(self.trial_seeds) != self.n_trials:
            raise ValueError(
                f"shard {self.index}: {len(self.trial_seeds)} seeds for "
                f"{self.n_trials} trials"
            )


@dataclass(frozen=True)
class ShardPlan:
    """A fully seeded, ordered decomposition of a spec into shards."""

    spec: TrialSpec
    root_seed: int
    shards: tuple[Shard, ...]

    @classmethod
    def build(cls, spec: TrialSpec, root_seed: int) -> "ShardPlan":
        if root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        tag = experiment_tag(spec.experiment)
        shards = []
        for index in range(spec.n_shards):
            start = index * spec.trials_per_shard
            stop = min(start + spec.trials_per_shard, spec.n_trials)
            sequence = np.random.SeedSequence([root_seed, tag, index])
            trial_seeds = tuple(
                _draw_seed(child) for child in sequence.spawn(stop - start)
            )
            shards.append(
                Shard(
                    index=index,
                    start=start,
                    stop=stop,
                    seed=_draw_seed(sequence),
                    trial_seeds=trial_seeds,
                )
            )
        return cls(spec=spec, root_seed=root_seed, shards=tuple(shards))

    @property
    def n_trials(self) -> int:
        return self.spec.n_trials

    def trial_seed(self, trial_index: int) -> int:
        """Seed of one global trial index (for tests and serial callers)."""
        shard = self.shards[trial_index // self.spec.trials_per_shard]
        return shard.trial_seeds[trial_index - shard.start]
