"""Frozen OrderedDict-based reference model for differential testing.

This module preserves the pre-engine implementation of the sliced LLC (one
:class:`~repro.cache.cacheset.CacheSet` per set) and the adaptive-partition
victim policy exactly as they shipped before the packed
:class:`~repro.cache.engine.CacheEngine` replaced them on the hot path.

**Production code must not import this.**  Its only consumer is
``tests/test_engine_equivalence.py``, which replays randomized
CPU/DMA/flush/partition traces through both models and asserts identical
eviction decisions, stats and probe outcomes.  Keeping the reference
checked in means the equivalence harness keeps guarding the engine against
behavioural drift in future PRs; if the harness is ever retired, delete
this file with it.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.cacheset import CacheSet, LINE_DIRTY, LINE_IO
from repro.cache.slicehash import IntelComplexHash, SliceHash
from repro.cache.stats import CacheStats
from repro.core.config import CacheGeometry, DDIOConfig, TimingParams
from repro.defense.partitioning import PartitionConfig, PartitionStats
from repro.mem.physmem import DramTraffic


class LegacySlicedLLC:
    """The shared LLC as modelled before the packed engine refactor."""

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        ddio: DDIOConfig | None = None,
        timing: TimingParams | None = None,
        traffic: DramTraffic | None = None,
        slice_hash: SliceHash | None = None,
    ) -> None:
        self.geometry = geometry or CacheGeometry()
        self.ddio = ddio or DDIOConfig()
        self.timing = timing or TimingParams()
        self.traffic = traffic or DramTraffic()
        self.slice_hash = slice_hash or IntelComplexHash(self.geometry.n_slices)
        if self.slice_hash.n_slices != self.geometry.n_slices:
            raise ValueError(
                "slice hash built for a different slice count: "
                f"{self.slice_hash.n_slices} != {self.geometry.n_slices}"
            )
        self.sets: list[CacheSet] = [
            CacheSet(self.geometry.ways) for _ in range(self.geometry.total_sets)
        ]
        self.stats = CacheStats()
        self.telemetry = None
        self.partition = None
        self.io_fill_hook: Callable[[int], None] | None = None
        self.evict_hook: Callable[[int], None] | None = None
        self._offset_bits = self.geometry.offset_bits
        self._set_mask = self.geometry.sets_per_slice - 1

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def set_index_of(self, paddr: int) -> int:
        return (paddr >> self._offset_bits) & self._set_mask

    def slice_of(self, paddr: int) -> int:
        return self.slice_hash.slice_of(paddr)

    def flat_set_of(self, paddr: int) -> int:
        return (
            self.slice_hash.slice_of(paddr) * self.geometry.sets_per_slice
            + ((paddr >> self._offset_bits) & self._set_mask)
        )

    def line_addr_of(self, paddr: int) -> int:
        return paddr >> self._offset_bits

    # ------------------------------------------------------------------
    # CPU path
    # ------------------------------------------------------------------
    def cpu_access(self, paddr: int, write: bool = False, now: int = 0) -> tuple[bool, int]:
        flat = self.flat_set_of(paddr)
        cset = self.sets[flat]
        line = paddr >> self._offset_bits
        if cset.touch(line, set_dirty=write):
            self.stats.cpu_hits += 1
            return True, self.timing.llc_hit_latency
        self.stats.cpu_misses += 1
        self.traffic.reads += 1
        self._fill_cpu(flat, cset, line, write, now)
        return False, self.timing.llc_miss_latency

    def _fill_cpu(self, flat: int, cset: CacheSet, line: int, write: bool, now: int) -> None:
        flags = LINE_DIRTY if write else 0
        if self.partition is not None:
            evicted = self.partition.victim_for_cpu_fill(self, flat, cset, now)
            if evicted is not None:
                self._retire(evicted, by_io=False)
            cset.insert(line, flags)
            self.partition.after_fill(self, flat, cset, now)
            return
        evicted = cset.insert(line, flags)
        if evicted is not None:
            self._retire(evicted, by_io=False)

    # ------------------------------------------------------------------
    # I/O (DMA) path
    # ------------------------------------------------------------------
    def io_write(self, paddr: int, now: int = 0) -> None:
        if not self.ddio.enabled:
            self.traffic.writes += 1
            flat = self.flat_set_of(paddr)
            cset = self.sets[flat]
            line = paddr >> self._offset_bits
            if cset.invalidate(line) is not None:
                self.stats.invalidations += 1
                if self.evict_hook is not None:
                    self.evict_hook(line)
                if self.partition is not None:
                    self.partition.after_fill(self, flat, cset, now)
            return
        flat = self.flat_set_of(paddr)
        cset = self.sets[flat]
        line = paddr >> self._offset_bits
        if line in cset:
            cset.mark_io(line)
            self.stats.io_hits += 1
            if self.partition is not None:
                self.partition.after_fill(self, flat, cset, now)
            return
        self.stats.io_fills += 1
        if self.io_fill_hook is not None:
            self.io_fill_hook(flat)
        if self.partition is not None:
            evicted = self.partition.victim_for_io_fill(self, flat, cset, now)
            if evicted is not None:
                self._retire(evicted, by_io=True)
            cset.insert(line, LINE_IO | LINE_DIRTY)
            self.partition.after_fill(self, flat, cset, now)
            return
        if cset.io_count >= self.ddio.write_allocate_ways:
            evicted = cset.evict_lru_of(io=True)
            if evicted is not None:
                self._retire(evicted, by_io=True)
        elif len(cset) >= cset.ways:
            self._retire(cset.evict_lru(), by_io=True)
        cset.insert(line, LINE_IO | LINE_DIRTY)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self, paddr: int) -> int:
        cset = self.sets[self.flat_set_of(paddr)]
        line = paddr >> self._offset_bits
        flags = cset.invalidate(line)
        if flags is not None:
            self.stats.invalidations += 1
            if self.evict_hook is not None:
                self.evict_hook(line)
            if flags & LINE_DIRTY:
                self.stats.writebacks += 1
                self.traffic.writes += 1
        return self.timing.llc_hit_latency

    def invalidate_set_lines(self, flat_set: int, io: bool) -> int:
        cset = self.sets[flat_set]
        victims = [
            line for line, flags in cset.lines.items() if bool(flags & LINE_IO) == io
        ]
        for line in victims:
            flags = cset.invalidate(line)
            self.stats.invalidations += 1
            if self.evict_hook is not None:
                self.evict_hook(line)
            if flags is not None and flags & LINE_DIRTY:
                self.stats.writebacks += 1
                self.traffic.writes += 1
        return len(victims)

    def _retire(self, evicted: tuple[int, int], by_io: bool) -> None:
        line, flags = evicted
        if self.evict_hook is not None:
            self.evict_hook(line)
        if flags & LINE_DIRTY:
            self.stats.writebacks += 1
            self.traffic.writes += 1
        victim_is_io = bool(flags & LINE_IO)
        if by_io and victim_is_io:
            self.stats.io_evicted_io += 1
        elif by_io:
            self.stats.io_evicted_cpu += 1
            if self.telemetry is not None:
                self.telemetry.on_io_evict_cpu(line)
        elif victim_is_io:
            self.stats.cpu_evicted_io += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_resident(self, paddr: int) -> bool:
        return (paddr >> self._offset_bits) in self.sets[self.flat_set_of(paddr)]

    def set_occupancy(self, flat_set: int) -> tuple[int, int]:
        return self.sets[flat_set].occupancy()


class LegacyAdaptivePartition:
    """The cset-based adaptive partition exactly as it ran pre-engine."""

    def __init__(self, config: PartitionConfig | None = None) -> None:
        self.config = config or PartitionConfig()
        self.stats = PartitionStats()
        self._quota: dict[int, int] = {}
        self._default_quota = self.config.init_quota
        self._presence: dict[int, int] = {}
        self._io_since: dict[int, int] = {}
        self._period_start = 0
        self._machine = None

    def quota(self, flat: int) -> int:
        return self._quota.get(flat, self._default_quota)

    def victim_for_io_fill(self, llc, flat: int, cset: CacheSet, now: int):
        if cset.io_count >= self.quota(flat):
            return cset.evict_lru_of(io=True)
        if len(cset) >= cset.ways:
            return cset.evict_lru()
        return None

    def victim_for_cpu_fill(self, llc, flat: int, cset: CacheSet, now: int):
        cpu_limit = cset.ways - self.quota(flat)
        if cset.cpu_count >= cpu_limit:
            victim = cset.evict_lru_of(io=False)
            if victim is not None:
                return victim
        if len(cset) >= cset.ways:
            return cset.evict_lru()
        return None

    def after_fill(self, llc, flat: int, cset: CacheSet, now: int) -> None:
        has_io = cset.io_count > 0
        since = self._io_since.get(flat)
        if has_io and since is None:
            self._io_since[flat] = now
        elif not has_io and since is not None:
            start = max(since, self._period_start)
            self._presence[flat] = self._presence.get(flat, 0) + max(0, now - start)
            del self._io_since[flat]

    def presence_this_period(self, flat: int, now: int) -> int:
        total = self._presence.get(flat, 0)
        since = self._io_since.get(flat)
        if since is not None:
            total += max(0, now - max(since, self._period_start))
        return min(total, max(0, now - self._period_start))

    def adapt(self, llc, now: int) -> None:
        cfg = self.config
        self.stats.adaptations += 1
        candidates = set(self._presence) | set(self._io_since)
        for flat in candidates:
            presence = self.presence_this_period(flat, now)
            quota = self.quota(flat)
            if presence >= cfg.t_high and quota < cfg.max_quota:
                self._set_quota(llc, flat, quota + 1)
                self.stats.quota_grown += 1
            elif presence <= cfg.t_low and quota > cfg.min_quota:
                self._set_quota(llc, flat, quota - 1)
                self.stats.quota_shrunk += 1
        for flat, quota in list(self._quota.items()):
            if flat not in candidates and quota > cfg.min_quota:
                self._set_quota(llc, flat, quota - 1)
                self.stats.quota_shrunk += 1
        if self._default_quota > cfg.min_quota:
            self._default_quota -= 1
        self._presence.clear()
        for flat in list(self._io_since):
            self._io_since[flat] = now
        self._period_start = now

    def _set_quota(self, llc, flat: int, new_quota: int) -> None:
        self._quota[flat] = new_quota
        cset = llc.sets[flat]
        while cset.io_count > new_quota:
            victim = cset.evict_lru_of(io=True)
            if victim is None:
                break
            llc._retire(victim, by_io=True)
            self.stats.boundary_invalidations += 1
        cpu_limit = cset.ways - new_quota
        while cset.cpu_count > cpu_limit:
            victim = cset.evict_lru_of(io=False)
            if victim is None:
                break
            llc._retire(victim, by_io=False)
            self.stats.boundary_invalidations += 1
