"""Private L1 cache and a two-level hierarchy used by the CPU-side model.

The side-channel experiments run the spy directly against the LLC (its
eviction sets exceed L1 associativity, so L1 contributes nothing but a
constant offset), but the performance model for the defense evaluation
(Figs. 14-16) routes victim workloads through a private L1 so that hot
working sets filter out of the LLC traffic realistically.

The hierarchy is inclusive, like the Intel parts the paper targets: an LLC
eviction back-invalidates the L1 copy.
"""

from __future__ import annotations

from repro.cache.cacheset import CacheSet, LINE_DIRTY
from repro.cache.llc import SlicedLLC
from repro.cache.stats import CacheStats
from repro.core.config import TimingParams


class L1Cache:
    """A small private physically-indexed cache (32 KB / 8-way by default)."""

    def __init__(self, size_kb: int = 32, ways: int = 8, line_size: int = 64) -> None:
        n_lines = size_kb * 1024 // line_size
        if n_lines % ways:
            raise ValueError("cache size not divisible into whole sets")
        self.n_sets = n_lines // ways
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"L1 set count must be a power of two, got {self.n_sets}")
        self.ways = ways
        self.line_size = line_size
        self._offset_bits = line_size.bit_length() - 1
        self._set_mask = self.n_sets - 1
        self.sets = [CacheSet(ways) for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def set_of(self, paddr: int) -> CacheSet:
        return self.sets[(paddr >> self._offset_bits) & self._set_mask]

    def access(self, paddr: int, write: bool = False) -> bool:
        """Look up ``paddr``; True on hit."""
        hit = self.set_of(paddr).touch(paddr >> self._offset_bits, set_dirty=write)
        if hit:
            self.stats.cpu_hits += 1
        else:
            self.stats.cpu_misses += 1
        return hit

    def fill(self, paddr: int, write: bool) -> tuple[int, int] | None:
        """Install the line for ``paddr``; return evicted (line, flags)."""
        flags = LINE_DIRTY if write else 0
        return self.set_of(paddr).insert(paddr >> self._offset_bits, flags)

    def invalidate_line(self, line_addr: int) -> int | None:
        """Back-invalidate on LLC eviction (inclusive hierarchy)."""
        paddr = line_addr << self._offset_bits
        return self.set_of(paddr).invalidate(line_addr)


class CacheHierarchy:
    """L1 + shared LLC with inclusive back-invalidation.

    One instance per simulated core/process in the performance model; all
    instances share the same :class:`SlicedLLC`.
    """

    def __init__(
        self,
        llc: SlicedLLC,
        timing: TimingParams | None = None,
        l1: L1Cache | None = None,
    ) -> None:
        self.llc = llc
        self.timing = timing or llc.timing
        self.l1 = l1 or L1Cache()
        # Register for back-invalidation so inclusion holds.  Multiple
        # hierarchies chain their hooks.
        previous_hook = llc.evict_hook

        def _back_invalidate(line_addr: int) -> None:
            self.l1.invalidate_line(line_addr)
            if previous_hook is not None:
                previous_hook(line_addr)

        llc.evict_hook = _back_invalidate

    def access(self, paddr: int, write: bool = False, now: int = 0) -> tuple[bool, int]:
        """Access through L1 then LLC; returns (l1_hit, total_latency)."""
        if self.l1.access(paddr, write):
            return True, self.timing.l1_hit_latency
        _llc_hit, llc_latency = self.llc.cpu_access(paddr, write=write, now=now)
        evicted = self.l1.fill(paddr, write)
        if evicted is not None:
            line_addr, flags = evicted
            if flags & LINE_DIRTY:
                # Dirty L1 writeback lands in the (inclusive) LLC copy.
                victim_paddr = line_addr << self.llc.geometry.offset_bits
                llc_set = self.llc.sets[self.llc.flat_set_of(victim_paddr)]
                llc_set.touch(line_addr, set_dirty=True)
        return False, self.timing.l1_hit_latency + llc_latency
