"""Packed array-backed storage for every set of the sliced LLC.

The legacy model kept one ``OrderedDict`` per cache set (see
:mod:`repro.cache.legacy`), which makes every simulated access a Python
dict operation and every :class:`~repro.core.machine.Machine` construction
an allocation of 16384 dicts.  :class:`CacheEngine` replaces that with flat
arrays shared by *all* sets:

* ``tags``   — int64, ``n_sets * ways``; the full line address (which is
  also the tag), ``-1`` for an empty way;
* ``flags``  — uint8, per-way ``LINE_IO`` / ``LINE_DIRTY`` bits;
* ``stamps`` — int64, per-way last-touch tick from a single monotonic
  counter.  Within one set, stamps are unique and strictly ordered by
  recency, so "LRU" is "minimum stamp" — exactly the order the legacy
  ``OrderedDict`` maintained structurally.

A single Python dict (``(set, line) -> way``, encoded as one integer key)
is kept as a directory for O(1) scalar lookups, and small Python lists
track per-set occupancy and I/O-line counts.  The numpy arrays are the
ground truth that the *batched* kernels operate on:
:meth:`lookup_many`/:meth:`touch_many` resolve and touch thousands of
accesses with a handful of vectorised operations, which is what lets a
PRIME+PROBE sweep issue one engine call instead of one Python call per
line.

Semantics are differentially tested against the legacy model
(``tests/test_engine_equivalence.py``): identical eviction decisions,
stats attribution and probe results on randomized CPU/DMA/flush/partition
traces.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cacheset import LINE_DIRTY, LINE_IO


class CacheEngine:
    """Flat-array storage and LRU policy for ``n_sets`` x ``ways`` lines.

    All methods take a *flat set id* (slice-major, as produced by
    :meth:`repro.cache.llc.SlicedLLC.flat_set_of`) plus a line address.
    The engine is policy-free with respect to *which* victim origin to
    choose — callers (the DDIO path, the partition defense) pick victims
    via :meth:`evict_lru` / :meth:`evict_lru_of`.
    """

    __slots__ = (
        "n_sets",
        "ways",
        "tags",
        "flags",
        "stamps",
        "tags2",
        "flags2",
        "stamps2",
        "_size",
        "_n_io",
        "_dir",
        "_tick",
        "_line_span",
    )

    def __init__(self, n_sets: int, ways: int) -> None:
        if n_sets <= 0:
            raise ValueError(f"n_sets must be positive, got {n_sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.n_sets = n_sets
        self.ways = ways
        total = n_sets * ways
        self.tags = np.full(total, -1, dtype=np.int64)
        self.flags = np.zeros(total, dtype=np.uint8)
        self.stamps = np.zeros(total, dtype=np.int64)
        # 2-D views over the same memory, for row gathers in batched ops.
        self.tags2 = self.tags.reshape(n_sets, ways)
        self.flags2 = self.flags.reshape(n_sets, ways)
        self.stamps2 = self.stamps.reshape(n_sets, ways)
        self._size = [0] * n_sets
        self._n_io = [0] * n_sets
        #: Directory: (flat * line_span + line) -> way.  ``line_span`` is a
        #: power of two above any line address so keys never collide.
        self._dir: dict[int, int] = {}
        self._tick = 0
        self._line_span = 1 << 58

    # ------------------------------------------------------------------
    # Key encoding
    # ------------------------------------------------------------------
    def _key(self, flat: int, line: int) -> int:
        return flat * self._line_span + line

    # ------------------------------------------------------------------
    # Scalar lookups
    # ------------------------------------------------------------------
    def contains(self, flat: int, line: int) -> bool:
        return (flat * self._line_span + line) in self._dir

    def flags_of(self, flat: int, line: int) -> int | None:
        """Flags of a resident line, or None if absent (no LRU update)."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            return None
        return int(self.flags[flat * self.ways + way])

    def size(self, flat: int) -> int:
        """Number of resident lines in a set."""
        return self._size[flat]

    def io_count(self, flat: int) -> int:
        """Number of resident I/O-origin lines in a set."""
        return self._n_io[flat]

    def cpu_count(self, flat: int) -> int:
        """Number of resident CPU-origin lines in a set."""
        return self._size[flat] - self._n_io[flat]

    # ------------------------------------------------------------------
    # Scalar mutations
    # ------------------------------------------------------------------
    def touch(self, flat: int, line: int, set_dirty: bool = False) -> bool:
        """Access a line; True on hit (stamps it MRU, optionally dirties)."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            return False
        idx = flat * self.ways + way
        self._tick += 1
        self.stamps[idx] = self._tick
        if set_dirty:
            self.flags[idx] |= LINE_DIRTY
        return True

    def insert(self, flat: int, line: int, flags: int) -> tuple[int, int] | None:
        """Insert a new line as MRU, evicting the set's LRU line if full.

        Returns the evicted ``(line, flags)`` or None.  The caller is
        responsible for the line not already being present — same contract
        as the legacy ``CacheSet.insert``.
        """
        evicted = None
        if self._size[flat] >= self.ways:
            evicted = self.evict_lru(flat)
        base = flat * self.ways
        # Find a free way: tags slice scan (size < ways guarantees one).
        row = self.tags[base : base + self.ways]
        way = int(np.argmin(row))  # empty ways hold -1 == the row minimum
        if row[way] != -1:  # pragma: no cover - guarded by size bookkeeping
            raise RuntimeError(f"set {flat} full despite size {self._size[flat]}")
        idx = base + way
        self.tags[idx] = line
        self.flags[idx] = flags
        self._tick += 1
        self.stamps[idx] = self._tick
        self._dir[flat * self._line_span + line] = way
        self._size[flat] += 1
        if flags & LINE_IO:
            self._n_io[flat] += 1
        return evicted

    def evict_lru(self, flat: int) -> tuple[int, int]:
        """Evict and return the least recently used line of a set."""
        if not self._size[flat]:
            raise LookupError("evict_lru on empty set")
        base = flat * self.ways
        stamps = self.stamps[base : base + self.ways]
        if self._size[flat] == self.ways:
            way = int(np.argmin(stamps))
        else:
            # Skip empty ways (stamp irrelevant): pick min among occupied.
            row = self.tags[base : base + self.ways]
            occupied = row != -1
            way = int(np.where(occupied, stamps, np.iinfo(np.int64).max).argmin())
        return self._drop(flat, base + way)

    def insert_in(
        self, flat: int, line: int, flags: int, lo: int, hi: int
    ) -> tuple[int, int] | None:
        """Insert as MRU using only ways ``[lo, hi)`` — the skewed backend's
        candidate-way restriction.  Evicts the range's LRU line if the
        range is full; returns the evicted ``(line, flags)`` or None.
        """
        base = flat * self.ways
        row = self.tags[base + lo : base + hi]
        evicted = None
        if (row != -1).all():
            evicted = self.evict_lru_in(flat, lo, hi)
            row = self.tags[base + lo : base + hi]
        way = lo + int(np.argmin(row))  # empty ways hold -1, the row minimum
        idx = base + way
        self.tags[idx] = line
        self.flags[idx] = flags
        self._tick += 1
        self.stamps[idx] = self._tick
        self._dir[flat * self._line_span + line] = way
        self._size[flat] += 1
        if flags & LINE_IO:
            self._n_io[flat] += 1
        return evicted

    def evict_lru_in(self, flat: int, lo: int, hi: int) -> tuple[int, int]:
        """Evict the LRU line among ways ``[lo, hi)`` of a set."""
        base = flat * self.ways
        row = self.tags[base + lo : base + hi]
        occupied = row != -1
        if not occupied.any():
            raise LookupError("evict_lru_in on empty way range")
        stamps = np.where(
            occupied,
            self.stamps[base + lo : base + hi],
            np.iinfo(np.int64).max,
        )
        way = lo + int(stamps.argmin())
        return self._drop(flat, base + way)

    def evict_lru_of(self, flat: int, io: bool) -> tuple[int, int] | None:
        """Evict the LRU line whose origin matches ``io``; None if no match."""
        count = self._n_io[flat] if io else self._size[flat] - self._n_io[flat]
        if not count:
            return None
        base = flat * self.ways
        row = self.tags[base : base + self.ways]
        flag_row = self.flags[base : base + self.ways]
        match = (row != -1) & (((flag_row & LINE_IO) != 0) == io)
        stamps = np.where(match, self.stamps[base : base + self.ways], np.iinfo(np.int64).max)
        way = int(stamps.argmin())
        return self._drop(flat, base + way)

    def invalidate(self, flat: int, line: int) -> int | None:
        """Drop a line without eviction bookkeeping; return its flags."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            return None
        _line, flags = self._drop(flat, flat * self.ways + way)
        return flags

    def mark_io(self, flat: int, line: int) -> None:
        """Convert a resident line to a dirty I/O line and stamp it MRU."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            raise LookupError(f"line {line:#x} not resident")
        idx = flat * self.ways + way
        flags = int(self.flags[idx])
        if not (flags & LINE_IO):
            self._n_io[flat] += 1
        self.flags[idx] = flags | LINE_IO | LINE_DIRTY
        self._tick += 1
        self.stamps[idx] = self._tick

    def _drop(self, flat: int, idx: int) -> tuple[int, int]:
        """Remove the line at flat index ``idx``; return (line, flags)."""
        line = int(self.tags[idx])
        flags = int(self.flags[idx])
        self.tags[idx] = -1
        self.flags[idx] = 0
        self.stamps[idx] = 0
        del self._dir[flat * self._line_span + line]
        self._size[flat] -= 1
        if flags & LINE_IO:
            self._n_io[flat] -= 1
        return line, flags

    def reset(self) -> None:
        """Empty every set, keeping the tick counter monotonic.

        Used by epoch re-keying: the LLC snapshots resident lines,
        resets the arrays, and reinserts each line under the fresh
        mapping — stamps issued after the reset stay strictly above any
        issued before, so LRU order across the re-key remains coherent.
        """
        self.tags.fill(-1)
        self.flags.fill(0)
        self.stamps.fill(0)
        self._size = [0] * self.n_sets
        self._n_io = [0] * self.n_sets
        self._dir.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lines_in_lru_order(self, flat: int, io: bool | None = None) -> list[tuple[int, int]]:
        """Resident ``(line, flags)`` pairs, LRU first, optionally filtered
        to one origin — the order the legacy OrderedDict iterated in."""
        base = flat * self.ways
        out = []
        for way in range(self.ways):
            line = int(self.tags[base + way])
            if line == -1:
                continue
            flags = int(self.flags[base + way])
            if io is not None and bool(flags & LINE_IO) != io:
                continue
            out.append((int(self.stamps[base + way]), line, flags))
        out.sort()
        return [(line, flags) for _stamp, line, flags in out]

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------
    def lookup_many(
        self, flats: np.ndarray, lines: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised residency check.

        Returns ``(hit, way)`` arrays; ``way`` is only meaningful where
        ``hit`` is True.  Reflects the state *before* any of the accesses —
        callers must ensure no eviction can intervene (see
        :meth:`repro.cache.llc.SlicedLLC.access_many`).
        """
        rows = self.tags2[flats]
        eq = rows == lines[:, None]
        return eq.any(axis=1), eq.argmax(axis=1)

    def io_fill_many(
        self, flats: np.ndarray, lines: np.ndarray, io_cap: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vanilla-DDIO bulk fill of one line per set (``flats`` unique).

        Performs, for every ``(flat, line)`` pair, exactly what the scalar
        DDIO sequence does: a resident line is converted to a dirty I/O
        line and stamped MRU (``mark_io``); a non-resident line is inserted
        as ``LINE_IO | LINE_DIRTY``, evicting the set's LRU I/O line when
        the set already holds ``io_cap`` I/O lines, or the overall LRU line
        when the set is full.  Stamps are assigned in array order from the
        shared tick counter — each access consumes one tick and evictions
        consume none, so the batch is tick-for-tick identical to the
        sequential loop.

        ``flats`` must not contain duplicates: victim selection reads a
        snapshot of the rows, so two fills into the same set would not see
        each other.  Callers (``SlicedLLC.io_write_many``) fall back to the
        scalar path in that case.

        Returns ``(resident, evicted_lines, evicted_flags)``: a bool mask
        of accesses that were mark-io hits, and per-access evicted line
        address (``-1`` where nothing was evicted) with its flags.
        """
        k = len(flats)
        empty = np.zeros(0, dtype=np.int64)
        if not k:
            return np.zeros(0, dtype=bool), empty, empty
        ways = self.ways
        tag_rows = self.tags2[flats]
        flag_rows = self.flags2[flats]
        stamp_rows = self.stamps2[flats]
        eq = tag_rows == lines[:, None]
        resident = eq.any(axis=1)
        res_way = eq.argmax(axis=1)
        io_rows = (flag_rows & LINE_IO) != 0
        occupied = tag_rows != -1
        big = np.iinfo(np.int64).max
        io_counts = io_rows.sum(axis=1)
        # evict_lru_of(io=True) is a no-op on a set with no I/O lines, so
        # "at cap" only triggers an eviction when there is one to evict.
        at_cap = (io_counts >= io_cap) & (io_counts > 0)
        sizes = occupied.sum(axis=1)
        full = sizes >= ways
        victim_io = np.where(io_rows, stamp_rows, big).argmin(axis=1)
        victim_any = np.where(occupied, stamp_rows, big).argmin(axis=1)
        # First free way: empty slots hold -1, the row minimum.  When an
        # io-cap eviction happens in a non-full set, the scalar insert scans
        # for the first empty slot — which may precede the victim's.
        free_way = tag_rows.argmin(axis=1)
        way = np.where(
            resident,
            res_way,
            np.where(
                at_cap,
                np.where(full, victim_io, np.minimum(free_way, victim_io)),
                np.where(full, victim_any, free_way),
            ),
        )
        evict = ~resident & (at_cap | full)
        rows = np.arange(k)
        evict_way = np.where(at_cap, victim_io, victim_any)
        evicted_lines = np.where(evict, tag_rows[rows, evict_way], -1)
        evicted_flags = np.where(evict, flag_rows[rows, evict_way], 0)
        idx = flats * ways + way
        # Clear the evicted slots first: the victim slot differs from the
        # placement slot when the set had an earlier free way.
        ev_idx = flats[evict] * ways + evict_way[evict]
        self.tags[ev_idx] = -1
        self.flags[ev_idx] = 0
        self.stamps[ev_idx] = 0
        self.tags[idx] = lines
        # The only flag bits are IO and DIRTY, and the fill sets both — for
        # a resident line this equals ``old | IO | DIRTY``, i.e. mark_io.
        self.flags[idx] = LINE_IO | LINE_DIRTY
        t0 = self._tick + 1
        self._tick += k
        self.stamps[idx] = np.arange(t0, t0 + k, dtype=np.int64)
        # Directory and per-set counter bookkeeping (scalar, but tiny).
        span = self._line_span
        size_l = self._size
        n_io_l = self._n_io
        directory = self._dir
        was_io = io_rows[rows, res_way]
        for i, (flat, line, is_res) in enumerate(
            zip(flats.tolist(), lines.tolist(), resident.tolist())
        ):
            if is_res:
                if not was_io[i]:
                    n_io_l[flat] += 1
                continue
            ev = int(evicted_lines[i])
            if ev != -1:
                del directory[flat * span + ev]
                size_l[flat] -= 1
                if evicted_flags[i] & LINE_IO:
                    n_io_l[flat] -= 1
            directory[flat * span + line] = int(way[i])
            size_l[flat] += 1
            n_io_l[flat] += 1
        return resident, evicted_lines, evicted_flags

    def rx_burst_apply(
        self,
        flats: np.ndarray,
        lines: np.ndarray,
        kinds: np.ndarray,
        stamp_offs: np.ndarray,
        total_ops: int,
        io_cap: int,
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        """Apply a multi-frame rx burst's cache-op stream in rounds.

        The caller (the NIC's drained-burst path) has already flattened a
        sequence of received frames into one ordered stream of *footprint*
        ops — ``kinds`` 0 = DMA fill, 1 = CPU read, 2 = CPU write — where
        the driver's re-touches of lines its own frame just filled are
        *folded away*: they can never miss, so only their tick positions
        matter, and ``stamp_offs[i]`` carries the 0-based position of the
        **last** op on that line within the burst's ``total_ops`` ticks.
        Replaying the stream sequentially would therefore leave line ``i``
        stamped ``tick + 1 + stamp_offs[i]``.

        Per-set state is independent across sets and the only
        order-sensitive decisions (victim selection) are confined to one
        set, so the stream is applied in *rounds by within-set rank*: round
        ``r`` takes each set's ``r``-th op in temporal order.  Within a
        round every set appears at most once, which makes the vectorised
        hit/insert logic of :meth:`io_fill_many` exact against the live
        arrays — and since a round's stamps/tags land before the next
        round's gather, cross-op effects inside a set (a fill evicting a
        line a later op re-misses on, a second fill of the same line
        becoming a mark-io hit) resolve exactly as the sequential loop
        would.  Structural misses under the DDIO way cap make multi-miss
        sets the *common* case at line rate, so the kernel is total: it
        never declines.

        One op per set per round relies on the op stream listing same-set
        ops in ascending position order, which the NIC's burst layout
        guarantees (a frame's buffer lines occupy consecutive sets, skb
        ops follow every folded final, frames are appended in arrival
        order) — a stable sort on ``flats`` alone therefore yields the
        temporal rank.

        Returns ``(hit, evict_pos, evicted_lines, evicted_flags)``:
        per-op residency at its point in the stream (not pre-burst
        residency — a line inserted by an earlier op and re-accessed
        counts as the hit the sequential loop would see), plus the ops
        that evicted (``evict_pos`` indexes into the op arrays; all three
        are ``None`` when nothing was evicted).
        """
        ways = self.ways
        n = len(flats)
        t0 = self._tick
        base_stamp = t0 + 1
        # Rank ops within their set.  Sets referenced once (the vast
        # majority) need no ordering at all; only the duplicate subset is
        # stable-sorted, which is far cheaper than sorting the full burst.
        counts = np.bincount(flats, minlength=self.n_sets)
        dup_mask = counts[flats] > 1
        if dup_mask.any():
            dup_idx = np.flatnonzero(dup_mask)
            sorder = np.argsort(flats[dup_idx], kind="stable")
            sordered = dup_idx[sorder]
            sflats = flats[sordered]
            m = len(sordered)
            seq = np.arange(m)
            firsts = np.empty(m, dtype=bool)
            firsts[:1] = True
            firsts[1:] = sflats[1:] != sflats[:-1]
            rank_sub = seq - np.maximum.accumulate(np.where(firsts, seq, 0))
            n_rounds = int(rank_sub.max()) + 1
            rounds = [
                np.concatenate([np.flatnonzero(~dup_mask), sordered[firsts]])
            ]
            for r in range(1, n_rounds):
                rounds.append(sordered[rank_sub == r])
        else:
            rounds = [None]
        hit_all = np.empty(n, dtype=bool)
        ev_pos_parts: list[np.ndarray] = []
        ev_lines_parts: list[np.ndarray] = []
        ev_flags_parts: list[np.ndarray] = []
        big = np.iinfo(np.int64).max
        span = self._line_span
        directory = self._dir
        size_l = self._size
        n_io_l = self._n_io
        for sel in rounds:
            if sel is None:
                f, l, k = flats, lines, kinds
            else:
                f = flats[sel]
                l = lines[sel]
                k = kinds[sel]
            tag_rows = self.tags2[f]
            eq = tag_rows == l[:, None]
            way = eq.argmax(axis=1)
            # argmax returns 0 for an all-False row; one 1-D gather
            # distinguishes hits (cheaper than a row-wise ``any``).
            hit = tag_rows[np.arange(len(f)), way] == l
            if sel is None:
                hit_all = hit
            else:
                hit_all[sel] = hit
            if not hit.all():
                m_idx = np.flatnonzero(~hit)
                mflats = f[m_idx]
                mkinds = k[m_idx]
                trows = tag_rows[m_idx]
                frows = self.flags2[mflats]
                srows = self.stamps2[mflats]
                io_rows = (frows & LINE_IO) != 0
                occupied = trows != -1
                io_counts = io_rows.sum(axis=1)
                full = occupied.sum(axis=1) >= ways
                is_fill = mkinds == 0
                at_cap = is_fill & (io_counts >= io_cap) & (io_counts > 0)
                victim_io = np.where(io_rows, srows, big).argmin(axis=1)
                victim_any = np.where(occupied, srows, big).argmin(axis=1)
                free_way = trows.argmin(axis=1)
                way_m = np.where(
                    at_cap,
                    np.where(full, victim_io, np.minimum(free_way, victim_io)),
                    np.where(full, victim_any, free_way),
                )
                evict = at_cap | full
                rows_m = np.arange(len(m_idx))
                evict_way = np.where(at_cap, victim_io, victim_any)
                e_lines = np.where(evict, trows[rows_m, evict_way], -1)
                e_flags = np.where(evict, frows[rows_m, evict_way], 0)
                ev_sel = np.flatnonzero(evict)
                ev_slots = mflats[ev_sel] * ways + evict_way[ev_sel]
                self.tags[ev_slots] = -1
                self.flags[ev_slots] = 0
                self.stamps[ev_slots] = 0
                ev_io = (e_flags & LINE_IO) != 0
                for flat, line, evl, eio, w, isf in zip(
                    mflats.tolist(),
                    l[m_idx].tolist(),
                    e_lines.tolist(),
                    ev_io.tolist(),
                    way_m.tolist(),
                    is_fill.tolist(),
                ):
                    if evl != -1:
                        del directory[flat * span + evl]
                        size_l[flat] -= 1
                        if eio:
                            n_io_l[flat] -= 1
                    directory[flat * span + line] = w
                    size_l[flat] += 1
                    if isf:
                        n_io_l[flat] += 1
                way[m_idx] = way_m
                if len(ev_sel):
                    ev_pos_parts.append(
                        m_idx[ev_sel] if sel is None else sel[m_idx[ev_sel]]
                    )
                    ev_lines_parts.append(e_lines[ev_sel])
                    ev_flags_parts.append(e_flags[ev_sel])
            idx = f * ways + way
            # A fill converts a resident CPU line to I/O (mark_io);
            # within a round each set — hence each line — appears once,
            # and later rounds re-read the flags, so no dedup is needed.
            rf_idx = idx[hit & (k == 0)]
            not_io = (self.flags[rf_idx] & LINE_IO) == 0
            if not_io.any():
                for slot in rf_idx[not_io].tolist():
                    n_io_l[slot // ways] += 1
            # Fills OR in IO|DIRTY, writes OR in DIRTY; reads leave flags
            # untouched.  Freshly inserted slots were cleared, so the OR
            # lands exactly the scalar insert's flags there too.
            nonread = k != 1
            nr_idx = idx[nonread]
            bits = np.where(
                k[nonread] == 0, LINE_IO | LINE_DIRTY, LINE_DIRTY
            ).astype(np.uint8)
            self.flags[nr_idx] = self.flags[nr_idx] | bits
            self.tags[idx] = l
            offs = stamp_offs if sel is None else stamp_offs[sel]
            self.stamps[idx] = offs + base_stamp
        self._tick = t0 + total_ops
        if ev_pos_parts:
            return (
                hit_all,
                np.concatenate(ev_pos_parts),
                np.concatenate(ev_lines_parts),
                np.concatenate(ev_flags_parts),
            )
        return hit_all, None, None, None

    def touch_many(
        self,
        flats: np.ndarray,
        ways: np.ndarray,
        set_dirty: bool = False,
    ) -> None:
        """Bulk MRU-stamp resident lines at ``(flats, ways)`` in order.

        Stamps are assigned in array order from the shared tick counter, so
        within any one set the relative recency matches a sequential touch
        of the same accesses.  Duplicate positions are fine: numpy fancy
        assignment keeps the *last* stamp, which is what sequential
        touching would do.
        """
        n = len(flats)
        if not n:
            return
        idx = flats * self.ways + ways
        t0 = self._tick + 1
        self._tick += n
        self.stamps[idx] = np.arange(t0, t0 + n, dtype=np.int64)
        if set_dirty:
            self.flags[idx] |= LINE_DIRTY
