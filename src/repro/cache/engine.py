"""Packed array-backed storage for every set of the sliced LLC.

The legacy model kept one ``OrderedDict`` per cache set (see
:mod:`repro.cache.legacy`), which makes every simulated access a Python
dict operation and every :class:`~repro.core.machine.Machine` construction
an allocation of 16384 dicts.  :class:`CacheEngine` replaces that with flat
arrays shared by *all* sets:

* ``tags``   — int64, ``n_sets * ways``; the full line address (which is
  also the tag), ``-1`` for an empty way;
* ``flags``  — uint8, per-way ``LINE_IO`` / ``LINE_DIRTY`` bits;
* ``stamps`` — int64, per-way last-touch tick from a single monotonic
  counter.  Within one set, stamps are unique and strictly ordered by
  recency, so "LRU" is "minimum stamp" — exactly the order the legacy
  ``OrderedDict`` maintained structurally.

A single Python dict (``(set, line) -> way``, encoded as one integer key)
is kept as a directory for O(1) scalar lookups, and small Python lists
track per-set occupancy and I/O-line counts.  The numpy arrays are the
ground truth that the *batched* kernels operate on:
:meth:`lookup_many`/:meth:`touch_many` resolve and touch thousands of
accesses with a handful of vectorised operations, which is what lets a
PRIME+PROBE sweep issue one engine call instead of one Python call per
line.

Semantics are differentially tested against the legacy model
(``tests/test_engine_equivalence.py``): identical eviction decisions,
stats attribution and probe results on randomized CPU/DMA/flush/partition
traces.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cacheset import LINE_DIRTY, LINE_IO


class CacheEngine:
    """Flat-array storage and LRU policy for ``n_sets`` x ``ways`` lines.

    All methods take a *flat set id* (slice-major, as produced by
    :meth:`repro.cache.llc.SlicedLLC.flat_set_of`) plus a line address.
    The engine is policy-free with respect to *which* victim origin to
    choose — callers (the DDIO path, the partition defense) pick victims
    via :meth:`evict_lru` / :meth:`evict_lru_of`.
    """

    __slots__ = (
        "n_sets",
        "ways",
        "tags",
        "flags",
        "stamps",
        "tags2",
        "flags2",
        "stamps2",
        "_size",
        "_n_io",
        "_dir",
        "_tick",
        "_line_span",
    )

    def __init__(self, n_sets: int, ways: int) -> None:
        if n_sets <= 0:
            raise ValueError(f"n_sets must be positive, got {n_sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.n_sets = n_sets
        self.ways = ways
        total = n_sets * ways
        self.tags = np.full(total, -1, dtype=np.int64)
        self.flags = np.zeros(total, dtype=np.uint8)
        self.stamps = np.zeros(total, dtype=np.int64)
        # 2-D views over the same memory, for row gathers in batched ops.
        self.tags2 = self.tags.reshape(n_sets, ways)
        self.flags2 = self.flags.reshape(n_sets, ways)
        self.stamps2 = self.stamps.reshape(n_sets, ways)
        self._size = [0] * n_sets
        self._n_io = [0] * n_sets
        #: Directory: (flat * line_span + line) -> way.  ``line_span`` is a
        #: power of two above any line address so keys never collide.
        self._dir: dict[int, int] = {}
        self._tick = 0
        self._line_span = 1 << 58

    # ------------------------------------------------------------------
    # Key encoding
    # ------------------------------------------------------------------
    def _key(self, flat: int, line: int) -> int:
        return flat * self._line_span + line

    # ------------------------------------------------------------------
    # Scalar lookups
    # ------------------------------------------------------------------
    def contains(self, flat: int, line: int) -> bool:
        return (flat * self._line_span + line) in self._dir

    def flags_of(self, flat: int, line: int) -> int | None:
        """Flags of a resident line, or None if absent (no LRU update)."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            return None
        return int(self.flags[flat * self.ways + way])

    def size(self, flat: int) -> int:
        """Number of resident lines in a set."""
        return self._size[flat]

    def io_count(self, flat: int) -> int:
        """Number of resident I/O-origin lines in a set."""
        return self._n_io[flat]

    def cpu_count(self, flat: int) -> int:
        """Number of resident CPU-origin lines in a set."""
        return self._size[flat] - self._n_io[flat]

    # ------------------------------------------------------------------
    # Scalar mutations
    # ------------------------------------------------------------------
    def touch(self, flat: int, line: int, set_dirty: bool = False) -> bool:
        """Access a line; True on hit (stamps it MRU, optionally dirties)."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            return False
        idx = flat * self.ways + way
        self._tick += 1
        self.stamps[idx] = self._tick
        if set_dirty:
            self.flags[idx] |= LINE_DIRTY
        return True

    def insert(self, flat: int, line: int, flags: int) -> tuple[int, int] | None:
        """Insert a new line as MRU, evicting the set's LRU line if full.

        Returns the evicted ``(line, flags)`` or None.  The caller is
        responsible for the line not already being present — same contract
        as the legacy ``CacheSet.insert``.
        """
        evicted = None
        if self._size[flat] >= self.ways:
            evicted = self.evict_lru(flat)
        base = flat * self.ways
        # Find a free way: tags slice scan (size < ways guarantees one).
        row = self.tags[base : base + self.ways]
        way = int(np.argmin(row))  # empty ways hold -1 == the row minimum
        if row[way] != -1:  # pragma: no cover - guarded by size bookkeeping
            raise RuntimeError(f"set {flat} full despite size {self._size[flat]}")
        idx = base + way
        self.tags[idx] = line
        self.flags[idx] = flags
        self._tick += 1
        self.stamps[idx] = self._tick
        self._dir[flat * self._line_span + line] = way
        self._size[flat] += 1
        if flags & LINE_IO:
            self._n_io[flat] += 1
        return evicted

    def evict_lru(self, flat: int) -> tuple[int, int]:
        """Evict and return the least recently used line of a set."""
        if not self._size[flat]:
            raise LookupError("evict_lru on empty set")
        base = flat * self.ways
        stamps = self.stamps[base : base + self.ways]
        if self._size[flat] == self.ways:
            way = int(np.argmin(stamps))
        else:
            # Skip empty ways (stamp irrelevant): pick min among occupied.
            row = self.tags[base : base + self.ways]
            occupied = row != -1
            way = int(np.where(occupied, stamps, np.iinfo(np.int64).max).argmin())
        return self._drop(flat, base + way)

    def evict_lru_of(self, flat: int, io: bool) -> tuple[int, int] | None:
        """Evict the LRU line whose origin matches ``io``; None if no match."""
        count = self._n_io[flat] if io else self._size[flat] - self._n_io[flat]
        if not count:
            return None
        base = flat * self.ways
        row = self.tags[base : base + self.ways]
        flag_row = self.flags[base : base + self.ways]
        match = (row != -1) & (((flag_row & LINE_IO) != 0) == io)
        stamps = np.where(match, self.stamps[base : base + self.ways], np.iinfo(np.int64).max)
        way = int(stamps.argmin())
        return self._drop(flat, base + way)

    def invalidate(self, flat: int, line: int) -> int | None:
        """Drop a line without eviction bookkeeping; return its flags."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            return None
        _line, flags = self._drop(flat, flat * self.ways + way)
        return flags

    def mark_io(self, flat: int, line: int) -> None:
        """Convert a resident line to a dirty I/O line and stamp it MRU."""
        way = self._dir.get(flat * self._line_span + line)
        if way is None:
            raise LookupError(f"line {line:#x} not resident")
        idx = flat * self.ways + way
        flags = int(self.flags[idx])
        if not (flags & LINE_IO):
            self._n_io[flat] += 1
        self.flags[idx] = flags | LINE_IO | LINE_DIRTY
        self._tick += 1
        self.stamps[idx] = self._tick

    def _drop(self, flat: int, idx: int) -> tuple[int, int]:
        """Remove the line at flat index ``idx``; return (line, flags)."""
        line = int(self.tags[idx])
        flags = int(self.flags[idx])
        self.tags[idx] = -1
        self.flags[idx] = 0
        self.stamps[idx] = 0
        del self._dir[flat * self._line_span + line]
        self._size[flat] -= 1
        if flags & LINE_IO:
            self._n_io[flat] -= 1
        return line, flags

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lines_in_lru_order(self, flat: int, io: bool | None = None) -> list[tuple[int, int]]:
        """Resident ``(line, flags)`` pairs, LRU first, optionally filtered
        to one origin — the order the legacy OrderedDict iterated in."""
        base = flat * self.ways
        out = []
        for way in range(self.ways):
            line = int(self.tags[base + way])
            if line == -1:
                continue
            flags = int(self.flags[base + way])
            if io is not None and bool(flags & LINE_IO) != io:
                continue
            out.append((int(self.stamps[base + way]), line, flags))
        out.sort()
        return [(line, flags) for _stamp, line, flags in out]

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------
    def lookup_many(
        self, flats: np.ndarray, lines: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised residency check.

        Returns ``(hit, way)`` arrays; ``way`` is only meaningful where
        ``hit`` is True.  Reflects the state *before* any of the accesses —
        callers must ensure no eviction can intervene (see
        :meth:`repro.cache.llc.SlicedLLC.access_many`).
        """
        rows = self.tags2[flats]
        eq = rows == lines[:, None]
        return eq.any(axis=1), eq.argmax(axis=1)

    def touch_many(
        self,
        flats: np.ndarray,
        ways: np.ndarray,
        set_dirty: bool = False,
    ) -> None:
        """Bulk MRU-stamp resident lines at ``(flats, ways)`` in order.

        Stamps are assigned in array order from the shared tick counter, so
        within any one set the relative recency matches a sequential touch
        of the same accesses.  Duplicate positions are fine: numpy fancy
        assignment keeps the *last* stamp, which is what sequential
        touching would do.
        """
        n = len(flats)
        if not n:
            return
        idx = flats * self.ways + ways
        t0 = self._tick + 1
        self._tick += n
        self.stamps[idx] = np.arange(t0, t0 + n, dtype=np.int64)
        if set_dirty:
            self.flags[idx] |= LINE_DIRTY
