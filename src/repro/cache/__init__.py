"""Last-level cache model: slices, complex indexing, DDIO, partitioning.

This is the substrate the whole attack runs on.  It models the parts of an
Intel server LLC that the paper's analysis depends on:

* physically-indexed, set-associative, **sliced** organisation with the
  complex (XOR) slice-selection hash of Fig. 2
  (:mod:`repro.cache.slicehash`);
* LRU-ordered sets with per-line origin (CPU vs I/O) and dirty state
  (:mod:`repro.cache.cacheset`);
* **DDIO** write allocation — inbound DMA allocates in the LLC, limited to
  two ways per set but still able to evict CPU lines
  (:meth:`repro.cache.llc.SlicedLLC.io_write`);
* the paper's **adaptive I/O partitioning** defense hooks (the partition
  object lives in :mod:`repro.defense.partitioning` and plugs in here);
* a small L1+LLC hierarchy used by the performance model
  (:mod:`repro.cache.hierarchy`).
"""

from repro.cache.cacheset import CacheSet, LINE_DIRTY, LINE_IO
from repro.cache.hierarchy import CacheHierarchy, L1Cache
from repro.cache.llc import SlicedLLC
from repro.cache.slicehash import IntelComplexHash, ModuloSliceHash, SliceHash
from repro.cache.stats import CacheStats

__all__ = [
    "CacheSet",
    "LINE_DIRTY",
    "LINE_IO",
    "CacheHierarchy",
    "L1Cache",
    "SlicedLLC",
    "IntelComplexHash",
    "ModuloSliceHash",
    "SliceHash",
    "CacheStats",
]
