"""Sliced, physically-indexed last-level cache with DDIO write allocation.

The LLC is the meeting point of the attack: inbound packets are DMA'd into
it by DDIO, the spy's eviction sets live in it, and the defense partitions
it.  Three access paths exist:

* :meth:`SlicedLLC.cpu_access` — loads/stores from a CPU process (spy,
  victim, driver).  Misses fill a CPU-origin line.
* :meth:`SlicedLLC.io_write` — inbound DMA.  With DDIO enabled this
  allocates directly in the cache (at most ``ddio.write_allocate_ways`` I/O
  lines per set, but allocations may still evict CPU lines); with DDIO
  disabled it goes to DRAM and invalidates any cached copy.
* :meth:`SlicedLLC.flush` — CLFLUSH, used by some attack variants.

Since the engine refactor, :class:`SlicedLLC` is a thin *policy façade*
over :class:`repro.cache.engine.CacheEngine`, which holds every set's
tags, flag bits and LRU stamps in flat packed arrays.  The façade owns
what the engine deliberately does not: DDIO way caps, partition
victim-selection hooks, telemetry hooks, :class:`CacheStats` attribution
and DRAM-traffic accounting.  On top of the scalar paths it exposes
:meth:`access_many`, the batched kernel PRIME+PROBE sweeps ride
(see PERFORMANCE.md), and a memoized per-line slice/set decomposition so
the complex hash is evaluated once per line ever, not once per access.

An optional *partition* object (the Section VII defense) takes over victim
selection; see :mod:`repro.defense.partitioning`.  The pre-engine model is
preserved verbatim in :mod:`repro.cache.legacy` for differential testing.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.cache.backends import IndexMapping, make_mapping
from repro.cache.cacheset import LINE_DIRTY, LINE_IO
from repro.cache.engine import CacheEngine
from repro.cache.slicehash import IntelComplexHash, SliceHash
from repro.cache.stats import CacheStats
from repro.core.config import CacheGeometry, DDIOConfig, TimingParams
from repro.mem.physmem import DramTraffic


class SetView:
    """A per-set façade over the packed engine, API-compatible with the
    legacy :class:`~repro.cache.cacheset.CacheSet`.

    Consumers that reason about one set at a time — the L1 hierarchy's
    dirty-writeback touch, tests, introspection — keep working unchanged;
    every operation executes on the shared flat arrays.
    """

    __slots__ = ("engine", "flat", "ways")

    def __init__(self, engine: CacheEngine, flat: int) -> None:
        self.engine = engine
        self.flat = flat
        self.ways = engine.ways

    def __len__(self) -> int:
        return self.engine.size(self.flat)

    def __contains__(self, line_addr: int) -> bool:
        return self.engine.contains(self.flat, line_addr)

    @property
    def io_count(self) -> int:
        return self.engine.io_count(self.flat)

    @property
    def cpu_count(self) -> int:
        return self.engine.cpu_count(self.flat)

    @property
    def lines(self) -> dict[int, int]:
        """line -> flags in LRU-to-MRU order (recency order, like legacy)."""
        return dict(self.engine.lines_in_lru_order(self.flat))

    def touch(self, line_addr: int, set_dirty: bool = False) -> bool:
        return self.engine.touch(self.flat, line_addr, set_dirty=set_dirty)

    def flags_of(self, line_addr: int) -> int | None:
        return self.engine.flags_of(self.flat, line_addr)

    def insert(self, line_addr: int, flags: int) -> tuple[int, int] | None:
        return self.engine.insert(self.flat, line_addr, flags)

    def evict_lru(self) -> tuple[int, int]:
        return self.engine.evict_lru(self.flat)

    def evict_lru_of(self, io: bool) -> tuple[int, int] | None:
        return self.engine.evict_lru_of(self.flat, io)

    def invalidate(self, line_addr: int) -> int | None:
        return self.engine.invalidate(self.flat, line_addr)

    def mark_io(self, line_addr: int) -> None:
        self.engine.mark_io(self.flat, line_addr)

    def occupancy(self) -> tuple[int, int]:
        return self.cpu_count, self.io_count


class _SetViews:
    """Lazy indexable sequence of :class:`SetView` (``llc.sets[flat]``)."""

    __slots__ = ("engine",)

    def __init__(self, engine: CacheEngine) -> None:
        self.engine = engine

    def __len__(self) -> int:
        return self.engine.n_sets

    def __getitem__(self, flat: int) -> SetView:
        if not -self.engine.n_sets <= flat < self.engine.n_sets:
            raise IndexError(flat)
        return SetView(self.engine, flat % self.engine.n_sets)

    def __iter__(self) -> Iterator[SetView]:
        for flat in range(self.engine.n_sets):
            yield SetView(self.engine, flat)


class SlicedLLC:
    """The shared last-level cache of the simulated machine."""

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        ddio: DDIOConfig | None = None,
        timing: TimingParams | None = None,
        traffic: DramTraffic | None = None,
        slice_hash: SliceHash | None = None,
        backend: str | IndexMapping = "modulo",
        seed: int = 0,
    ) -> None:
        self.geometry = geometry or CacheGeometry()
        self.ddio = ddio or DDIOConfig()
        self.timing = timing or TimingParams()
        self.traffic = traffic or DramTraffic()
        self.slice_hash = slice_hash or IntelComplexHash(self.geometry.n_slices)
        if self.slice_hash.n_slices != self.geometry.n_slices:
            raise ValueError(
                "slice hash built for a different slice count: "
                f"{self.slice_hash.n_slices} != {self.geometry.n_slices}"
            )
        #: Index backend: how a line address becomes a flat set id (and,
        #: for skewed designs, which ways are candidate victims).  See
        #: :mod:`repro.cache.backends`.
        if isinstance(backend, IndexMapping):
            self.mapping = backend
        else:
            self.mapping = make_mapping(
                backend, self.geometry, self.slice_hash, seed=seed
            )
        #: Epoch counter, bumped on every re-key.  Consumers holding
        #: decomposition caches may key on it; the access paths below do
        #: not need to (stale ``decomp`` hints are ignored when the
        #: mapping is epochal).
        self.mapping_epoch = 0
        self._epochal = self.mapping.epoch_period > 0
        self._epoch_period = self.mapping.epoch_period
        self._access_count = 0
        self._skewed = self.mapping.n_partitions > 1
        if self._skewed and self.geometry.ways % self.mapping.n_partitions:
            raise ValueError(
                f"backend partitions ({self.mapping.n_partitions}) must "
                f"divide ways ({self.geometry.ways})"
            )
        self._part_ways = self.geometry.ways // self.mapping.n_partitions
        self.engine = CacheEngine(self.geometry.total_sets, self.geometry.ways)
        self.sets = _SetViews(self.engine)
        self.stats = CacheStats()
        #: Observability: set by Machine when telemetry is installed; every
        #: hook below guards on ``is not None`` so the untelemetered hot
        #: path is unchanged.
        self.telemetry = None
        #: Defense hook: when set, victim selection is delegated to the
        #: partition (see repro.defense.partitioning.AdaptivePartition).
        self.partition = None
        #: Optional callback fired on every I/O fill with the flat set id —
        #: used by experiments to record ground-truth packet placement.
        self.io_fill_hook: Callable[[int], None] | None = None
        #: Optional callback fired with the line address of every line that
        #: leaves the LLC — used for inclusive back-invalidation of L1s.
        self.evict_hook: Callable[[int], None] | None = None
        self._offset_bits = self.geometry.offset_bits
        self._set_mask = self.geometry.sets_per_slice - 1
        #: Memoized decomposition: line address -> flat set id.  The slice
        #: hash is pure, so each line is hashed at most once per LLC; every
        #: access path below goes through this memo, which removes the
        #: repeated ``slice_of`` evaluations the legacy ``flat_set_of``
        #: performed on the cpu_access/io_write hot paths.
        self._flat_memo: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def set_index_of(self, paddr: int) -> int:
        """Set index within a slice (bits 6..16 for the default geometry)."""
        return (paddr >> self._offset_bits) & self._set_mask

    def slice_of(self, paddr: int) -> int:
        """Slice id from the complex hash."""
        return self.slice_hash.slice_of(paddr)

    def flat_set_of(self, paddr: int) -> int:
        """Flat set id under the active index backend (memoized per line;
        the memo is cleared whenever an epochal backend re-keys)."""
        line = paddr >> self._offset_bits
        flat = self._flat_memo.get(line)
        if flat is None:
            flat = self.mapping.flat_of(paddr, line)
            self._flat_memo[line] = flat
        return flat

    def line_addr_of(self, paddr: int) -> int:
        """Line-aligned address (tag identity used inside sets)."""
        return paddr >> self._offset_bits

    def decompose_many(self, paddrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ``(flat_set, line)`` decomposition of an address array.

        One numpy pass through the slice hash — no per-address Python.
        Under an epochal backend the per-line memo fronts the mapping:
        batched callers cannot cache decompositions across calls there
        (a re-key would stale them), so without the memo every probe
        sweep would re-run the keyed permutation over the same handful
        of lines thousands of times per epoch.
        """
        paddrs = np.asarray(paddrs, dtype=np.int64)
        lines = paddrs >> self._offset_bits
        if self._epochal:
            memo = self._flat_memo
            line_list = lines.tolist()
            flats = np.empty(len(line_list), dtype=np.int64)
            missing = []
            for i, line in enumerate(line_list):
                flat = memo.get(line)
                if flat is None:
                    missing.append(i)
                else:
                    flats[i] = flat
            if missing:
                idx = np.asarray(missing, dtype=np.intp)
                fresh = self.mapping.flats_of_many(paddrs[idx], lines[idx])
                flats[idx] = fresh
                for i, flat in zip(missing, fresh.tolist()):
                    memo[line_list[i]] = flat
            return flats, lines
        return self.mapping.flats_of_many(paddrs, lines), lines

    # ------------------------------------------------------------------
    # Epoch re-keying (epochal backends only)
    # ------------------------------------------------------------------
    def accesses_until_rekey(self) -> int:
        """Accesses left before the next re-key fires (for introspection)."""
        if not self._epochal:
            raise RuntimeError("mapping has no epochs")
        return max(0, self._epoch_period - self._access_count)

    def _rekey(self, now: int) -> None:
        """Install fresh index keys and remap every resident line.

        A real CEASER relocates lines gradually across the epoch; the
        model applies the whole remap atomically at the epoch boundary,
        with exact accounting: each resident line is reinserted under
        the new mapping in LRU-to-MRU order (so relative recency
        survives into the new sets), and a line whose new set is
        already full evicts that set's LRU — the displaced line is
        *dropped* (written back if dirty).  ``MappingStats`` records
        remapped vs dropped counts per epoch; the property suite pins
        that they sum to the pre-re-key resident population.
        """
        if self.partition is not None:
            raise RuntimeError(
                "epoch re-keying cannot run with the partition defense "
                "installed (victim policies conflict); use a static backend "
                "or epoch=0"
            )
        engine = self.engine
        occ = np.flatnonzero(engine.tags != -1)
        lines = engine.tags[occ]
        flags = engine.flags[occ]
        order = np.argsort(engine.stamps[occ], kind="stable")
        self.mapping.advance_epoch()
        self.mapping_epoch += 1
        self._flat_memo.clear()
        engine.reset()
        stats = self.mapping.stats
        stats.epochs += 1
        shift = self._offset_bits
        skewed = self._skewed
        dropped = 0
        # One vectorised pass maps every resident line under the fresh
        # keys (and seeds the memo wholesale) — the reinsert loop below
        # then only pays for engine bookkeeping, not per-line hashing.
        new_flats = self.mapping.flats_of_many(lines << shift, lines)
        self._flat_memo.update(zip(lines.tolist(), new_flats.tolist()))
        for i in order.tolist():
            line = int(lines[i])
            line_flags = int(flags[i])
            flat = int(new_flats[i])
            if skewed:
                evicted = engine.insert_in(
                    flat, line, line_flags, *self._way_range(line)
                )
            else:
                evicted = engine.insert(flat, line, line_flags)
            if evicted is not None:
                dropped += 1
                ev_line, ev_flags = evicted
                self.stats.invalidations += 1
                if self.evict_hook is not None:
                    self.evict_hook(ev_line)
                if ev_flags & LINE_DIRTY:
                    self.stats.writebacks += 1
                    self.traffic.writes += 1
        stats.lines_remapped += len(occ) - dropped
        stats.lines_dropped += dropped

    # ------------------------------------------------------------------
    # CPU path
    # ------------------------------------------------------------------
    def cpu_access(self, paddr: int, write: bool = False, now: int = 0) -> tuple[bool, int]:
        """Access ``paddr`` from a CPU; returns ``(hit, latency_cycles)``."""
        if self._epochal:
            if self._access_count >= self._epoch_period:
                self._rekey(now)
                self._access_count = 0
            self._access_count += 1
        line = paddr >> self._offset_bits
        flat = self._flat_memo.get(line)
        if flat is None:
            flat = self.flat_set_of(paddr)
        if self.engine.touch(flat, line, set_dirty=write):
            self.stats.cpu_hits += 1
            return True, self.timing.llc_hit_latency
        self.stats.cpu_misses += 1
        self.traffic.reads += 1
        self._fill_cpu(flat, line, write, now)
        return False, self.timing.llc_miss_latency

    def _way_range(self, line: int) -> tuple[int, int]:
        """Candidate-way range of a line under a skewed backend."""
        p = self.mapping.partition_of(line)
        return p * self._part_ways, (p + 1) * self._part_ways

    def _fill_cpu(self, flat: int, line: int, write: bool, now: int) -> None:
        flags = LINE_DIRTY if write else 0
        if self.partition is not None:
            # The partition defense owns victim selection outright; a
            # skewed backend's way restriction is superseded by it.
            evicted = self.partition.victim_for_cpu_fill(self, flat, now)
            if evicted is not None:
                self._retire(evicted, by_io=False)
            self.engine.insert(flat, line, flags)
            self.partition.after_fill(self, flat, now)
            return
        if self._skewed:
            evicted = self.engine.insert_in(flat, line, flags, *self._way_range(line))
        else:
            evicted = self.engine.insert(flat, line, flags)
        if evicted is not None:
            self._retire(evicted, by_io=False)

    def access_many(
        self,
        paddrs: np.ndarray,
        write: bool = False,
        now: int = 0,
        decomp: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`cpu_access`: returns ``(hits, latencies)`` arrays.

        One engine call resolves every address; sets in which every
        accessed line is already resident are touched with vectorised
        kernels, and only sets containing at least one miss fall back to
        the exact scalar path (in original access order, so per-set
        behaviour — eviction decisions, LRU order, stats — is identical to
        issuing the accesses one by one).  Accesses to different sets are
        independent, so the cross-set reordering this implies is
        unobservable; the differential harness pins that equivalence.

        ``decomp`` lets callers that replay a fixed address sequence
        (eviction-set sweeps) pass the cached ``(flats, lines)``
        decomposition instead of re-hashing every call.  Under an
        epochal backend the hint is ignored — a cached decomposition
        may predate a re-key — and a batch a re-key would land inside
        is replayed through the exact scalar path, so the re-key fires
        at the precise access it would in a sequential loop.
        """
        paddrs = np.asarray(paddrs, dtype=np.int64)
        n = len(paddrs)
        hit_latency = self.timing.llc_hit_latency
        if n == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
        epochal = self._epochal
        if epochal:
            decomp = None
            if self._access_count >= self._epoch_period:
                self._rekey(now)
                self._access_count = 0
            if n > self._epoch_period - self._access_count:
                # Mid-batch re-key: interleaving is observable, go scalar.
                hits = np.empty(n, dtype=bool)
                lats = np.empty(n, dtype=np.int64)
                for i, paddr in enumerate(paddrs.tolist()):
                    hits[i], lats[i] = self.cpu_access(paddr, write=write, now=now)
                return hits, lats
            # No re-key can land inside this batch.  The all-hit and
            # clean-set paths below count their accesses explicitly; the
            # miss-set fallback counts through cpu_access itself.
        flats, lines = decomp if decomp is not None else self.decompose_many(paddrs)
        hit, ways = self.engine.lookup_many(flats, lines)
        if hit.all():
            if epochal:
                self._access_count += n
            self.engine.touch_many(flats, ways, set_dirty=write)
            self.stats.cpu_hits += n
            return (
                np.ones(n, dtype=bool),
                np.full(n, hit_latency, dtype=np.int64),
            )
        hits = np.empty(n, dtype=bool)
        lats = np.empty(n, dtype=np.int64)
        miss_sets = np.unique(flats[~hit])
        scalar = np.isin(flats, miss_sets)
        for i in np.flatnonzero(scalar):
            hits[i], lats[i] = self.cpu_access(int(paddrs[i]), write=write, now=now)
        clean = ~scalar
        n_clean = int(clean.sum())
        if n_clean:
            if epochal:
                self._access_count += n_clean
            self.engine.touch_many(flats[clean], ways[clean], set_dirty=write)
            self.stats.cpu_hits += n_clean
            hits[clean] = True
            lats[clean] = hit_latency
        return hits, lats

    # ------------------------------------------------------------------
    # I/O (DMA) path
    # ------------------------------------------------------------------
    def io_write(self, paddr: int, now: int = 0) -> None:
        """Inbound DMA write of one cache line."""
        if self._epochal:
            if self._access_count >= self._epoch_period:
                self._rekey(now)
                self._access_count = 0
            self._access_count += 1
        engine = self.engine
        line = paddr >> self._offset_bits
        flat = self._flat_memo.get(line)
        if flat is None:
            flat = self.flat_set_of(paddr)
        if not self.ddio.enabled:
            # Direct to DRAM; snoop-invalidate any cached copy.
            self.traffic.writes += 1
            if engine.invalidate(flat, line) is not None:
                self.stats.invalidations += 1
                if self.evict_hook is not None:
                    self.evict_hook(line)
                if self.partition is not None:
                    self.partition.after_fill(self, flat, now)
            return
        if engine.contains(flat, line):
            engine.mark_io(flat, line)
            self.stats.io_hits += 1
            if self.partition is not None:
                self.partition.after_fill(self, flat, now)
            return
        self.stats.io_fills += 1
        if self.io_fill_hook is not None:
            self.io_fill_hook(flat)
        if self.telemetry is not None:
            self.telemetry.on_dma_fill()
        if self.partition is not None:
            evicted = self.partition.victim_for_io_fill(self, flat, now)
            if evicted is not None:
                self._retire(evicted, by_io=True)
            engine.insert(flat, line, LINE_IO | LINE_DIRTY)
            self.partition.after_fill(self, flat, now)
            return
        # Vanilla DDIO: cap I/O lines per set, but victims may be CPU lines.
        if self._skewed:
            # The I/O way cap stays set-wide (DDIO limits *how many* I/O
            # lines live in a set, not where); the fill itself may only
            # displace one of the line's candidate ways.
            if engine.io_count(flat) >= self.ddio.write_allocate_ways:
                evicted = engine.evict_lru_of(flat, io=True)
                if evicted is not None:
                    self._retire(evicted, by_io=True)
            evicted = engine.insert_in(
                flat, line, LINE_IO | LINE_DIRTY, *self._way_range(line)
            )
            if evicted is not None:
                self._retire(evicted, by_io=True)
            return
        if engine.io_count(flat) >= self.ddio.write_allocate_ways:
            evicted = engine.evict_lru_of(flat, io=True)
            if evicted is not None:
                self._retire(evicted, by_io=True)
        elif engine.size(flat) >= engine.ways:
            self._retire(engine.evict_lru(flat), by_io=True)
        engine.insert(flat, line, LINE_IO | LINE_DIRTY)

    def io_write_many(
        self,
        paddrs: np.ndarray,
        now: int = 0,
        decomp: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Batched :meth:`io_write`: one inbound-DMA burst, one engine call.

        Semantically a loop of ``io_write`` over ``paddrs`` in order.  The
        vectorised kernel (:meth:`CacheEngine.io_fill_many`) requires that
        no two writes land in the same set and that victim selection stays
        with the vanilla DDIO policy, so the call falls back to the exact
        scalar loop whenever a partition or an eviction hook is installed,
        or the batch contains duplicate sets.  The NIC's per-frame bursts
        (consecutive lines of one rx buffer) always map to distinct sets,
        so in practice the fallback only triggers under the defense.

        ``decomp`` optionally carries the caller's cached ``(flats,
        lines)`` decomposition of ``paddrs``.
        """
        n = len(paddrs)
        if n == 0:
            return
        if self.partition is not None or self.evict_hook is not None:
            for paddr in paddrs:
                self.io_write(int(paddr), now=now)
            return
        if self._epochal:
            decomp = None  # may predate a re-key; recompute below
            if self._access_count >= self._epoch_period:
                self._rekey(now)
                self._access_count = 0
            if n > self._epoch_period - self._access_count:
                # Mid-batch re-key: exact scalar ordering required.
                for paddr in paddrs:
                    self.io_write(int(paddr), now=now)
                return
        if self._skewed:
            # Way-restricted victim selection is not modelled by the
            # vectorised fill kernel; take the exact scalar path.
            for paddr in paddrs:
                self.io_write(int(paddr), now=now)
            return
        flats, lines = decomp if decomp is not None else self.decompose_many(paddrs)
        engine = self.engine
        if not self.ddio.enabled:
            # Direct to DRAM; snoop-invalidate any cached copies.
            if self._epochal:
                self._access_count += n
            self.traffic.writes += n
            hit, _ways = engine.lookup_many(flats, lines)
            # A line can repeat within the batch: the lookup is a pre-state
            # snapshot, so count only invalidations that actually happen.
            for i in np.flatnonzero(hit):
                if engine.invalidate(int(flats[i]), int(lines[i])) is not None:
                    self.stats.invalidations += 1
            return
        if self.ddio.write_allocate_ways < 1:
            # Degenerate cap: the scalar path's cap-eviction becomes a
            # no-op on io-free sets and its full-set insert evicts without
            # retirement accounting — semantics the kernel does not model.
            for paddr in paddrs:
                self.io_write(int(paddr), now=now)
            return
        if len(np.unique(flats)) != n:
            for paddr in paddrs:
                self.io_write(int(paddr), now=now)
            return
        if self._epochal:
            self._access_count += n
        resident, evicted_lines, evicted_flags = engine.io_fill_many(
            flats, lines, self.ddio.write_allocate_ways
        )
        n_hits = int(resident.sum())
        n_fills = n - n_hits
        self.stats.io_hits += n_hits
        if not n_fills:
            return
        self.stats.io_fills += n_fills
        if self.io_fill_hook is not None:
            for flat in flats[~resident].tolist():
                self.io_fill_hook(flat)
        if self.telemetry is not None:
            self.telemetry.on_dma_fill(n_fills)
        # Retire the evicted lines (all evicted by I/O fills).
        evicted = np.flatnonzero(evicted_lines != -1)
        if not len(evicted):
            return
        ev_flags = evicted_flags[evicted]
        dirty = int((ev_flags & LINE_DIRTY != 0).sum())
        self.stats.writebacks += dirty
        self.traffic.writes += dirty
        victims_io = (ev_flags & LINE_IO) != 0
        self.stats.io_evicted_io += int(victims_io.sum())
        n_cpu = int(len(evicted) - victims_io.sum())
        if n_cpu:
            self.stats.io_evicted_cpu += n_cpu
            if self.telemetry is not None:
                for i in evicted[~victims_io].tolist():
                    self.telemetry.on_io_evict_cpu(int(evicted_lines[i]))

    def rx_burst(
        self,
        flats: np.ndarray,
        lines: np.ndarray,
        kinds: np.ndarray,
        stamp_offs: np.ndarray,
        total_ops: int,
        folded_hits: int,
    ) -> bool:
        """Apply a multi-frame rx burst's cache-op stream in one engine call.

        The NIC's drained-burst path (:meth:`repro.nic.nic.Nic.
        deliver_burst`) hands over the flattened footprint-op stream of
        many back-to-back frames — see :meth:`CacheEngine.rx_burst_apply`
        for the encoding and the round-by-rank application.
        ``folded_hits`` counts the driver re-touches of same-frame fills
        that were folded into ``stamp_offs`` (guaranteed hits, attributed
        here).

        Returns False — with no state touched — when the vanilla-DDIO
        kernel cannot represent the machine's policy (partition, hooks,
        DDIO off, degenerate cap, a randomized index backend); the
        caller then replays the frames through the scalar-equivalent
        per-frame path.
        """
        if (
            not self.ddio.enabled
            or self.ddio.write_allocate_ways < 1
            or self.partition is not None
            or self.evict_hook is not None
            or self.io_fill_hook is not None
            # Epochal backends: the caller's template decomps may predate
            # a re-key (and one could fall mid-burst); skewed backends:
            # the kernel's victim policy is not way-restricted.
            or self._epochal
            or self._skewed
        ):
            return False
        pre_res, ev_pos, ev_lines, ev_flags = self.engine.rx_burst_apply(
            flats, lines, kinds, stamp_offs, total_ops, self.ddio.write_allocate_ways
        )
        stats = self.stats
        fills = kinds == 0
        n_fill = int(fills.sum())
        n_fill_hits = int((pre_res & fills).sum())
        n_fills_new = n_fill - n_fill_hits
        n_cpu_ops = len(kinds) - n_fill
        n_cpu_hits = int((pre_res & ~fills).sum())
        n_cpu_miss = n_cpu_ops - n_cpu_hits
        stats.io_hits += n_fill_hits
        stats.io_fills += n_fills_new
        stats.cpu_hits += folded_hits + n_cpu_hits
        if n_cpu_miss:
            stats.cpu_misses += n_cpu_miss
            self.traffic.reads += n_cpu_miss
        if n_fills_new and self.telemetry is not None:
            self.telemetry.on_dma_fill(n_fills_new)
        if ev_pos is None:
            return True
        dirty = int((ev_flags & LINE_DIRTY != 0).sum())
        stats.writebacks += dirty
        self.traffic.writes += dirty
        victims_io = (ev_flags & LINE_IO) != 0
        by_io = kinds[ev_pos] == 0
        stats.io_evicted_io += int((by_io & victims_io).sum())
        io_cpu = by_io & ~victims_io
        n_io_cpu = int(io_cpu.sum())
        if n_io_cpu:
            stats.io_evicted_cpu += n_io_cpu
            if self.telemetry is not None:
                for line in ev_lines[io_cpu].tolist():
                    self.telemetry.on_io_evict_cpu(int(line))
        stats.cpu_evicted_io += int((~by_io & victims_io).sum())
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self, paddr: int) -> int:
        """CLFLUSH: invalidate (with writeback if dirty); returns latency."""
        line = paddr >> self._offset_bits
        flat = self._flat_memo.get(line)
        if flat is None:
            flat = self.flat_set_of(paddr)
        flags = self.engine.invalidate(flat, line)
        if flags is not None:
            self.stats.invalidations += 1
            if self.evict_hook is not None:
                self.evict_hook(line)
            if flags & LINE_DIRTY:
                self.stats.writebacks += 1
                self.traffic.writes += 1
        return self.timing.llc_hit_latency

    def invalidate_set_lines(self, flat_set: int, io: bool) -> int:
        """Invalidate all lines of one origin in a set (partition reshaping).

        Dirty lines are written back.  Returns the number invalidated.
        """
        victims = self.engine.lines_in_lru_order(flat_set, io=io)
        for line, _flags in victims:
            flags = self.engine.invalidate(flat_set, line)
            self.stats.invalidations += 1
            if self.evict_hook is not None:
                self.evict_hook(line)
            if flags is not None and flags & LINE_DIRTY:
                self.stats.writebacks += 1
                self.traffic.writes += 1
        return len(victims)

    def _retire(self, evicted: tuple[int, int], by_io: bool) -> None:
        """Account for an evicted line (writeback + attribution counters)."""
        line, flags = evicted
        if self.evict_hook is not None:
            self.evict_hook(line)
        if flags & LINE_DIRTY:
            self.stats.writebacks += 1
            self.traffic.writes += 1
        victim_is_io = bool(flags & LINE_IO)
        if by_io and victim_is_io:
            self.stats.io_evicted_io += 1
        elif by_io:
            self.stats.io_evicted_cpu += 1
            if self.telemetry is not None:
                self.telemetry.on_io_evict_cpu(line)
        elif victim_is_io:
            self.stats.cpu_evicted_io += 1

    def supports_rx_burst(self) -> bool:
        """Whether the cross-frame rx burst kernel can model this cache's
        policy (static, unskewed index backend)."""
        return not (self._epochal or self._skewed)

    # ------------------------------------------------------------------
    # Introspection (instrumentation / ground truth, not attacker-visible)
    # ------------------------------------------------------------------
    def is_resident(self, paddr: int) -> bool:
        """Whether the line holding ``paddr`` is currently cached."""
        line = paddr >> self._offset_bits
        return self.engine.contains(self.flat_set_of(paddr), line)

    def set_occupancy(self, flat_set: int) -> tuple[int, int]:
        """(cpu_lines, io_lines) resident in ``flat_set``."""
        return self.engine.cpu_count(flat_set), self.engine.io_count(flat_set)
