"""Sliced, physically-indexed last-level cache with DDIO write allocation.

The LLC is the meeting point of the attack: inbound packets are DMA'd into
it by DDIO, the spy's eviction sets live in it, and the defense partitions
it.  Three access paths exist:

* :meth:`SlicedLLC.cpu_access` — loads/stores from a CPU process (spy,
  victim, driver).  Misses fill a CPU-origin line.
* :meth:`SlicedLLC.io_write` — inbound DMA.  With DDIO enabled this
  allocates directly in the cache (at most ``ddio.write_allocate_ways`` I/O
  lines per set, but allocations may still evict CPU lines); with DDIO
  disabled it goes to DRAM and invalidates any cached copy.
* :meth:`SlicedLLC.flush` — CLFLUSH, used by some attack variants.

An optional *partition* object (the Section VII defense) takes over victim
selection; see :mod:`repro.defense.partitioning`.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.cacheset import CacheSet, LINE_DIRTY, LINE_IO
from repro.cache.slicehash import IntelComplexHash, SliceHash
from repro.cache.stats import CacheStats
from repro.core.config import CacheGeometry, DDIOConfig, TimingParams
from repro.mem.physmem import DramTraffic


class SlicedLLC:
    """The shared last-level cache of the simulated machine."""

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        ddio: DDIOConfig | None = None,
        timing: TimingParams | None = None,
        traffic: DramTraffic | None = None,
        slice_hash: SliceHash | None = None,
    ) -> None:
        self.geometry = geometry or CacheGeometry()
        self.ddio = ddio or DDIOConfig()
        self.timing = timing or TimingParams()
        self.traffic = traffic or DramTraffic()
        self.slice_hash = slice_hash or IntelComplexHash(self.geometry.n_slices)
        if self.slice_hash.n_slices != self.geometry.n_slices:
            raise ValueError(
                "slice hash built for a different slice count: "
                f"{self.slice_hash.n_slices} != {self.geometry.n_slices}"
            )
        self.sets: list[CacheSet] = [
            CacheSet(self.geometry.ways) for _ in range(self.geometry.total_sets)
        ]
        self.stats = CacheStats()
        #: Observability: set by Machine when telemetry is installed; every
        #: hook below guards on ``is not None`` so the untelemetered hot
        #: path is unchanged.
        self.telemetry = None
        #: Defense hook: when set, victim selection is delegated to the
        #: partition (see repro.defense.partitioning.AdaptivePartition).
        self.partition = None
        #: Optional callback fired on every I/O fill with the flat set id —
        #: used by experiments to record ground-truth packet placement.
        self.io_fill_hook: Callable[[int], None] | None = None
        #: Optional callback fired with the line address of every line that
        #: leaves the LLC — used for inclusive back-invalidation of L1s.
        self.evict_hook: Callable[[int], None] | None = None
        self._offset_bits = self.geometry.offset_bits
        self._set_mask = self.geometry.sets_per_slice - 1

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def set_index_of(self, paddr: int) -> int:
        """Set index within a slice (bits 6..16 for the default geometry)."""
        return (paddr >> self._offset_bits) & self._set_mask

    def slice_of(self, paddr: int) -> int:
        """Slice id from the complex hash."""
        return self.slice_hash.slice_of(paddr)

    def flat_set_of(self, paddr: int) -> int:
        """Flat set id: ``slice * sets_per_slice + set_index``."""
        return (
            self.slice_hash.slice_of(paddr) * self.geometry.sets_per_slice
            + ((paddr >> self._offset_bits) & self._set_mask)
        )

    def line_addr_of(self, paddr: int) -> int:
        """Line-aligned address (tag identity used inside sets)."""
        return paddr >> self._offset_bits

    # ------------------------------------------------------------------
    # CPU path
    # ------------------------------------------------------------------
    def cpu_access(self, paddr: int, write: bool = False, now: int = 0) -> tuple[bool, int]:
        """Access ``paddr`` from a CPU; returns ``(hit, latency_cycles)``."""
        flat = self.flat_set_of(paddr)
        cset = self.sets[flat]
        line = paddr >> self._offset_bits
        if cset.touch(line, set_dirty=write):
            self.stats.cpu_hits += 1
            return True, self.timing.llc_hit_latency
        self.stats.cpu_misses += 1
        self.traffic.reads += 1
        self._fill_cpu(flat, cset, line, write, now)
        return False, self.timing.llc_miss_latency

    def _fill_cpu(self, flat: int, cset: CacheSet, line: int, write: bool, now: int) -> None:
        flags = LINE_DIRTY if write else 0
        if self.partition is not None:
            evicted = self.partition.victim_for_cpu_fill(self, flat, cset, now)
            if evicted is not None:
                self._retire(evicted, by_io=False)
            cset.insert(line, flags)
            self.partition.after_fill(self, flat, cset, now)
            return
        evicted = cset.insert(line, flags)
        if evicted is not None:
            self._retire(evicted, by_io=False)

    # ------------------------------------------------------------------
    # I/O (DMA) path
    # ------------------------------------------------------------------
    def io_write(self, paddr: int, now: int = 0) -> None:
        """Inbound DMA write of one cache line."""
        if not self.ddio.enabled:
            # Direct to DRAM; snoop-invalidate any cached copy.
            self.traffic.writes += 1
            flat = self.flat_set_of(paddr)
            cset = self.sets[flat]
            line = paddr >> self._offset_bits
            if cset.invalidate(line) is not None:
                self.stats.invalidations += 1
                if self.evict_hook is not None:
                    self.evict_hook(line)
                if self.partition is not None:
                    self.partition.after_fill(self, flat, cset, now)
            return
        flat = self.flat_set_of(paddr)
        cset = self.sets[flat]
        line = paddr >> self._offset_bits
        if line in cset:
            cset.mark_io(line)
            self.stats.io_hits += 1
            if self.partition is not None:
                self.partition.after_fill(self, flat, cset, now)
            return
        self.stats.io_fills += 1
        if self.io_fill_hook is not None:
            self.io_fill_hook(flat)
        if self.telemetry is not None:
            self.telemetry.on_dma_fill()
        if self.partition is not None:
            evicted = self.partition.victim_for_io_fill(self, flat, cset, now)
            if evicted is not None:
                self._retire(evicted, by_io=True)
            cset.insert(line, LINE_IO | LINE_DIRTY)
            self.partition.after_fill(self, flat, cset, now)
            return
        # Vanilla DDIO: cap I/O lines per set, but victims may be CPU lines.
        if cset.io_count >= self.ddio.write_allocate_ways:
            evicted = cset.evict_lru_of(io=True)
            if evicted is not None:
                self._retire(evicted, by_io=True)
        elif len(cset) >= cset.ways:
            self._retire(cset.evict_lru(), by_io=True)
        cset.insert(line, LINE_IO | LINE_DIRTY)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self, paddr: int) -> int:
        """CLFLUSH: invalidate (with writeback if dirty); returns latency."""
        cset = self.sets[self.flat_set_of(paddr)]
        line = paddr >> self._offset_bits
        flags = cset.invalidate(line)
        if flags is not None:
            self.stats.invalidations += 1
            if self.evict_hook is not None:
                self.evict_hook(line)
            if flags & LINE_DIRTY:
                self.stats.writebacks += 1
                self.traffic.writes += 1
        return self.timing.llc_hit_latency

    def invalidate_set_lines(self, flat_set: int, io: bool) -> int:
        """Invalidate all lines of one origin in a set (partition reshaping).

        Dirty lines are written back.  Returns the number invalidated.
        """
        cset = self.sets[flat_set]
        victims = [
            line for line, flags in cset.lines.items() if bool(flags & LINE_IO) == io
        ]
        for line in victims:
            flags = cset.invalidate(line)
            self.stats.invalidations += 1
            if self.evict_hook is not None:
                self.evict_hook(line)
            if flags is not None and flags & LINE_DIRTY:
                self.stats.writebacks += 1
                self.traffic.writes += 1
        return len(victims)

    def _retire(self, evicted: tuple[int, int], by_io: bool) -> None:
        """Account for an evicted line (writeback + attribution counters)."""
        line, flags = evicted
        if self.evict_hook is not None:
            self.evict_hook(line)
        if flags & LINE_DIRTY:
            self.stats.writebacks += 1
            self.traffic.writes += 1
        victim_is_io = bool(flags & LINE_IO)
        if by_io and victim_is_io:
            self.stats.io_evicted_io += 1
        elif by_io:
            self.stats.io_evicted_cpu += 1
            if self.telemetry is not None:
                self.telemetry.on_io_evict_cpu(line)
        elif victim_is_io:
            self.stats.cpu_evicted_io += 1

    # ------------------------------------------------------------------
    # Introspection (instrumentation / ground truth, not attacker-visible)
    # ------------------------------------------------------------------
    def is_resident(self, paddr: int) -> bool:
        """Whether the line holding ``paddr`` is currently cached."""
        return (paddr >> self._offset_bits) in self.sets[self.flat_set_of(paddr)]

    def set_occupancy(self, flat_set: int) -> tuple[int, int]:
        """(cpu_lines, io_lines) resident in ``flat_set``."""
        return self.sets[flat_set].occupancy()
