"""The ``IndexMapping`` seam: pluggable paddr -> flat-set policies.

The PR-4 engine refactor reduced every access path of the LLC to two
decomposition primitives — the scalar, memoized
:meth:`repro.cache.llc.SlicedLLC.flat_set_of` and the vectorised
:meth:`~repro.cache.llc.SlicedLLC.decompose_many` — plus packed-array
kernels that only ever see *flat set ids*.  That makes the set-index
function itself a policy seam: a randomized-index cache (CEASER-style
keyed remapping, ScatterCache-style skews) differs from a conventional
one exactly and only in how a line address becomes a flat set id (and,
for skews, in which ways of that set are candidate victims).

An :class:`IndexMapping` captures that policy:

* :meth:`flat_of` / :meth:`flats_of_many` — the scalar and vectorised
  mapping.  The two must agree bit-for-bit (pinned by tests), so the
  batched kernels and the memoized scalar path stay interchangeable.
* ``epoch_period`` — accesses between re-keys (0 = static mapping).
  The LLC owns the access counting and the remap procedure; the mapping
  only supplies fresh keys via :meth:`advance_epoch` and records the
  outcome in :class:`MappingStats`.
* ``n_partitions`` — way-partition count for skewed designs.  The LLC
  restricts victim selection for a line to its partition's ways via
  :meth:`partition_of`.

Keyed mappings are built from a seeded permutation over the flat-set
space (:func:`keyed_permute_many`): xor / odd-multiply / xor-shift
rounds, each a bijection over ``[0, total_sets)`` for any fixed line
tag, with the tag folded in as a tweak so distinct congruence classes
scatter differently — the property that breaks page-aligned eviction
set construction.  All arithmetic is uint64 with explicit masking so
numpy vectors and Python ints wrap identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.cache.slicehash import SliceHash
from repro.core.config import CacheGeometry

#: 64-bit mask: Python-int arithmetic must wrap exactly like np.uint64.
_M64 = (1 << 64) - 1

#: SplitMix64 constants (Steele et al.) — the standard 64-bit finalizer.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB


def derive_index_key(root_seed: int, domain: str, *words: int) -> int:
    """A 64-bit key derived from the machine seed, namespaced by ``domain``.

    Same discipline as :func:`repro.faults.plan.derive_fault_seed`: the
    domain string is folded through SHA-256 so every consumer gets an
    independent, platform-stable stream, and the spawn goes through
    ``SeedSequence`` so keys are decorrelated even for adjacent seeds.
    """
    tag = int.from_bytes(
        hashlib.sha256(f"repro.cache.backends:{domain}".encode()).digest()[:8],
        "little",
    )
    seq = np.random.SeedSequence([root_seed & _M64, tag, *(w & _M64 for w in words)])
    lo, hi = (int(x) for x in seq.generate_state(2, np.uint64))
    return ((hi << 32) ^ lo) & _M64


def mix64(x: int) -> int:
    """SplitMix64 finalizer over a Python int (wraps like uint64)."""
    x = (x + _SM_GAMMA) & _M64
    x ^= x >> 30
    x = (x * _SM_MUL1) & _M64
    x ^= x >> 27
    x = (x * _SM_MUL2) & _M64
    return x ^ (x >> 31)


def keyed_permute_many(
    base: np.ndarray,
    tags: np.ndarray,
    round_keys: tuple[tuple[int, int], ...],
    set_bits: int,
) -> np.ndarray:
    """Apply the keyed set permutation to uint64 ``base`` indices.

    Each round is ``x ^= mix(tag, k_xor); x *= odd(k_mul); x ^= x >> s``
    over the low ``set_bits`` bits.  For any fixed tag value every step
    is a bijection on ``[0, 2**set_bits)`` — xor by a constant,
    multiplication by an odd number mod ``2**set_bits``, and the
    xorshift — so the composition is a permutation over the sets, while
    the tag tweak decorrelates congruence classes.

    Inputs are consumed as uint64; the return array is uint64 with only
    the low ``set_bits`` bits populated.
    """
    mask = np.uint64((1 << set_bits) - 1)
    shift = np.uint64(max(1, set_bits // 2))
    x = base.astype(np.uint64, copy=True)
    t = tags.astype(np.uint64, copy=False)
    for k_xor, k_mul in round_keys:
        tweak = (t + np.uint64(k_xor)) * np.uint64(_SM_GAMMA)
        tweak ^= tweak >> np.uint64(31)
        tweak *= np.uint64(_SM_MUL1)
        tweak ^= tweak >> np.uint64(27)
        x ^= tweak & mask
        x = (x * np.uint64(k_mul | 1)) & mask
        x ^= x >> shift
    return x & mask


@dataclass
class MappingStats:
    """Remap / invalidation accounting for randomized mappings.

    ``epochs`` counts completed re-keys; per re-key, every resident line
    is either *remapped* (reinserted under the fresh key) or *dropped*
    (its new set filled up before its turn — the modelled analogue of
    the relocation traffic a real CEASER spreads over the epoch).
    """

    epochs: int = 0
    lines_remapped: int = 0
    lines_dropped: int = 0

    def snapshot(self) -> dict:
        return {
            "epochs": self.epochs,
            "lines_remapped": self.lines_remapped,
            "lines_dropped": self.lines_dropped,
        }


@dataclass(frozen=True)
class BackendInfo:
    """Registry row for ``repro backends list``."""

    name: str
    summary: str
    params: str


class IndexMapping:
    """Base class: the identity of a cache-index policy.

    Subclasses override :meth:`flats_of_many` (the single source of
    truth — the scalar :meth:`flat_of` funnels through it, so vectorised
    and scalar mapping can never diverge) and, for randomized designs,
    the epoch / partition hooks.
    """

    #: Registry name ("modulo", "keyed", "skewed").
    name = "base"
    #: True when flat placement is the plain modulo form the paper's
    #: attacker assumes (page-aligned candidate striding works).
    index_transparent = False
    #: Way-partition count for skewed designs (1 = unrestricted victims).
    n_partitions = 1
    #: Accesses between re-keys; 0 = the mapping never changes.
    epoch_period = 0

    def __init__(self, geometry: CacheGeometry, slice_hash: SliceHash) -> None:
        self.geometry = geometry
        self.slice_hash = slice_hash
        self.stats = MappingStats()
        self._offset_bits = geometry.offset_bits
        self._set_mask = geometry.sets_per_slice - 1
        #: log2(total flat sets): the permutation width for keyed designs.
        self.flat_bits = geometry.set_bits + geometry.slice_bits

    # -- mapping -------------------------------------------------------
    def modulo_flats(self, paddrs: np.ndarray, lines: np.ndarray) -> np.ndarray:
        """The conventional ``slice * sets_per_slice + set_index`` form —
        the base point every backend permutes from."""
        return (
            self.slice_hash.slice_of_many(paddrs) * self.geometry.sets_per_slice
            + (lines & self._set_mask)
        )

    def flats_of_many(self, paddrs: np.ndarray, lines: np.ndarray) -> np.ndarray:
        """Vectorised flat set ids (int64) for line-distinct ``paddrs``."""
        raise NotImplementedError

    def flat_of(self, paddr: int, line: int) -> int:
        """Scalar mapping; exact agreement with :meth:`flats_of_many` is a
        contract (callers memoize per line, kernels vectorise)."""
        paddrs = np.asarray([paddr], dtype=np.int64)
        lines = np.asarray([line], dtype=np.int64)
        return int(self.flats_of_many(paddrs, lines)[0])

    # -- epochs (keyed designs) ----------------------------------------
    def advance_epoch(self) -> None:
        """Install fresh keys; the LLC then remaps resident lines."""
        raise RuntimeError(f"{self.name!r} mapping has no epochs")

    # -- way partitions (skewed designs) -------------------------------
    def partition_of(self, line: int) -> int:
        """Way-partition id of a line (0 when unpartitioned)."""
        return 0

    def describe(self) -> str:
        return self.name
