"""CEASER-shaped keyed-index backend.

CEASER (Qureshi, MICRO'18) interposes a keyed block cipher between the
line address and the set index and changes the key every *epoch*,
relocating resident lines to their new sets as it goes.  The modelled
analogue here:

* the flat set id is a keyed permutation of the conventional index,
  tweaked by the line's tag bits (:func:`keyed_permute_many`), so
  same-offset lines of different pages no longer share sets;
* every ``epoch_period`` cache accesses the LLC re-keys: it snapshots
  resident lines in recency order, installs fresh round keys via
  :meth:`advance_epoch`, and reinserts each line under the new mapping.
  Lines whose new set fills before their turn are dropped (dirty ones
  written back); :class:`~repro.cache.backends.base.MappingStats`
  accounts both outcomes exactly.

Between re-keys the mapping is static, so the batched kernels stay
valid; the LLC falls back to the scalar path for any batch a re-key
would land inside (the interleaving-observable case).
"""

from __future__ import annotations

import numpy as np

from repro.cache.backends.base import (
    IndexMapping,
    derive_index_key,
    keyed_permute_many,
)
from repro.cache.slicehash import SliceHash
from repro.core.config import CacheGeometry

#: Accesses between re-keys.  Real CEASER re-keys every N*W*S accesses
#: (~100 per line); the scaled default keeps several epochs inside one
#: experiment run without drowning it in remap work.
DEFAULT_EPOCH_PERIOD = 100_000

#: Permutation rounds: 3 is enough to decorrelate page-stride candidate
#: groups at every geometry the repo uses (tested as a permutation).
N_ROUNDS = 3


class KeyedMapping(IndexMapping):
    """Single keyed hash over the line address, with epoch re-keying."""

    name = "keyed"

    def __init__(
        self,
        geometry: CacheGeometry,
        slice_hash: SliceHash,
        seed: int = 0,
        epoch_period: int = DEFAULT_EPOCH_PERIOD,
    ) -> None:
        super().__init__(geometry, slice_hash)
        if epoch_period < 0:
            raise ValueError(f"epoch_period must be >= 0, got {epoch_period}")
        self.seed = seed
        self.epoch_period = epoch_period
        self.epoch = 0
        self._tag_shift = geometry.set_bits
        self._round_keys = self._derive_keys()

    def _derive_keys(self) -> tuple[tuple[int, int], ...]:
        return tuple(
            (
                derive_index_key(self.seed, "keyed.xor", self.epoch, r),
                derive_index_key(self.seed, "keyed.mul", self.epoch, r),
            )
            for r in range(N_ROUNDS)
        )

    def advance_epoch(self) -> None:
        self.epoch += 1
        self._round_keys = self._derive_keys()

    def flats_of_many(self, paddrs: np.ndarray, lines: np.ndarray) -> np.ndarray:
        base = self.modulo_flats(paddrs, lines)
        tags = (lines >> self._tag_shift).astype(np.uint64)
        out = keyed_permute_many(
            base.astype(np.uint64), tags, self._round_keys, self.flat_bits
        )
        return out.astype(np.int64)

    def describe(self) -> str:
        return f"keyed(epoch={self.epoch_period})"
