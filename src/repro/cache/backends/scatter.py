"""ScatterCache-shaped skewed backend.

ScatterCache (Werner et al., USENIX Sec'19) gives each way (or way
group) its own keyed index function and picks the victim among the
*candidate ways* a line may occupy.  The modelled analogue:

* the cache's ways are split into ``n_partitions`` equal way groups;
* a keyed selector hash assigns every line to one partition, and each
  partition applies its *own* keyed permutation of the conventional
  index (independent round keys), so two lines that collide in one
  partition's index space are unrelated in another's;
* on a fill, the victim is chosen among the line's candidate ways only
  — the LLC restricts insertion/eviction to the partition's way range
  (see :meth:`repro.cache.engine.CacheEngine.insert_in`).

The mapping is static (``epoch_period = 0`` — SCv1's key lifetime is
outside the modelled window), so decomposition caches and the
``access_many`` fast path stay valid; only the DMA fill kernels fall
back scalar, because their victim policy is way-restricted.
"""

from __future__ import annotations

import numpy as np

from repro.cache.backends.base import (
    IndexMapping,
    derive_index_key,
    keyed_permute_many,
    mix64,
)
from repro.cache.slicehash import SliceHash
from repro.core.config import CacheGeometry

DEFAULT_PARTITIONS = 2
N_ROUNDS = 3


class SkewedMapping(IndexMapping):
    """Per-partition keyed indexes; victims restricted to candidate ways."""

    name = "skewed"

    def __init__(
        self,
        geometry: CacheGeometry,
        slice_hash: SliceHash,
        seed: int = 0,
        n_partitions: int = DEFAULT_PARTITIONS,
    ) -> None:
        super().__init__(geometry, slice_hash)
        if n_partitions < 1:
            raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
        if geometry.ways % n_partitions:
            raise ValueError(
                f"n_partitions={n_partitions} must divide ways={geometry.ways}"
            )
        self.seed = seed
        self.n_partitions = n_partitions
        self._tag_shift = geometry.set_bits
        self._select_key = derive_index_key(seed, "skewed.select")
        self._round_keys = tuple(
            tuple(
                (
                    derive_index_key(seed, "skewed.xor", p, r),
                    derive_index_key(seed, "skewed.mul", p, r),
                )
                for r in range(N_ROUNDS)
            )
            for p in range(n_partitions)
        )

    def partition_of(self, line: int) -> int:
        return mix64(line ^ self._select_key) % self.n_partitions

    def _partitions_of_many(self, lines: np.ndarray) -> np.ndarray:
        # Vectorised mix64 over the selector-keyed line addresses.
        x = lines.astype(np.uint64) ^ np.uint64(self._select_key)
        x = (x + np.uint64(0x9E3779B97F4A7C15))
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        return (x % np.uint64(self.n_partitions)).astype(np.int64)

    def flats_of_many(self, paddrs: np.ndarray, lines: np.ndarray) -> np.ndarray:
        base = self.modulo_flats(paddrs, lines).astype(np.uint64)
        tags = (lines >> self._tag_shift).astype(np.uint64)
        parts = self._partitions_of_many(lines)
        out = np.empty(len(base), dtype=np.int64)
        for p in range(self.n_partitions):
            sel = parts == p
            if not sel.any():
                continue
            out[sel] = keyed_permute_many(
                base[sel], tags[sel], self._round_keys[p], self.flat_bits
            ).astype(np.int64)
        return out

    def describe(self) -> str:
        return f"skewed(partitions={self.n_partitions})"
