"""Pluggable cache-index backends (``repro.cache.backends``).

The registry maps backend *specs* to :class:`IndexMapping` instances.
A spec is ``name`` or ``name:key=value,key=value`` — e.g. ``modulo``,
``keyed:epoch=50000``, ``skewed:partitions=4``.  The spec string lives
in :attr:`repro.core.config.MachineConfig.cache_backend`, so it is part
of the config hash and every result cache key.

See :mod:`repro.cache.backends.base` for the policy contract and the
per-backend modules for the designs they model.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.backends.base import (
    BackendInfo,
    IndexMapping,
    MappingStats,
    derive_index_key,
)
from repro.cache.backends.ceaser import DEFAULT_EPOCH_PERIOD, KeyedMapping
from repro.cache.backends.modulo import ModuloMapping
from repro.cache.backends.scatter import DEFAULT_PARTITIONS, SkewedMapping
from repro.cache.slicehash import SliceHash
from repro.core.config import CacheGeometry

__all__ = [
    "BackendInfo",
    "IndexMapping",
    "KeyedMapping",
    "MappingStats",
    "ModuloMapping",
    "SkewedMapping",
    "backend_infos",
    "derive_index_key",
    "make_mapping",
    "parse_backend_spec",
]


def _build_modulo(
    geometry: CacheGeometry, slice_hash: SliceHash, seed: int, params: dict[str, int]
) -> IndexMapping:
    return ModuloMapping(geometry, slice_hash)


def _build_keyed(
    geometry: CacheGeometry, slice_hash: SliceHash, seed: int, params: dict[str, int]
) -> IndexMapping:
    return KeyedMapping(
        geometry,
        slice_hash,
        seed=seed,
        epoch_period=params.get("epoch", DEFAULT_EPOCH_PERIOD),
    )


def _build_skewed(
    geometry: CacheGeometry, slice_hash: SliceHash, seed: int, params: dict[str, int]
) -> IndexMapping:
    return SkewedMapping(
        geometry,
        slice_hash,
        seed=seed,
        n_partitions=params.get("partitions", DEFAULT_PARTITIONS),
    )


_Builder = Callable[[CacheGeometry, SliceHash, int, dict], IndexMapping]

#: name -> (builder, allowed params, registry row).
_REGISTRY: dict[str, tuple[_Builder, frozenset[str], BackendInfo]] = {
    "modulo": (
        _build_modulo,
        frozenset(),
        BackendInfo(
            "modulo",
            "conventional set indexing (default; bit-identical to pre-backend code)",
            "-",
        ),
    ),
    "keyed": (
        _build_keyed,
        frozenset({"epoch"}),
        BackendInfo(
            "keyed",
            "CEASER-shaped keyed index, epoch re-keying + remap accounting",
            f"epoch={DEFAULT_EPOCH_PERIOD} (accesses between re-keys; 0 = never)",
        ),
    ),
    "skewed": (
        _build_skewed,
        frozenset({"partitions"}),
        BackendInfo(
            "skewed",
            "ScatterCache-shaped per-partition keyed indexes, way-restricted victims",
            f"partitions={DEFAULT_PARTITIONS} (way groups; must divide ways)",
        ),
    ),
}


def backend_names() -> list[str]:
    return list(_REGISTRY)


def backend_infos() -> list[BackendInfo]:
    return [info for _b, _p, info in _REGISTRY.values()]


def parse_backend_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Split ``name[:key=value,...]`` and validate against the registry.

    Raises :class:`ValueError` with an actionable message for unknown
    names, unknown parameters and malformed values — the CLI maps that
    to the usage exit code.
    """
    name, _sep, rest = spec.partition(":")
    name = name.strip()
    if name not in _REGISTRY:
        known = ", ".join(_REGISTRY)
        raise ValueError(f"unknown cache backend {name!r} (known: {known})")
    allowed = _REGISTRY[name][1]
    params: dict[str, int] = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or key not in allowed:
                options = ", ".join(sorted(allowed)) or "none"
                raise ValueError(
                    f"bad backend parameter {item!r} for {name!r} "
                    f"(allowed: {options})"
                )
            try:
                params[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"backend parameter {key!r} must be an integer, got {value!r}"
                ) from None
    return name, params


def make_mapping(
    spec: str,
    geometry: CacheGeometry,
    slice_hash: SliceHash,
    seed: int = 0,
) -> IndexMapping:
    """Build the :class:`IndexMapping` a backend spec describes."""
    name, params = parse_backend_spec(spec)
    builder = _REGISTRY[name][0]
    return builder(geometry, slice_hash, seed, params)
