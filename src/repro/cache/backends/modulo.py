"""The conventional set-indexed mapping (the default backend).

This is the exact decomposition the LLC computed inline before the
backends subsystem existed: ``slice_hash(paddr) * sets_per_slice +
(line & set_mask)``.  Both paths reproduce it operation-for-operation,
so a machine built with the default backend is bit-identical to the
pre-backend code — pinned by the differential-equivalence suites.
"""

from __future__ import annotations

import numpy as np

from repro.cache.backends.base import IndexMapping


class ModuloMapping(IndexMapping):
    """Plain modulo indexing; static, transparent, victim-unrestricted."""

    name = "modulo"
    index_transparent = True

    def flat_of(self, paddr: int, line: int) -> int:
        return (
            self.slice_hash.slice_of(paddr) * self.geometry.sets_per_slice
            + (line & self._set_mask)
        )

    def flats_of_many(self, paddrs: np.ndarray, lines: np.ndarray) -> np.ndarray:
        return self.modulo_flats(paddrs, lines)
