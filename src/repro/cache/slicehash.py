"""Slice-selection hash functions for the sliced LLC.

Starting with Sandy Bridge, Intel splits the LLC into one slice per core and
distributes physical addresses among slices with an undocumented hash of the
high address bits (Fig. 2 of the paper).  The hash has been reverse
engineered for several generations (Maurice et al., Inci et al.) and is a
set of XOR (parity) functions over physical address bits.

:class:`IntelComplexHash` implements that form with the published mask
family; :class:`ModuloSliceHash` is a deliberately simple alternative used
in ablations and tests (it makes slice placement transparent, which is
useful for deterministic unit tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: XOR masks of the reverse-engineered Intel slice hash (one parity function
#: per slice-select bit).  Bit 6 upward participate; the family is the one
#: recovered for 8-slice Xeon parts.
INTEL_XOR_MASKS: tuple[int, ...] = (
    0x1B5F575440,
    0x2EB5FAA880,
    0x3CCCC93100,
)


class SliceHash(ABC):
    """Maps a physical line address to a slice id."""

    def __init__(self, n_slices: int) -> None:
        if n_slices <= 0 or n_slices & (n_slices - 1):
            raise ValueError(f"n_slices must be a power of two, got {n_slices}")
        self.n_slices = n_slices
        self.slice_bits = n_slices.bit_length() - 1

    @abstractmethod
    def slice_of(self, paddr: int) -> int:
        """Slice id (0 .. n_slices-1) for physical address ``paddr``."""

    def slice_of_many(self, paddrs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`slice_of` over an int64 address array.

        Subclasses override with true numpy kernels; this fallback keeps
        custom hashes correct (one Python call per address).
        """
        return np.fromiter(
            (self.slice_of(int(p)) for p in paddrs), np.int64, count=len(paddrs)
        )


class IntelComplexHash(SliceHash):
    """XOR-of-address-bits hash of the form used by Intel LLCs.

    Each slice-select bit is the parity of the physical address ANDed with a
    fixed mask.  The default masks are the published reverse-engineered
    family; alternative masks can be supplied (e.g. per microarchitecture).
    """

    def __init__(self, n_slices: int = 8, masks: tuple[int, ...] | None = None) -> None:
        super().__init__(n_slices)
        masks = masks if masks is not None else INTEL_XOR_MASKS
        if len(masks) < self.slice_bits:
            raise ValueError(
                f"need {self.slice_bits} masks for {n_slices} slices, got {len(masks)}"
            )
        self.masks = tuple(masks[: self.slice_bits])

    def slice_of(self, paddr: int) -> int:
        result = 0
        for bit, mask in enumerate(self.masks):
            result |= ((paddr & mask).bit_count() & 1) << bit
        return result

    def slice_of_many(self, paddrs: np.ndarray) -> np.ndarray:
        paddrs = np.asarray(paddrs, dtype=np.int64)
        result = np.zeros(len(paddrs), dtype=np.int64)
        for bit, mask in enumerate(self.masks):
            parity = np.bitwise_count(paddrs & np.int64(mask)) & 1
            result |= parity.astype(np.int64) << bit
        return result


class ModuloSliceHash(SliceHash):
    """Transparent slice selection: line address modulo slice count.

    Not what real hardware does — used in tests and in the ablation that
    shows the attack does not depend on knowing the hash (the spy resolves
    slices by timing either way).
    """

    def __init__(self, n_slices: int = 8, line_bits: int = 6) -> None:
        super().__init__(n_slices)
        self.line_bits = line_bits

    def slice_of(self, paddr: int) -> int:
        return (paddr >> self.line_bits) & (self.n_slices - 1)

    def slice_of_many(self, paddrs: np.ndarray) -> np.ndarray:
        paddrs = np.asarray(paddrs, dtype=np.int64)
        return (paddrs >> self.line_bits) & (self.n_slices - 1)
