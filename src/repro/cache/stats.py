"""Cache statistics counters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.counters import CounterStats


@dataclass
class CacheStats(CounterStats):
    """Aggregate counters for one cache level.

    ``io_evicted_cpu`` counts the events at the heart of the vulnerability:
    an inbound-DMA (DDIO) allocation displacing a CPU-origin line, which is
    what the spy's PRIME+PROBE observes.  The adaptive-partitioning defense
    drives this count to zero (except at adaptation boundaries).
    """

    cpu_hits: int = 0
    cpu_misses: int = 0
    io_hits: int = 0
    io_fills: int = 0
    writebacks: int = 0
    io_evicted_cpu: int = 0
    io_evicted_io: int = 0
    cpu_evicted_io: int = 0
    invalidations: int = 0

    @property
    def cpu_accesses(self) -> int:
        return self.cpu_hits + self.cpu_misses

    @property
    def miss_rate(self) -> float:
        """CPU-side miss rate (the quantity reported in Fig. 15)."""
        total = self.cpu_accesses
        return self.cpu_misses / total if total else 0.0

    # reset / snapshot / from_snapshot / merge / delta come from
    # CounterStats; NicStats and DriverStats share the same machinery.


@dataclass
class SetActivity:
    """Per-set activity trace used by figure-style experiments.

    Records, for a chosen window, how many fills landed in each flat set id.
    The experiments behind Figs. 5-8 use this on the *victim* side as ground
    truth to compare against what the attacker recovers by probing.
    """

    fills: dict[int, int] = field(default_factory=dict)

    def record(self, flat_set: int) -> None:
        self.fills[flat_set] = self.fills.get(flat_set, 0) + 1

    def reset(self) -> None:
        self.fills.clear()
