"""Cache statistics counters."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Aggregate counters for one cache level.

    ``io_evicted_cpu`` counts the events at the heart of the vulnerability:
    an inbound-DMA (DDIO) allocation displacing a CPU-origin line, which is
    what the spy's PRIME+PROBE observes.  The adaptive-partitioning defense
    drives this count to zero (except at adaptation boundaries).
    """

    cpu_hits: int = 0
    cpu_misses: int = 0
    io_hits: int = 0
    io_fills: int = 0
    writebacks: int = 0
    io_evicted_cpu: int = 0
    io_evicted_io: int = 0
    cpu_evicted_io: int = 0
    invalidations: int = 0

    @property
    def cpu_accesses(self) -> int:
        return self.cpu_hits + self.cpu_misses

    @property
    def miss_rate(self) -> float:
        """CPU-side miss rate (the quantity reported in Fig. 15)."""
        total = self.cpu_accesses
        return self.cpu_misses / total if total else 0.0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of all counters."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_snapshot(cls, snap: dict[str, int]) -> "CacheStats":
        """Rebuild a stats object from a :meth:`snapshot` dict."""
        return cls(**{name: snap.get(name, 0) for name in cls.__dataclass_fields__})

    def merge(self, other: "CacheStats | dict") -> "CacheStats":
        """Add another stats object (or snapshot dict) into this one.

        Used to combine per-shard / per-phase counters; returns ``self``
        so merges chain.
        """
        get = other.get if isinstance(other, dict) else lambda n, _d=0: getattr(other, n)
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + get(name, 0))
        return self

    def delta(self, since: "CacheStats | dict") -> "CacheStats":
        """Counters accumulated since an earlier snapshot, as a new object.

        The measurement-window idiom every workload and telemetry phase
        uses: snapshot before, ``delta`` after, read derived rates off the
        returned object (e.g. ``.miss_rate``).
        """
        base = since if isinstance(since, dict) else since.snapshot()
        return CacheStats(
            **{
                name: getattr(self, name) - base.get(name, 0)
                for name in self.__dataclass_fields__
            }
        )


@dataclass
class SetActivity:
    """Per-set activity trace used by figure-style experiments.

    Records, for a chosen window, how many fills landed in each flat set id.
    The experiments behind Figs. 5-8 use this on the *victim* side as ground
    truth to compare against what the attacker recovers by probing.
    """

    fills: dict[int, int] = field(default_factory=dict)

    def record(self, flat_set: int) -> None:
        self.fills[flat_set] = self.fills.get(flat_set, 0) + 1

    def reset(self) -> None:
        self.fills.clear()
