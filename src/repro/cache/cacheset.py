"""A single set-associative cache set with LRU ordering and line origins.

Lines are stored in an :class:`collections.OrderedDict` keyed by the full
line address (which doubles as the tag); dict order is recency order with
the most recently used line last.  Each line carries two flag bits:

* ``LINE_IO`` — the line was filled by inbound DMA (DDIO).  The DDIO
  allocation limit and the adaptive-partitioning defense both key off this.
* ``LINE_DIRTY`` — the line must be written back to DRAM on eviction.
  DDIO-filled lines are always dirty ("they will be in dirty mode and will
  get written back to memory only upon eviction").
"""

from __future__ import annotations

from collections import OrderedDict

LINE_IO = 0x1
LINE_DIRTY = 0x2


class CacheSet:
    """One cache set: an LRU-ordered mapping of line address to flags."""

    __slots__ = ("ways", "lines", "io_count")

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways
        self.lines: OrderedDict[int, int] = OrderedDict()
        self.io_count = 0

    def __len__(self) -> int:
        return len(self.lines)

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self.lines

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def touch(self, line_addr: int, set_dirty: bool = False) -> bool:
        """Access ``line_addr``; return True on hit (and update LRU order)."""
        flags = self.lines.get(line_addr)
        if flags is None:
            return False
        self.lines.move_to_end(line_addr)
        if set_dirty and not (flags & LINE_DIRTY):
            self.lines[line_addr] = flags | LINE_DIRTY
        return True

    def flags_of(self, line_addr: int) -> int | None:
        """Flags of a resident line, or None if absent (no LRU update)."""
        return self.lines.get(line_addr)

    # ------------------------------------------------------------------
    # Fills and evictions
    # ------------------------------------------------------------------
    def insert(self, line_addr: int, flags: int) -> tuple[int, int] | None:
        """Insert a new line as MRU, evicting the LRU line if the set is full.

        Returns the evicted ``(line_addr, flags)`` or None.  The caller is
        responsible for the line not already being present.
        """
        evicted = None
        if len(self.lines) >= self.ways:
            evicted = self.evict_lru()
        self.lines[line_addr] = flags
        if flags & LINE_IO:
            self.io_count += 1
        return evicted

    def evict_lru(self) -> tuple[int, int]:
        """Evict and return the least recently used line."""
        if not self.lines:
            raise LookupError("evict_lru on empty set")
        line_addr, flags = self.lines.popitem(last=False)
        if flags & LINE_IO:
            self.io_count -= 1
        return line_addr, flags

    def evict_lru_of(self, io: bool) -> tuple[int, int] | None:
        """Evict the LRU line whose origin matches ``io``; None if no match."""
        target = None
        for line_addr, flags in self.lines.items():
            if bool(flags & LINE_IO) == io:
                target = (line_addr, flags)
                break
        if target is None:
            return None
        line_addr, flags = target
        del self.lines[line_addr]
        if flags & LINE_IO:
            self.io_count -= 1
        return line_addr, flags

    def invalidate(self, line_addr: int) -> int | None:
        """Drop a line without writeback accounting; return its flags."""
        flags = self.lines.pop(line_addr, None)
        if flags is not None and flags & LINE_IO:
            self.io_count -= 1
        return flags

    def mark_io(self, line_addr: int) -> None:
        """Convert a resident line to an I/O line (DMA overwrite of a cached
        address); also marks it dirty and MRU."""
        flags = self.lines.get(line_addr)
        if flags is None:
            raise LookupError(f"line {line_addr:#x} not resident")
        if not (flags & LINE_IO):
            self.io_count += 1
        self.lines[line_addr] = flags | LINE_IO | LINE_DIRTY
        self.lines.move_to_end(line_addr)

    @property
    def cpu_count(self) -> int:
        """Number of resident CPU-origin lines."""
        return len(self.lines) - self.io_count

    def occupancy(self) -> tuple[int, int]:
        """(cpu_lines, io_lines) currently resident."""
        return self.cpu_count, self.io_count
