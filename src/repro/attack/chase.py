"""Packet chasing: following the ring buffer-to-buffer.

Once the spy knows (a) which cache sets host each buffer and (b) the order
in which buffers fill (:mod:`repro.attack.sequencer`), it stops scanning
256 sets and instead probes *only the next expected buffer* — the paper's
eponymous technique.  Each detected fill also reveals the packet's size in
cache-block granularity by probing the buffer's subsequent blocks, on both
page halves (the driver flips halves for large packets, Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attack.evictionset import EvictionSet
from repro.attack.primeprobe import SetSweep
from repro.telemetry.quality import quality_registry, record_chase


@dataclass
class BufferMonitor:
    """Probe-ready eviction sets for one rx buffer.

    ``blocks`` maps block number (0..3) to the eviction set covering that
    block in the *first* half-page; ``alt_blocks`` covers the second half
    (offset +2048), which the driver switches to after handing a large
    packet's half to the stack.
    """

    name: str
    blocks: dict[int, EvictionSet]
    alt_blocks: dict[int, EvictionSet] = field(default_factory=dict)
    #: Lazily-built batched sweeps: the clock probe (block 0 of both
    #: halves) and the size probe (non-zero blocks of both halves) each
    #: go out as one machine call instead of one per set.
    _clock_sweep: SetSweep | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _size_sweep: SetSweep | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _size_splits: tuple[np.ndarray, ...] = field(
        default=(), init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if 0 not in self.blocks:
            raise ValueError("BufferMonitor requires at least the block-0 set")

    def prime(self) -> None:
        for es in self.blocks.values():
            es.prime()
        for es in self.alt_blocks.values():
            es.prime()

    def clock_active(self) -> bool:
        """Probe block 0 of both halves; True if either saw a miss."""
        if self._clock_sweep is None:
            sets = [self.blocks[0]]
            if 0 in self.alt_blocks:
                sets.append(self.alt_blocks[0])
            self._clock_sweep = SetSweep(self.blocks[0].process, sets)
        return bool((self._clock_sweep.probe() > 0).any())

    def read_size(self, cap: int = 4) -> int:
        """Packet size in blocks (1..cap), read from whichever half fired.

        Block 1 is ignored for sizing (the driver prefetches it for every
        packet), so sizes are 1, 3, 4... distinguished by blocks 2 and 3 —
        matching what the paper's spy can actually resolve.  Per half the
        size is the largest fired block number + 1, exactly what the
        scalar ascending-probe loop left behind.
        """
        if self._size_sweep is None:
            halves = [self.blocks]
            if self.alt_blocks:
                halves.append(self.alt_blocks)
            sets: list[EvictionSet] = []
            splits = []
            for half in halves:
                ks = [k for k in sorted(half) if k != 0]
                sets.extend(half[k] for k in ks)
                splits.append(np.asarray(ks, dtype=np.int64))
            self._size_splits = tuple(splits)
            self._size_sweep = SetSweep(self.blocks[0].process, sets) if sets else None
            if not sets:
                self._size_splits = ()
        size = 1
        if self._size_sweep is not None:
            fired = self._size_sweep.probe() > 0
            offset = 0
            for ks in self._size_splits:
                hit = ks[fired[offset : offset + ks.size]]
                if hit.size:
                    size = max(size, int(hit[-1]) + 1)
                offset += ks.size
        return min(size, cap)


@dataclass
class ChaseResult:
    """Outcome of a chasing session."""

    sizes: list[int]
    times: list[int]
    misses: int  # timeouts where the expected buffer never fired
    resyncs: int
    #: Miss count at the moment of the final successful detection — misses
    #: after that are just idle waiting once traffic stopped, and should not
    #: count against synchronisation quality.
    misses_while_active: int = 0

    @property
    def packets_seen(self) -> int:
        return len(self.sizes)

    @property
    def out_of_sync_rate(self) -> float:
        total = self.packets_seen + self.misses_while_active
        return self.misses_while_active / total if total else 0.0


class PacketChaser:
    """Follows the recovered buffer sequence, one buffer at a time."""

    def __init__(
        self,
        process,
        buffers: list[BufferMonitor],
        start: int = 0,
        supervisor=None,
    ) -> None:
        if not buffers:
            raise ValueError("no buffer monitors supplied")
        self.process = process
        self.buffers = list(buffers)
        self.position = start % len(buffers)
        #: Optional :class:`~repro.attack.adaptive.AdaptiveSupervisor`:
        #: consecutive timeouts past patience trigger a monitor heal
        #: (the ring's buffers were remapped out from under the spy).
        self.supervisor = supervisor

    def prime_all(self) -> None:
        for monitor in self.buffers:
            monitor.prime()

    def wait_for_fill(
        self, monitor: BufferMonitor, timeout_cycles: int, poll_wait: int = 0
    ) -> bool:
        """Poll a buffer's clock set until it fires or timeout elapses."""
        machine = self.process.machine
        deadline = machine.clock.now + timeout_cycles
        while machine.clock.now < deadline:
            if monitor.clock_active():
                return True
            if poll_wait:
                machine.idle(poll_wait)
        return False

    def chase(
        self,
        n_packets: int,
        timeout_cycles: int,
        poll_wait: int = 0,
        size_cap: int = 4,
        size_wait: int = 0,
        prime: bool = True,
    ) -> ChaseResult:
        """Chase ``n_packets`` fills through the ring.

        On a timeout the chaser has lost the packet: it counts a miss and
        keeps waiting on the same buffer (the paper: "it has to wait until
        completion of the whole ring, or the next time a packet fills that
        buffer, to get synchronized again").
        """
        machine = self.process.machine
        if prime:
            self.prime_all()
        sizes: list[int] = []
        times: list[int] = []
        misses = 0
        misses_at_last_hit = 0
        resyncs = 0
        out_of_sync = False
        give_up = n_packets + 4 * len(self.buffers)
        while len(sizes) < n_packets:
            monitor = self.buffers[self.position]
            if self.wait_for_fill(monitor, timeout_cycles, poll_wait):
                if out_of_sync:
                    resyncs += 1
                    out_of_sync = False
                if self.supervisor is not None:
                    self.supervisor.note_hit()
                times.append(machine.clock.now)
                if size_wait:
                    # Without DDIO the payload enters the cache only when
                    # the stack touches it; the spy must delay its size read
                    # (and eat the extra noise that entails).
                    machine.idle(size_wait)
                sizes.append(monitor.read_size(cap=size_cap))
                misses_at_last_hit = misses
                self.position = (self.position + 1) % len(self.buffers)
                # Re-prime the next expected buffer: its sets were last
                # probed a full ring cycle ago and may hold stale I/O lines;
                # once a set holds two, further DDIO fills evict I/O lines
                # and become invisible.  Priming now flushes them so the
                # upcoming fill must displace one of our lines.
                self.buffers[self.position].prime()
            else:
                misses += 1
                if not out_of_sync:
                    out_of_sync = True
                if self.supervisor is not None:
                    event = self.supervisor.note_timeout()
                    if event is not None and event.kind == "heal" and event.payload:
                        # The ring's buffers were remapped out from under
                        # us (re-keying / re-randomization): swap in the
                        # rebuilt monitors and re-prime the lot.
                        self.buffers = list(event.payload)
                        self.position %= len(self.buffers)
                        self.prime_all()
                        continue
                # Stay on this buffer: the next fill of it re-synchronises.
                if misses > give_up:
                    break  # give up: traffic has evidently stopped
        result = ChaseResult(
            sizes=sizes,
            times=times,
            misses=misses,
            resyncs=resyncs,
            misses_while_active=misses_at_last_hit,
        )
        registry = quality_registry(machine.telemetry)
        if registry is not None:
            record_chase(registry, result)
        return result
