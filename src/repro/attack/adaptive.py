"""Adaptive attack supervision: drift detection and in-flight recovery.

The attack pipeline calibrates once and trusts that calibration forever —
fine in a frozen simulation, wrong on the live machine the paper targets,
where thresholds drift with frequency scaling, eviction sets rot under
re-randomization, and the spy's sync is lost whenever the ring outruns it.
This module closes the loop from the signal-quality estimators
(:mod:`repro.telemetry.quality`) to in-flight recovery:

* **Drift / SNR-floor detection** — a probe stream whose sets *all* fire on
  (almost) every sweep is saturated: the hit distribution has drifted past
  the stale threshold and every access classifies as a miss.  After
  ``detect_patience`` consecutive saturated sweeps the supervisor
  recalibrates online (bounded by ``max_recalibrations``, spaced by
  ``cooldown_sweeps`` of hysteresis so one noise spike cannot thrash) and
  pushes the new threshold into every tracked eviction set.
* **Eviction-set health** — a probe stream that goes *dark* (zero activity
  for ``idle_patience`` sweeps under live traffic) has lost its sets: under
  ``keyed:epoch=N`` re-keying or ``defense.randomization`` the monitored
  lines now map elsewhere and every traversal self-hits forever.  The
  supervisor invokes its registered ``healer`` to rebuild the monitors
  against the *current* mapping.
* **Sync loss** — the chaser reports timeouts and the sequencer reports
  empty recoveries; past patience these trigger the same heal path.

Every decision is a pure function of deterministic simulation state (no
RNG), so recovery decisions are bit-identical at any ``--jobs N`` and
under checkpoint resume.  Consumers that receive no supervisor construct
zero adaptive machinery — non-adaptive runs stay bit-identical to
pre-adaptive builds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Callable

from repro.attack.timing import CalibrationResult, calibrate_threshold


@dataclass(frozen=True)
class AdaptiveConfig:
    """Detector and recovery tuning for one :class:`AdaptiveSupervisor`."""

    #: A sweep with at least this fraction of monitored sets firing is
    #: "saturated" (drifted threshold: everything classifies as a miss).
    saturation_fraction: float = 0.95
    #: Consecutive saturated sweeps before a recalibration is attempted.
    #: Legitimate traffic fires a buffer's sets at the packet rate — once
    #: every several sweeps — so a short streak already separates drift
    #: from signal.
    detect_patience: int = 4
    #: Consecutive all-quiet sweeps before the monitors are declared dead
    #: and healed.  Must comfortably exceed the inter-fill gap (a fill per
    #: ~8 sweeps in the covert-channel runs) to never fire on a live set.
    idle_patience: int = 32
    #: Per-distribution sample count for an online recalibration pass.
    #: Larger than the initial calibration's default: the pass runs under
    #: the very noise that triggered it, so the midpoint estimate needs
    #: the extra averaging to land inside the (narrowed) hit/miss gap.
    recal_samples: int = 96
    #: Minimum sweeps between recovery attempts (hysteresis / backoff).
    cooldown_sweeps: int = 24
    #: Hard budgets so a hopeless run terminates instead of thrashing.
    max_recalibrations: int = 8
    max_heals: int = 8
    #: Consecutive chase timeouts before the chaser's monitors are healed.
    chase_timeout_patience: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.saturation_fraction <= 1.0:
            raise ValueError(
                f"saturation_fraction must be in (0, 1], got {self.saturation_fraction}"
            )
        for name in (
            "detect_patience",
            "idle_patience",
            "recal_samples",
            "max_recalibrations",
            "max_heals",
            "chase_timeout_patience",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.cooldown_sweeps < 0:
            raise ValueError("cooldown_sweeps must be >= 0")


@dataclass
class AdaptiveStats:
    """Counts of every recovery decision (mirrored to ``adaptive.*``
    telemetry counters; summed into ledger record context)."""

    recalibrations: int = 0
    recal_failures: int = 0
    heals: int = 0
    heal_failures: int = 0
    saturation_detections: int = 0
    idle_detections: int = 0
    chase_resyncs: int = 0
    sequence_sync_losses: int = 0

    def total(self) -> int:
        return sum(getattr(self, f.name) for f in fields(self))

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class RecoveryEvent:
    """One recovery action, for result annotation and debugging."""

    time: int
    kind: str  # "recalibrate" | "recal_failed" | "heal" | "heal_failed" | ...
    detail: str
    #: Rebuilt monitors (heal only); the consumer swaps these in.
    payload: Any = None

    def summary(self) -> tuple[int, str, str]:
        return (self.time, self.kind, self.detail)


class AdaptiveSupervisor:
    """Watches one probe stream and repairs it in flight.

    One supervisor serves one consumer (a :class:`~repro.attack.primeprobe.
    ProbeMonitor`, :class:`~repro.attack.covert.CovertReceiver` or
    :class:`~repro.attack.chase.PacketChaser`): the consumer reports each
    sweep via :meth:`observe` (or timeouts via :meth:`note_timeout`) and
    applies the returned :class:`RecoveryEvent`, if any — swapping in a
    healed monitor list and re-priming.

    ``healer`` is a zero-argument callable rebuilding the consumer's
    monitors against the live cache mapping (typically a closure over
    :class:`~repro.attack.setup.MonitorFactory` and the monitored ring
    buffers); it returns the new monitor payload.  ``factory`` (optional)
    is kept in sync on recalibration so healed monitors are born with the
    current threshold.
    """

    def __init__(
        self,
        process,
        config: AdaptiveConfig | None = None,
        healer: Callable[[], Any] | None = None,
        factory=None,
        label: str = "",
    ) -> None:
        self.process = process
        self.config = config or AdaptiveConfig()
        self.healer = healer
        self.factory = factory
        self.label = label
        self.stats = AdaptiveStats()
        self.events: list[RecoveryEvent] = []
        #: Latest recalibration (None until the first one fires).
        self.threshold: CalibrationResult | None = None
        self._tracked: list = []
        self._sweeps = 0
        self._degraded_sweeps = 0
        self._sat_streak = 0
        self._idle_streak = 0
        self._timeout_streak = 0
        self._last_recovery = -(10**9)

    # -- bookkeeping ---------------------------------------------------
    def _count(self, stat: str, counter: str, n: int = 1) -> None:
        setattr(self.stats, stat, getattr(self.stats, stat) + n)
        tele = self.process.machine.telemetry
        if tele is not None and tele.metrics.enabled:
            tele.metrics.counter(f"adaptive.{counter}").inc(n)

    def _event(self, kind: str, detail: str, payload: Any = None) -> RecoveryEvent:
        event = RecoveryEvent(
            time=self.process.machine.clock.now,
            kind=kind,
            detail=detail,
            payload=payload,
        )
        self.events.append(event)
        return event

    def track(self, *eviction_sets) -> None:
        """Register eviction sets whose thresholds recalibration updates."""
        self._tracked.extend(eviction_sets)

    def untrack_all(self) -> None:
        self._tracked.clear()

    @property
    def confidence(self) -> float:
        """Fraction of observed sweeps spent *outside* a degraded state."""
        if self._sweeps == 0:
            return 1.0
        return 1.0 - self._degraded_sweeps / self._sweeps

    def history(self) -> list[tuple[int, str, str]]:
        """(time, kind, detail) per recovery, for result annotation."""
        return [event.summary() for event in self.events]

    def _cooldown_ok(self) -> bool:
        return self._sweeps - self._last_recovery >= self.config.cooldown_sweeps

    # -- detectors -----------------------------------------------------
    def observe(self, fired: int, total: int) -> RecoveryEvent | None:
        """Report one probe sweep: ``fired`` of ``total`` sets saw misses.

        Returns the recovery taken this sweep (the consumer re-primes and,
        for a heal, swaps in ``event.payload``), or ``None``.
        """
        cfg = self.config
        self._sweeps += 1
        if total <= 0:
            return None
        saturated = fired >= max(1, math.ceil(total * cfg.saturation_fraction))
        quiet = fired == 0
        if saturated:
            self._sat_streak += 1
            self._idle_streak = 0
            self._degraded_sweeps += 1
        elif quiet:
            self._idle_streak += 1
            self._sat_streak = 0
            if self._idle_streak > cfg.idle_patience:
                self._degraded_sweeps += 1
        else:
            self._sat_streak = 0
            self._idle_streak = 0
        if self._sat_streak == cfg.detect_patience:
            self._count("saturation_detections", "saturation_detections")
        if self._idle_streak == cfg.idle_patience:
            self._count("idle_detections", "idle_detections")
        if not self._cooldown_ok():
            return None
        if self._sat_streak >= cfg.detect_patience:
            self._sat_streak = 0
            if self.stats.recalibrations < cfg.max_recalibrations:
                return self.recalibrate()
            # Recalibration budget spent and still saturated: the sets
            # themselves are suspect — escalate to a rebuild.
            return self.heal("saturation persists after recalibration budget")
        if self._idle_streak >= cfg.idle_patience:
            self._idle_streak = 0
            return self.heal("monitors dark past idle patience")
        return None

    def note_timeout(self) -> RecoveryEvent | None:
        """The chaser's expected buffer timed out once."""
        self._timeout_streak += 1
        if (
            self._timeout_streak >= self.config.chase_timeout_patience
            and self._cooldown_ok()
        ):
            self._timeout_streak = 0
            self._count("chase_resyncs", "chase_resyncs")
            # Sweep count stands in for time here; timeouts are long.
            self._sweeps += self.config.cooldown_sweeps
            return self.heal("chase timeouts past patience")
        return None

    def note_hit(self) -> None:
        """The chaser detected a fill: sync is live again."""
        self._timeout_streak = 0

    def note_sequence_sync_loss(self) -> None:
        """The sequencer recovered an empty sequence from live traffic."""
        self._count("sequence_sync_losses", "sequence_sync_losses")

    # -- recoveries ----------------------------------------------------
    def recalibrate(self) -> RecoveryEvent | None:
        """Re-measure the hit/miss threshold and push it everywhere."""
        self._last_recovery = self._sweeps
        try:
            result = calibrate_threshold(
                self.process, samples=self.config.recal_samples
            )
        except RuntimeError as error:
            self._count("recal_failures", "recal_failures")
            return self._event("recal_failed", str(error))
        self.threshold = result
        for es in self._tracked:
            es.threshold = result
        factory = self.factory
        if factory is not None:
            factory.threshold = result
            factory.builder.threshold = result
            for es in factory._cache.values():
                es.threshold = result
        self._count("recalibrations", "recalibrations")
        return self._event(
            "recalibrate",
            f"threshold {result.threshold:.1f} "
            f"(separation {result.separation:.1f}cy, "
            f"attempts {result.attempts})",
        )

    def heal(self, reason: str) -> RecoveryEvent | None:
        """Rebuild the consumer's monitors against the live mapping."""
        self._last_recovery = self._sweeps
        if self.healer is None or self.stats.heals >= self.config.max_heals:
            return None
        try:
            payload = self.healer()
        except RuntimeError as error:
            self._count("heal_failures", "heal_failures")
            return self._event("heal_failed", f"{reason}: {error}")
        if payload is None:
            self._count("heal_failures", "heal_failures")
            return self._event("heal_failed", f"{reason}: healer returned nothing")
        self._count("heals", "heals")
        return self._event("heal", reason, payload=payload)
