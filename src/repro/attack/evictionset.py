"""Eviction-set construction — the attacker's basic instrument.

An *eviction set* for a cache set is ``ways`` attacker-owned addresses that
all map to it; traversing the set replaces every other line there.  The spy
allocates **huge pages**, so it knows set-index bits of its own addresses
(bits 6..16 lie inside the 2 MB page), but the slice each address lands in
is decided by the undocumented hash — that part must be resolved by timing.

:class:`EvictionSetBuilder` does it the way real attacks do:

* ``reduce`` — group-testing reduction (Vila et al. style): shrink a pool
  that evicts a victim address down to a minimal ``ways``-element core.
* ``cluster_index`` — repeatedly reduce + classify-conflicts to split all
  candidate addresses of one set index into its per-slice conflict groups,
  giving one eviction set per (set index, slice).

Page-aligned buffers can only start in ``sets_per_slice / 64`` indices per
slice (the low 6 index bits are zero — Fig. 2 of the paper), i.e. 256 cache
sets total on the paper's machine: :func:`page_aligned_set_indices`.

:class:`OracleEvictionSetBuilder` produces identical grouping using
simulator introspection at zero simulated cost — used by experiments whose
subject is *not* eviction-set construction (e.g. channel capacity sweeps),
as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.attack.timing import LatencyThreshold
from repro.telemetry.quality import (
    quality_registry,
    record_evset_report,
    record_probe_latencies,
)


def page_aligned_set_indices(geometry, page_size: int = 4096) -> list[int]:
    """Set indices a page-aligned address can map to (multiples of 64)."""
    step = page_size // geometry.line_size
    if step >= geometry.sets_per_slice:
        return [0]
    return list(range(0, geometry.sets_per_slice, step))


class EvictionSet:
    """A probe-ready set of attacker addresses mapping to one cache set.

    ``probe`` traverses the addresses in the reverse of the previous
    traversal (the classic zig-zag), which both measures interference since
    the last probe and re-primes the set for the next one.
    """

    def __init__(
        self,
        process,
        addrs: list[int],
        threshold: LatencyThreshold,
        set_index: int | None = None,
        label: str = "",
    ) -> None:
        if not addrs:
            raise ValueError("eviction set needs at least one address")
        self.process = process
        self.addrs = list(addrs)
        self.threshold = threshold
        self.set_index = set_index
        self.label = label
        self._telemetry = process.machine.telemetry
        #: Physical addresses aligned with :attr:`addrs`, resolved lazily
        #: (translation is deterministic and the pages stay mapped).  One
        #: probe traversal then costs one batched machine call instead of
        #: one Python call per line.  The slice/set decomposition is
        #: cached alongside so the complex hash runs once per set ever.
        self._paddrs: np.ndarray | None = None
        self._flats: np.ndarray | None = None
        self._lines: np.ndarray | None = None
        #: Bumped on every zig-zag flip; lets sweep-level callers cache
        #: concatenated traversal arrays keyed by orientation.
        self.version = 0

    def __len__(self) -> int:
        return len(self.addrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvictionSet({self.label or self.set_index}, n={len(self.addrs)})"

    def paddrs(self) -> np.ndarray:
        """Physical addresses in current traversal order (cached)."""
        if self._paddrs is None:
            translate = self.process.addrspace.translate
            self._paddrs = np.fromiter(
                (translate(addr) for addr in self.addrs),
                np.int64,
                count=len(self.addrs),
            )
            self._flats, self._lines = self.process.machine.llc.decompose_many(
                self._paddrs
            )
        return self._paddrs

    def decomp(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(flats, lines)`` decomposition, traversal-order aligned."""
        self.paddrs()
        return self._flats, self._lines

    def probe_order_paddrs(self) -> np.ndarray:
        """The reverse-of-last-traversal order the next probe will use."""
        return self.paddrs()[::-1]

    def flip(self) -> None:
        """Record one zig-zag traversal (reverse the stored order)."""
        self.addrs.reverse()
        self.version += 1
        if self._paddrs is not None:
            self._paddrs = self._paddrs[::-1]
            self._flats = self._flats[::-1]
            self._lines = self._lines[::-1]

    def prime(self) -> None:
        """Fill the cache set with our lines (untimed traversal)."""
        self.process.machine.cpu_access_many(self.paddrs(), decomp=self.decomp())

    def probe(self) -> int:
        """Timed zig-zag traversal; returns the number of misses seen.

        One batched machine call covers the whole traversal — the classic
        per-line loop collapsed into :meth:`Machine.cpu_access_many`.
        """
        flats, lines = self.decomp()
        lats = self.process.machine.cpu_access_many(
            self.probe_order_paddrs(),
            timed=True,
            decomp=(flats[::-1], lines[::-1]),
        )
        self.flip()
        misses = int((lats > self.threshold.threshold).sum())
        tele = self._telemetry
        if tele is not None and tele.metrics.enabled:
            tele.metrics.histogram("probe.latency_cycles").observe_many(lats)
            tele.metrics.counter("probe.accesses").inc(len(self.addrs))
            if misses:
                tele.metrics.counter("probe.misses").inc(misses)
            registry = quality_registry(tele)
            if registry is not None:
                record_probe_latencies(registry, lats, self.threshold.threshold)
        return misses

    def probe_fast(self) -> int:
        """Probe without per-access timer overhead (one fence per set).

        Models an attacker timing the whole traversal instead of each load;
        returns misses inferred from aggregate latency.
        """
        machine = self.process.machine
        timing = machine.llc.timing
        flats, lines = self.decomp()
        lats = machine.cpu_access_many(
            self.probe_order_paddrs(), decomp=(flats[::-1], lines[::-1])
        )
        self.flip()
        total = int(lats.sum())
        machine.clock.advance(timing.measure_overhead)
        baseline = timing.llc_hit_latency * len(self.addrs)
        return max(
            0,
            round((total - baseline) / (timing.llc_miss_latency - timing.llc_hit_latency)),
        )


@dataclass
class ClusterReport:
    """Outcome of clustering one set index, with degradation accounting.

    Under injected noise, group-testing reductions can fail spuriously;
    rather than silently returning fewer groups, the builder reports how
    many of the expected per-slice groups it found (``confidence``) and how
    many reduction retries the noise cost, so consumers can decide whether
    a partial monitor list is good enough to attack with.
    """

    set_index: int
    groups: list["EvictionSet"] = field(default_factory=list)
    expected: int = 0
    retries: int = 0
    failed_reductions: int = 0

    @property
    def confidence(self) -> float:
        """Fraction of expected conflict groups actually resolved."""
        if self.expected <= 0:
            return 1.0
        return min(1.0, len(self.groups) / self.expected)


class EvictionSetBuilder:
    """Timing-only construction of eviction sets from huge-page memory.

    ``reduce_attempts`` bounds retry-with-backoff around failed group-test
    reductions.  ``None`` (the default) resolves to 1 on a quiet machine —
    the historical single-shot behaviour, bit-identical to older builds —
    and to 3 when the machine carries an active fault plan, where spurious
    reduction failures are expected and worth retrying.
    """

    #: Base idle-cycles backoff before a reduction retry (doubles per retry).
    RETRY_BACKOFF_CYCLES = 50_000

    def __init__(
        self,
        process,
        threshold: LatencyThreshold,
        huge_pages: int = 16,
        ways: int | None = None,
        reduce_attempts: int | None = None,
    ) -> None:
        self.process = process
        machine = process.machine
        self.geometry = machine.llc.geometry
        self.ways = ways or self.geometry.ways
        self.threshold = threshold
        self.huge_page_bytes = 2 * 1024 * 1024
        self.n_huge_pages = huge_pages
        self.base = process.mmap_huge(huge_pages)
        self._line = self.geometry.line_size
        self._index_span = self.geometry.sets_per_slice * self._line
        if reduce_attempts is None:
            reduce_attempts = 3 if getattr(machine, "faults", None) is not None else 1
        if reduce_attempts < 1:
            raise ValueError(f"reduce_attempts must be >= 1, got {reduce_attempts}")
        self.reduce_attempts = reduce_attempts

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def candidates(self, set_index: int, limit: int | None = None) -> list[int]:
        """All addresses in our huge pages with the given set index."""
        if not 0 <= set_index < self.geometry.sets_per_slice:
            raise ValueError(f"set_index {set_index} out of range")
        total = self.n_huge_pages * self.huge_page_bytes
        out = []
        offset = set_index * self._line
        while offset < total:
            out.append(self.base + offset)
            offset += self._index_span
            if limit is not None and len(out) >= limit:
                break
        return out

    # ------------------------------------------------------------------
    # Timing primitives
    # ------------------------------------------------------------------
    def evicts(self, addrs: list[int], victim: int) -> bool:
        """Does traversing ``addrs`` evict ``victim``?  (access, traverse,
        time the re-access).

        The traversal goes through one batched machine call — semantically
        one :meth:`Process.access` per address, in order — because group
        testing issues O(pool log pool) of these and the per-call Python
        overhead dominated construction cost.
        """
        process = self.process
        process.access(victim)
        if addrs:
            process.access_many(
                np.fromiter(addrs, np.int64, count=len(addrs))
            )
        return self.threshold.is_miss(process.timed_access(victim))

    def reduce(self, pool: list[int], victim: int) -> list[int] | None:
        """Group-testing reduction to a minimal eviction set for ``victim``.

        Returns ``ways`` addresses that conflict with ``victim``, or None if
        the pool doesn't contain enough same-set addresses.
        """
        working = list(pool)
        if not self.evicts(working, victim):
            return None
        while len(working) > self.ways:
            n_chunks = self.ways + 1
            chunk_size = -(-len(working) // n_chunks)
            for start in range(0, len(working), chunk_size):
                trial = working[:start] + working[start + chunk_size:]
                if trial and self.evicts(trial, victim):
                    working = trial
                    break
            else:
                # No chunk removable: pool has barely more than `ways`
                # same-set members spread across every chunk.  Fall back to
                # one-at-a-time removal.
                reduced = False
                for i in range(len(working)):
                    trial = working[:i] + working[i + 1:]
                    if trial and self.evicts(trial, victim):
                        working = trial
                        reduced = True
                        break
                if not reduced:
                    return None
        return working if self.evicts(working, victim) else None

    def reduce_with_retry(
        self, pool: list[int], victim: int
    ) -> tuple[list[int] | None, int]:
        """:meth:`reduce` with bounded retry-with-backoff.

        A reduction that fails under noise (a jittered measurement
        misclassifying one eviction test) often succeeds on a quieter
        retry; each retry first idles exponentially longer to let
        in-flight interference drain.  Returns ``(core, retries_used)``.
        """
        retries = 0
        for attempt in range(self.reduce_attempts):
            if attempt:
                self.process.compute(self.RETRY_BACKOFF_CYCLES << (attempt - 1))
                retries += 1
            core = self.reduce(list(pool), victim)
            if core is not None:
                return core, retries
        return None, retries

    def conflicts(self, es: EvictionSet, addr: int) -> bool:
        """Does ``addr`` map to the same cache set as ``es``?"""
        es.prime()
        self.process.access(addr)
        return es.probe() > 0

    # ------------------------------------------------------------------
    # Clustering
    # ------------------------------------------------------------------
    def cluster_index(
        self, set_index: int, n_groups: int | None = None
    ) -> list[EvictionSet]:
        """Split one set index's candidates into per-slice conflict groups.

        Returns up to ``n_groups`` (default: slice count) eviction sets.
        Group order is arbitrary — the attacker cannot name slices, only
        distinguish them.
        """
        return self.cluster_index_report(set_index, n_groups).groups

    def cluster_index_report(
        self, set_index: int, n_groups: int | None = None
    ) -> ClusterReport:
        """:meth:`cluster_index` with partial-result accounting.

        The returned report carries whatever groups were resolved plus a
        confidence score (groups found / groups expected) and retry
        counts, so a noisy run degrades to a smaller monitor list instead
        of an exception.

        Under a randomized index backend (``keyed``/``skewed`` — see
        :mod:`repro.cache.backends`) the huge-page set-index bits no
        longer predict placement, so a "set index" pool scatters over
        many cache sets and most reductions fail: the same accounting
        then reports the attacker's *degraded* reality (low confidence,
        high ``failed_reductions``) rather than raising — exactly what
        the ``randomized-cache`` experiment measures.
        """
        n_groups = n_groups or self.geometry.n_slices
        report = ClusterReport(set_index=set_index, expected=n_groups)
        remaining = self.candidates(set_index)
        groups = report.groups
        while remaining and len(groups) < n_groups:
            victim = remaining.pop(0)
            core, retries = self.reduce_with_retry(remaining, victim)
            report.retries += retries
            if core is None:
                report.failed_reductions += 1
                continue
            es = EvictionSet(
                self.process,
                core,
                self.threshold,
                set_index=set_index,
                label=f"idx{set_index}.g{len(groups)}",
            )
            core_set = set(core)
            keep = []
            for addr in remaining:
                if addr in core_set:
                    continue
                if not self.conflicts(es, addr):
                    keep.append(addr)
            remaining = keep
            groups.append(es)
        registry = quality_registry(self.process.machine.telemetry)
        if registry is not None:
            record_evset_report(registry, report)
        return report

    def build_page_aligned_groups(
        self, block: int = 0, page_size: int = 4096
    ) -> list[EvictionSet]:
        """Eviction sets for every (page-aligned set index + block, slice).

        ``block`` shifts the target from buffer block 0 to block ``k`` (the
        paper constructs these to read packet *sizes*).
        """
        groups: list[EvictionSet] = []
        for index in page_aligned_set_indices(self.geometry, page_size):
            target = (index + block) % self.geometry.sets_per_slice
            groups.extend(self.cluster_index(target))
        return groups


class OracleEvictionSetBuilder:
    """Eviction sets grouped by simulator ground truth (zero probe cost).

    The returned sets are *real* attacker addresses in the simulated cache —
    only the grouping labour is skipped.  ``label`` encodes the true
    (slice, set) for experiment bookkeeping.
    """

    def __init__(
        self,
        process,
        threshold: LatencyThreshold,
        huge_pages: int = 16,
        ways: int | None = None,
    ) -> None:
        self.process = process
        machine = process.machine
        self.llc = machine.llc
        self.geometry = machine.llc.geometry
        self.ways = ways or self.geometry.ways
        self.threshold = threshold
        self.huge_page_bytes = 2 * 1024 * 1024
        self.n_huge_pages = huge_pages
        self.base = process.mmap_huge(huge_pages)
        self._line = self.geometry.line_size
        self._index_span = self.geometry.sets_per_slice * self._line
        #: vaddrs of every huge-page line bucketed by true flat set id,
        #: rebuilt when the LLC's mapping epoch changes (a re-key moves
        #: every line to a new set).
        self._flat_groups_cache: dict[int, list[int]] | None = None
        self._flat_groups_epoch = -1

    def groups_for_index(self, set_index: int) -> dict[int, EvictionSet]:
        """slice id -> eviction set, for one set index."""
        by_slice: dict[int, list[int]] = defaultdict(list)
        total = self.n_huge_pages * self.huge_page_bytes
        offset = set_index * self._line
        translate = self.process.addrspace.translate
        while offset < total:
            vaddr = self.base + offset
            paddr = translate(vaddr)
            by_slice[self.llc.slice_of(paddr)].append(vaddr)
            offset += self._index_span
        out: dict[int, EvictionSet] = {}
        for slice_id, addrs in sorted(by_slice.items()):
            if len(addrs) < self.ways:
                continue
            out[slice_id] = EvictionSet(
                self.process,
                addrs[: self.ways],
                self.threshold,
                set_index=set_index,
                label=f"idx{set_index}.s{slice_id}",
            )
        return out

    def group_for(self, set_index: int, slice_id: int) -> EvictionSet:
        """The eviction set covering one exact (set index, slice)."""
        groups = self.groups_for_index(set_index)
        try:
            return groups[slice_id]
        except KeyError:
            raise RuntimeError(
                f"not enough huge-page candidates for idx {set_index} "
                f"slice {slice_id}; map more huge pages"
            ) from None

    # ------------------------------------------------------------------
    # Flat-set grouping (index-backend agnostic)
    # ------------------------------------------------------------------
    def _flat_groups(self) -> dict[int, list[int]]:
        """vaddr buckets keyed by true flat set id over all huge pages.

        :meth:`groups_for_index` assumes the modulo index function (set
        bits of the address pick the set); under a randomized backend
        that shortcut is wrong, so this path asks the mapping itself via
        :meth:`~repro.cache.llc.SlicedLLC.decompose_many`.  The scan is
        vectorised per huge page (physically contiguous) and cached
        until the mapping's epoch changes.
        """
        epoch = self.llc.mapping_epoch
        if self._flat_groups_cache is not None and self._flat_groups_epoch == epoch:
            return self._flat_groups_cache
        translate = self.process.addrspace.translate
        lines_per_page = self.huge_page_bytes // self._line
        offsets = np.arange(lines_per_page, dtype=np.int64) * self._line
        by_flat: dict[int, list[int]] = defaultdict(list)
        for page in range(self.n_huge_pages):
            page_vaddr = self.base + page * self.huge_page_bytes
            page_paddr = translate(page_vaddr)
            flats, _lines = self.llc.decompose_many(page_paddr + offsets)
            for off, flat in zip(offsets.tolist(), flats.tolist()):
                by_flat[flat].append(page_vaddr + off)
        self._flat_groups_cache = by_flat
        self._flat_groups_epoch = epoch
        return by_flat

    def group_for_flat(self, flat: int, label: str = "") -> EvictionSet:
        """The eviction set covering one flat set id, however it's mapped.

        Works for every index backend — the grouping consults the live
        mapping, not address bits — and is the monitor-placement oracle
        the ``randomized-cache`` experiment uses for its sequence and
        covert legs (construction *cost* is measured separately by the
        timing-based builder).
        """
        addrs = self._flat_groups().get(flat, [])
        if len(addrs) < self.ways:
            raise RuntimeError(
                f"not enough huge-page candidates for flat set {flat} "
                f"({len(addrs)} < {self.ways}); map more huge pages"
            )
        return EvictionSet(
            self.process,
            addrs[: self.ways],
            self.threshold,
            set_index=None,
            label=label or f"flat{flat}",
        )

    def build_page_aligned_groups(
        self, block: int = 0, page_size: int = 4096
    ) -> list[EvictionSet]:
        """Oracle-grouped counterpart of the timing-based bulk builder."""
        groups: list[EvictionSet] = []
        for index in page_aligned_set_indices(self.geometry, page_size):
            target = (index + block) % self.geometry.sets_per_slice
            groups.extend(self.groups_for_index(target).values())
        return groups
