"""The Packet Chasing attack: everything the spy process does.

The attacker is an unprivileged process with **no network access**.  All it
can do is map memory, access it, and time those accesses.  From that alone
(Sections III-V of the paper) it:

1. calibrates a hit/miss latency threshold
   (:mod:`repro.attack.timing`);
2. builds eviction sets for the 256 page-aligned cache sets where rx
   buffers can start (:mod:`repro.attack.evictionset`);
3. PRIME+PROBEs them to find which sets actually host ring buffers and to
   observe packet arrivals and sizes
   (:mod:`repro.attack.primeprobe`, :mod:`repro.attack.discovery`);
4. recovers the ring's fill *order* with the SEQUENCER algorithm
   (:mod:`repro.attack.sequencer`);
5. chases packets buffer-to-buffer (:mod:`repro.attack.chase`);
6. mounts the remote covert channel (:mod:`repro.attack.covert`) and the
   web-fingerprinting side channel (:mod:`repro.attack.fingerprint`).
"""

from repro.attack.chase import BufferMonitor, PacketChaser
from repro.attack.discovery import RingDiscovery
from repro.attack.evictionset import (
    EvictionSet,
    EvictionSetBuilder,
    OracleEvictionSetBuilder,
)
from repro.attack.primeprobe import ProbeMonitor
from repro.attack.sequencer import Sequencer, SequencerConfig
from repro.attack.timing import LatencyThreshold, calibrate_threshold

__all__ = [
    "BufferMonitor",
    "PacketChaser",
    "RingDiscovery",
    "EvictionSet",
    "EvictionSetBuilder",
    "OracleEvictionSetBuilder",
    "ProbeMonitor",
    "Sequencer",
    "SequencerConfig",
    "LatencyThreshold",
    "calibrate_threshold",
]
