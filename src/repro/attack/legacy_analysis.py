"""Frozen scalar attack-analysis pipeline — the pre-columnar reference.

Verbatim copies of the pure-Python loops that consumed
``SampleTrace.samples`` as ``list[list[int]]`` before the trace went
columnar: the sequencer's successor-graph build and greedy walk
(Algorithm 1 steps 2-3), the discovery layer's block-set co-occurrence
scoring, the covert receiver's per-sample window-decode state machine,
and the per-set activity summaries.  They are the ground truth for
``tests/test_analysis_equivalence.py`` — every live vectorised
counterpart must reproduce these outputs bit for bit, including dict
insertion order (which decides tie-breaking in ``max``) and append
order.  Do not modify this file; its value is that it never changes.
"""

from __future__ import annotations

from typing import Sequence


def legacy_build_graph(
    samples: Sequence[Sequence[int]], miss_threshold: int
) -> dict[tuple[int, int], dict[int, int]]:
    """graph[(prev, curr)][cand] = transition count, one node of history."""
    graph: dict[tuple[int, int], dict[int, int]] = {}
    prev = curr = 0
    for row in samples:
        for cand, misses in enumerate(row):
            if misses < miss_threshold:
                continue
            if curr != prev:  # no self-loop context
                edge = graph.setdefault((prev, curr), {})
                edge[cand] = edge.get(cand, 0) + 1
            prev, curr = curr, cand
    return graph


def legacy_get_root(graph: dict[tuple[int, int], dict[int, int]]) -> tuple[int, int]:
    """Heaviest edge; insertion order breaks ties (first edge wins)."""
    best_edge, best_weight = None, -1
    for edge, successors in graph.items():
        weight = max(successors.values(), default=0)
        if weight > best_weight:
            best_edge, best_weight = edge, weight
    if best_edge is None:
        raise RuntimeError("empty transition graph: no activity observed")
    return best_edge


def legacy_make_sequence(
    graph: dict[tuple[int, int], dict[int, int]],
    n_groups: int,
    weight_cutoff: int,
) -> list[int]:
    """Greedy heaviest-successor walk; mutates ``graph`` (visited -> 0)."""
    root = legacy_get_root(graph)
    prev, curr = root
    sequence: list[int] = []
    max_steps = 8 * n_groups
    for _ in range(max_steps):
        sequence.append(curr)
        successors = graph.get((prev, curr), {})
        if not successors:
            break
        nxt = max(successors, key=successors.get)
        weight = successors[nxt]
        if weight < weight_cutoff:
            break
        successors[nxt] = 0  # mark visited
        prev, curr = curr, nxt
        if (prev, curr) == root:
            break
    return sequence


def legacy_block_scores(
    samples: Sequence[Sequence[int]], n_candidates: int
) -> list[int]:
    """Per-candidate ``2 * co_occurrence - total_activity`` score, where
    row[0] is the buffer's block-0 (clock) set and rows 1.. are the slice
    candidates."""
    co_counts = [0] * n_candidates
    totals = [0] * n_candidates
    for row in samples:
        clock_active = row[0] > 0
        for j in range(n_candidates):
            if row[1 + j]:
                totals[j] += 1
                if clock_active:
                    co_counts[j] += 1
    return [2 * co_counts[j] - totals[j] for j in range(n_candidates)]


def legacy_decode_activity(
    clock_rows: Sequence[Sequence[bool]],
    b2_rows: Sequence[Sequence[bool]],
    b3_rows: Sequence[Sequence[bool]],
    times: Sequence[int],
    window: int,
    alphabet: int,
    n_symbols: int,
) -> list[tuple[int, int, int]]:
    """The covert receiver's window state machine over recorded activity.

    Rows are sample-major, one bool per monitored stream.  Returns
    ``(time, stream, symbol)`` tuples in the exact order the legacy
    ``CovertReceiver.listen`` loop appended them (the n_symbols budget is
    checked at the top of each sample, so the final sample may decode
    past the target, exactly as the live loop does).
    """
    from repro.attack.covert import symbol_from_blocks

    n_streams = len(clock_rows[0]) if clock_rows else 0
    countdown = [0] * n_streams
    b2_seen = [False] * n_streams
    b3_seen = [False] * n_streams
    decoded: list[tuple[int, int, int]] = []
    for i in range(len(clock_rows)):
        if len(decoded) >= n_symbols:
            break
        now = times[i]
        for k in range(n_streams):
            clock_active = clock_rows[i][k]
            b2 = b2_rows[i][k]
            b3 = b3_rows[i][k]
            if countdown[k] > 0:
                b2_seen[k] = b2_seen[k] or b2
                b3_seen[k] = b3_seen[k] or b3
                countdown[k] -= 1
                if countdown[k] == 0:
                    decoded.append(
                        (now, k, symbol_from_blocks(b2_seen[k], b3_seen[k], alphabet))
                    )
            elif clock_active:
                countdown[k] = window - 1
                b2_seen[k] = b2
                b3_seen[k] = b3
                if countdown[k] == 0:
                    decoded.append((now, k, symbol_from_blocks(b2, b3, alphabet)))
    return decoded


def legacy_activity_counts(samples: Sequence[Sequence[int]], n_sets: int) -> list[int]:
    """Per-set count of samples with at least one miss."""
    counts = [0] * n_sets
    for row in samples:
        for j, misses in enumerate(row):
            if misses > 0:
                counts[j] += 1
    return counts


def legacy_activity_fraction(
    samples: Sequence[Sequence[int]], n_sets: int
) -> list[float]:
    """Per-set fraction of active samples."""
    if not samples:
        return [0.0] * n_sets
    counts = legacy_activity_counts(samples, n_sets)
    return [c / len(samples) for c in counts]
