"""Ring-buffer sequence recovery — Algorithm 1 of the paper.

The spy watches a subset of the page-aligned sets while packets stream in,
then reconstructs the *order* in which the ring's buffers fill:

1. ``GET_CLEAN_SAMPLES`` — probe the monitored sets; sets that appear to
   miss on (almost) every sample are unusable, so they are swapped for the
   set holding the buffer's *second* cache block (same buffer, different
   set index), exactly as the paper prescribes.
2. ``BUILD_GRAPH`` — a weighted successor graph with **one node of
   history**: the edge keyed ``(prev, curr) -> cand`` counts how often
   activity on ``cand`` immediately followed activity on ``curr`` which
   itself followed ``prev``.  The history disambiguates two buffers that
   share a cache set (Fig. 9).
3. ``MAKE_SEQUENCE`` — walk the graph greedily from a root edge, always
   taking the heaviest unvisited successor, until the walk returns to the
   root or the edge weight falls below the cutoff.

``recover_full_ring`` repeats the procedure with a sliding window of known
sets plus one candidate, placing every monitored set into the ring
(Section III-C: "we repeat the SEQUENCER procedure with the first 31 nodes
plus a candidate node").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.attack.evictionset import EvictionSet
from repro.attack.primeprobe import ProbeMonitor, SampleTrace
from repro.telemetry.quality import quality_registry, record_sequence_recovery


def transition_graph(
    matrix: np.ndarray, miss_threshold: int
) -> dict[tuple[int, int], dict[int, int]]:
    """BUILD_GRAPH over a columnar sample matrix, vectorised.

    The scalar reference walks the activity events in row-major order
    carrying one node of history and counts each ``(prev, curr) -> cand``
    triple where ``curr != prev``.  Row-major ``np.nonzero`` yields that
    same event stream, so the triples are three shifted views of it; the
    counting collapses to one ``np.unique`` over integer-encoded triples.
    The returned dict reproduces the reference's insertion order exactly
    (edges and successors appear at their first triple occurrence), which
    is what breaks ties in the greedy walk — pinned against
    ``legacy_build_graph`` in ``tests/test_analysis_equivalence.py``.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        return {}
    events = np.nonzero(matrix >= miss_threshold)[1]
    n_events = events.size
    if n_events == 0:
        return {}
    # The walk starts from prev = curr = 0: event k sees
    # curr = events[k-1] (or 0) and prev = events[k-2] (or 0).
    currs = np.empty(n_events, dtype=np.int64)
    prevs = np.zeros(n_events, dtype=np.int64)
    currs[0] = 0
    currs[1:] = events[:-1]
    prevs[2:] = events[:-2]
    keep = currs != prevs  # no self-loop context
    if not keep.any():
        return {}
    n_sets = matrix.shape[1]
    codes = (prevs[keep] * n_sets + currs[keep]) * n_sets + events[keep]
    uniq, first_seen, counts = np.unique(
        codes, return_index=True, return_counts=True
    )
    graph: dict[tuple[int, int], dict[int, int]] = {}
    for u in np.argsort(first_seen, kind="stable"):
        code = int(uniq[u])
        cand = code % n_sets
        rest = code // n_sets
        edge = (int(rest // n_sets), int(rest % n_sets))
        graph.setdefault(edge, {})[cand] = int(counts[u])
    return graph


def greedy_sequence(
    graph: dict[tuple[int, int], dict[int, int]],
    root: tuple[int, int],
    max_steps: int,
    weight_cutoff: int,
) -> list[int]:
    """MAKE_SEQUENCE's greedy walk on dense per-edge weight arrays.

    Each edge's successor dict becomes a pair of (candidate, weight)
    arrays in insertion order, so the heaviest-successor choice is one
    ``argmax`` whose first-of-ties semantics match ``max(d, key=d.get)``
    on the dict.  Visited successors are zeroed in the local arrays —
    the input graph is left unmodified (the reference zeroed entries in
    the shared dict, but no caller reads the post-walk weights).
    """
    arrays = {
        edge: (
            np.fromiter(succ, np.int64, count=len(succ)),
            np.fromiter(succ.values(), np.int64, count=len(succ)),
        )
        for edge, succ in graph.items()
    }
    prev, curr = root
    sequence: list[int] = []
    for _ in range(max_steps):
        sequence.append(curr)
        entry = arrays.get((prev, curr))
        if entry is None or entry[0].size == 0:
            break
        cands, weights = entry
        pick = int(np.argmax(weights))
        weight = int(weights[pick])
        if weight < weight_cutoff:
            break
        weights[pick] = 0  # mark visited
        prev, curr = curr, int(cands[pick])
        if (prev, curr) == root:
            break
    return sequence


@dataclass
class SequencerConfig:
    """Tuning parameters (Table I defaults, scaled by experiments)."""

    n_samples: int = 10_000
    wait_cycles: int = 0
    #: A set active in more than this fraction of samples is "always miss".
    activity_cutoff: float = 0.85
    #: Minimum misses in a sample to count as activity.
    miss_threshold: int = 1
    #: Minimum edge weight to keep walking in MAKE_SEQUENCE.
    weight_cutoff: int = 2
    #: Maximum clean-sample retries (replacing noisy sets).
    max_retries: int = 2


class Sequencer:
    """Recovers the fill order of the monitored cache sets."""

    def __init__(
        self,
        process,
        groups: list[EvictionSet],
        config: SequencerConfig | None = None,
        replacement_provider: Callable[[int, EvictionSet], EvictionSet | None] | None = None,
        supervisor=None,
    ) -> None:
        if len(groups) < 3:
            raise ValueError("sequencing needs at least 3 monitored sets")
        self.process = process
        self.groups = list(groups)
        self.config = config or SequencerConfig()
        #: always-miss sets swapped for their block-1 replacement so far
        self._replaced_sets = 0
        #: Called with (group_index, eviction_set) when a set is too noisy;
        #: returns the block-1 replacement set, or None to keep the set.
        self.replacement_provider = replacement_provider
        #: Optional :class:`~repro.attack.adaptive.AdaptiveSupervisor`:
        #: forwarded into each sampling :class:`ProbeMonitor` (in-flight
        #: recalibration / healing) and consulted once more when recovery
        #: yields an empty sequence (sync loss -> one full retry).
        self.supervisor = supervisor

    # ------------------------------------------------------------------
    # Step 1: clean samples
    # ------------------------------------------------------------------
    def get_clean_samples(self) -> SampleTrace:
        """Sample the monitor list, replacing always-miss sets."""
        cfg = self.config
        for _attempt in range(cfg.max_retries + 1):
            monitor = ProbeMonitor(
                self.process, self.groups, supervisor=self.supervisor
            )
            trace = monitor.sample(cfg.n_samples, cfg.wait_cycles)
            if self.supervisor is not None:
                # A mid-sample heal may have rebuilt the monitor list.
                self.groups = list(monitor.sets)
            noisy = [
                j
                for j, fraction in enumerate(trace.activity_fraction())
                if fraction > cfg.activity_cutoff
            ]
            if not noisy or self.replacement_provider is None:
                return trace
            replaced_any = False
            replaced_count = 0
            for j in noisy:
                replacement = self.replacement_provider(j, self.groups[j])
                if replacement is not None:
                    self.groups[j] = replacement
                    replaced_any = True
                    replaced_count += 1
            self._replaced_sets += replaced_count
            if not replaced_any:
                return trace
        return trace

    # ------------------------------------------------------------------
    # Step 2: successor graph with one-node history
    # ------------------------------------------------------------------
    def build_graph(self, trace: SampleTrace) -> dict[tuple[int, int], dict[int, int]]:
        """graph[(prev, curr)][cand] = observed transition count."""
        return transition_graph(trace.samples, self.config.miss_threshold)

    # ------------------------------------------------------------------
    # Step 3: greedy traversal
    # ------------------------------------------------------------------
    @staticmethod
    def _get_root(graph: dict[tuple[int, int], dict[int, int]]) -> tuple[int, int]:
        """Heaviest edge in the graph — a reliable starting context."""
        best_edge, best_weight = None, -1
        for edge, successors in graph.items():
            weight = max(successors.values(), default=0)
            if weight > best_weight:
                best_edge, best_weight = edge, weight
        if best_edge is None:
            raise RuntimeError("empty transition graph: no activity observed")
        return best_edge

    def make_sequence(self, graph: dict[tuple[int, int], dict[int, int]]) -> list[int]:
        """Walk the graph from the root until returning to it."""
        root = self._get_root(graph)
        return greedy_sequence(
            graph, root, 8 * len(self.groups), self.config.weight_cutoff
        )

    def recover(self) -> tuple[list[int], SampleTrace]:
        """Full pipeline: samples -> graph -> sequence of group indices.

        A trace with no usable transitions (all packets lost, monitors all
        dark) yields an *empty sequence*, not an exception: the channel is
        lossy by nature and a caller holding partial results must be able
        to continue (``make_sequence`` still raises when invoked directly
        on an empty graph — only the pipeline degrades).
        """
        trace = self.get_clean_samples()
        graph = self.build_graph(trace)
        sequence = [] if not graph else self.make_sequence(graph)
        if not sequence and self.supervisor is not None:
            # Sync loss: the whole sampling window saw no usable
            # transitions.  Note it and retry once — the supervisor's
            # in-flight recoveries (threshold refresh, healed sets) make
            # the second window a genuinely different measurement.
            self.supervisor.note_sequence_sync_loss()
            trace = self.get_clean_samples()
            graph = self.build_graph(trace)
            sequence = [] if not graph else self.make_sequence(graph)
        registry = quality_registry(self.process.machine.telemetry)
        if registry is not None:
            record_sequence_recovery(
                registry,
                n_sets=len(self.groups),
                graph_edges=sum(len(s) for s in graph.values()),
                sequence_len=len(sequence),
                activity=trace.activity_fraction(),
                replaced_sets=self._replaced_sets,
            )
        return sequence, trace


def place_candidate(master: list[int], window: list[int], candidate: int) -> list[int]:
    """Insert ``candidate`` into ``master`` using a recovered ``window``.

    ``window`` is a sequence over known elements plus ``candidate``; the
    candidate is inserted between the neighbours it was observed between.
    Returns a new list (master unchanged if the window never placed it).
    """
    if candidate not in window:
        return list(master)
    pos = window.index(candidate)
    before = window[pos - 1] if pos > 0 else None
    after = window[(pos + 1) % len(window)] if len(window) > 1 else None
    out = list(master)
    if before is not None:
        for i, element in enumerate(out):
            nxt = out[(i + 1) % len(out)] if out else None
            if element == before and (after is None or nxt == after):
                out.insert(i + 1, candidate)
                return out
        # Fall back: first occurrence of `before`.
        for i, element in enumerate(out):
            if element == before:
                out.insert(i + 1, candidate)
                return out
    out.append(candidate)
    return out


def recover_full_ring(
    process,
    groups: list[EvictionSet],
    config: SequencerConfig | None = None,
    window_size: int = 32,
    replacement_provider=None,
) -> list[int]:
    """Sequence *all* monitored groups by sliding-window extension.

    First recovers the order of the initial ``window_size`` groups, then
    repeatedly sequences 31 known sets plus one new candidate to place every
    remaining group (Section III-C).  Returns indices into ``groups``.
    """
    config = config or SequencerConfig()
    if len(groups) <= window_size:
        sequencer = Sequencer(process, groups, config, replacement_provider)
        sequence, _trace = sequencer.recover()
        return sequence

    base = groups[:window_size]
    sequencer = Sequencer(process, base, config, replacement_provider)
    master, _trace = sequencer.recover()
    for cand_idx in range(window_size, len(groups)):
        known = list(dict.fromkeys(master))[: window_size - 1]
        window_groups = [groups[i] for i in known] + [groups[cand_idx]]
        if len(window_groups) < 3:
            # Too few placed sets to form a window (a lossy run recovered
            # almost nothing): append unplaced rather than abort the ring.
            master = master + [cand_idx]
            continue
        sub = Sequencer(process, window_groups, config, replacement_provider)
        window_seq, _ = sub.recover()
        # Translate window-local indices back to master indices.
        translated = [
            known[i] if i < len(known) else cand_idx for i in window_seq
        ]
        master = place_candidate(master, translated, cand_idx)
    return master
