"""Latency threshold calibration.

Before anything else, a PRIME+PROBE attacker must learn what "hit" and
"miss" look like on its machine.  The spy measures both distributions using
only its own memory: a line accessed twice in a row is a hit; a line that
was flushed (or conflict-evicted) is a miss.  The decision threshold is the
midpoint of the two means — simple, and robust given the wide hit/miss gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean


@dataclass(frozen=True)
class LatencyThreshold:
    """Calibrated hit/miss discrimination."""

    hit_mean: float
    miss_mean: float
    threshold: float

    def is_miss(self, latency: int) -> bool:
        """Classify one measured access latency."""
        return latency > self.threshold


def calibrate_threshold(process, samples: int = 64) -> LatencyThreshold:
    """Measure hit and miss latency distributions and pick a threshold.

    ``process`` is a :class:`repro.core.machine.Process`.  The calibration
    maps one scratch page, then alternates hit measurements (re-access) and
    miss measurements (flush + access).
    """
    if samples < 4:
        raise ValueError(f"need at least 4 samples, got {samples}")
    scratch = process.mmap(1)
    line = process.machine.llc.geometry.line_size
    lines_per_page = process.machine.physmem.page_size // line

    hits: list[int] = []
    misses: list[int] = []
    for i in range(samples):
        vaddr = scratch + (i % lines_per_page) * line
        process.access(vaddr)  # ensure resident
        hits.append(process.timed_access(vaddr))
        process.flush(vaddr)
        misses.append(process.timed_access(vaddr))

    hit_mean = mean(hits)
    miss_mean = mean(misses)
    if miss_mean <= hit_mean:
        raise RuntimeError(
            "calibration failed: miss latency not above hit latency "
            f"(hit={hit_mean:.1f}, miss={miss_mean:.1f})"
        )
    return LatencyThreshold(
        hit_mean=hit_mean,
        miss_mean=miss_mean,
        threshold=(hit_mean + miss_mean) / 2.0,
    )
