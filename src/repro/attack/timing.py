"""Latency threshold calibration.

Before anything else, a PRIME+PROBE attacker must learn what "hit" and
"miss" look like on its machine.  The spy measures both distributions using
only its own memory: a line accessed twice in a row is a hit; a line that
was flushed (or conflict-evicted) is a miss.  The decision threshold is the
midpoint of the two means — simple, and robust given the wide hit/miss gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean
from repro.telemetry.quality import quality_registry, record_calibration


@dataclass(frozen=True)
class LatencyThreshold:
    """Calibrated hit/miss discrimination."""

    hit_mean: float
    miss_mean: float
    threshold: float

    def is_miss(self, latency: int) -> bool:
        """Classify one measured access latency."""
        return latency > self.threshold


@dataclass(frozen=True)
class CalibrationResult(LatencyThreshold):
    """A :class:`LatencyThreshold` plus how hard it was to obtain.

    ``attempts`` is the number of calibration passes run (1 on a quiet
    machine), ``samples_used`` the per-distribution sample count of the
    successful pass, and ``separation`` the final miss-minus-hit mean gap
    in cycles — the margin a drifting noise floor eats into.  Being a
    subclass, it flows everywhere a plain threshold does.
    """

    attempts: int = 1
    samples_used: int = 0
    separation: float = 0.0


def calibrate_threshold(
    process, samples: int = 64, max_attempts: int = 3
) -> CalibrationResult:
    """Measure hit and miss latency distributions and pick a threshold.

    ``process`` is a :class:`repro.core.machine.Process`.  The calibration
    maps one scratch page, then alternates hit measurements (re-access) and
    miss measurements (flush + access).

    Under measurement jitter (an active fault plan) a single pass can fail
    to separate the distributions; the calibration then retries with a
    doubled sample count, up to ``max_attempts`` passes, before giving up.
    On a quiet machine the first pass always succeeds, so the retry path
    adds no accesses there.
    """
    if samples < 4:
        raise ValueError(f"need at least 4 samples, got {samples}")
    if max_attempts < 1:
        raise ValueError(f"need at least 1 attempt, got {max_attempts}")
    scratch = process.mmap(1)
    line = process.machine.llc.geometry.line_size
    lines_per_page = process.machine.physmem.page_size // line

    hit_mean = miss_mean = 0.0
    for attempt in range(max_attempts):
        hits: list[int] = []
        misses: list[int] = []
        for i in range(samples):
            vaddr = scratch + (i % lines_per_page) * line
            process.access(vaddr)  # ensure resident
            hits.append(process.timed_access(vaddr))
            process.flush(vaddr)
            misses.append(process.timed_access(vaddr))

        hit_mean = mean(hits)
        miss_mean = mean(misses)
        if miss_mean > hit_mean:
            threshold = (hit_mean + miss_mean) / 2.0
            registry = quality_registry(process.machine.telemetry)
            if registry is not None:
                record_calibration(registry, hits, misses, threshold, attempt + 1)
            return CalibrationResult(
                hit_mean=hit_mean,
                miss_mean=miss_mean,
                threshold=threshold,
                attempts=attempt + 1,
                samples_used=samples,
                separation=miss_mean - hit_mean,
            )
        samples *= 2  # backoff: average the noise down before retrying
    raise RuntimeError(
        f"calibration failed after {max_attempts} attempt(s): miss latency "
        f"not above hit latency (hit={hit_mean:.1f}, miss={miss_mean:.1f})"
    )
