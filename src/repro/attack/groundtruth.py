"""Experiment-side ground truth helpers (driver instrumentation).

The paper validates the recovered sequence against "the ground truth actual
sequence that we get from driver instrumentation".  These helpers play that
role: they read the simulator's true state (ring order, physical addresses,
the LLC hash).  **Nothing here is available to the attacker** — it is used
only to score attacks in tests and benchmarks.
"""

from __future__ import annotations

from repro.attack.evictionset import EvictionSet


def flat_set_of_eviction_set(process, es: EvictionSet) -> int:
    """True flat cache-set id an eviction set targets."""
    paddr = process.addrspace.translate(es.addrs[0])
    return process.machine.llc.flat_set_of(paddr)


def group_map(process, groups: list[EvictionSet]) -> dict[int, int]:
    """flat set id -> index into ``groups``."""
    return {flat_set_of_eviction_set(process, es): i for i, es in enumerate(groups)}


def buffer_flat_sets(machine) -> list[int]:
    """Flat set id of each ring buffer's block 0, in ring order from head."""
    ring = machine.ring
    if ring is None:
        raise RuntimeError("machine has no NIC installed")
    ordered = ring.buffers[ring.head:] + ring.buffers[: ring.head]
    return [machine.llc.flat_set_of(b.dma_paddr) for b in ordered]


def true_group_sequence(
    machine,
    process,
    groups: list[EvictionSet],
    collapse_repeats: bool = True,
) -> list[int]:
    """Ground-truth fill sequence restricted to the monitored groups.

    Returns group indices in the order the ring fills them.  Consecutive
    duplicates are collapsed by default because Algorithm 1's graph drops
    self-loops (two adjacent buffers sharing a set merge into one node —
    the paper notes this explicitly).
    """
    mapping = group_map(process, groups)
    sequence: list[int] = []
    for flat in buffer_flat_sets(machine):
        group = mapping.get(flat)
        if group is None:
            continue
        if collapse_repeats and sequence and sequence[-1] == group:
            continue
        sequence.append(group)
    if (
        collapse_repeats
        and len(sequence) > 1
        and sequence[0] == sequence[-1]
    ):
        sequence.pop()  # the ring wraps: first == last is the same node
    return sequence


def buffers_per_page_aligned_set(machine) -> dict[int, int]:
    """flat set id -> number of ring buffers whose block 0 maps there.

    The Fig. 5 / Fig. 6 ground truth ("we instrument the driver code to
    print the physical addresses of the ring buffers").
    """
    counts: dict[int, int] = {}
    for flat in buffer_flat_sets(machine):
        counts[flat] = counts.get(flat, 0) + 1
    return counts
