"""The Packet Chasing covert channel (Section IV of the paper).

A remote **trojan** encodes symbols in the *sizes* of broadcast frames; the
local **spy**, with no network access, decodes them from cache activity on
the sets backing chosen rx buffers:

* symbol 0 -> 64 B frames (1 block: only blocks 0/1 light up),
* symbol 1 -> 192 B frames (3 blocks: block 2 lights up) [ternary only],
* symbol 1/2 -> 256 B frames (4 blocks: blocks 2 and 3 light up).

Because every frame cycles the ring by one slot, sending ``ring_size``
equal-size frames delivers exactly one frame — and hence one symbol — to a
chosen buffer.  Block 0 of that buffer acts as the clock; blocks 2 and 3
carry the data (Fig. 10).  Monitoring ``n`` buffers spaced ``ring/n`` apart
multiplies the rate (Fig. 12a/b); chasing the full sequence delivers one
symbol *per packet* (Fig. 12c/d).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.analysis.capacity import ChannelReport, evaluate_channel
from repro.attack.chase import PacketChaser
from repro.attack.evictionset import EvictionSet
from repro.attack.primeprobe import SetSweep
from repro.net.traffic import PatternStream

#: Frame size (bytes) per symbol, by alphabet size.
SYMBOL_SIZES: dict[int, dict[int, int]] = {
    2: {0: 64, 1: 256},
    3: {0: 64, 1: 192, 2: 256},
}


def frame_size_for(symbol: int, alphabet: int) -> int:
    """Frame size that encodes ``symbol`` in the given alphabet."""
    try:
        return SYMBOL_SIZES[alphabet][symbol]
    except KeyError:
        raise ValueError(
            f"symbol {symbol} not encodable in alphabet {alphabet}"
        ) from None


def symbol_from_blocks(b2_active: bool, b3_active: bool, alphabet: int) -> int:
    """Decode one symbol from block-2/block-3 activity."""
    if alphabet == 2:
        return 1 if (b2_active and b3_active) else 0
    if b3_active:
        return 2
    if b2_active:
        return 1
    return 0


@dataclass
class StreamMonitors:
    """The spy's probe sets for one monitored buffer: clock + two data sets.

    The paper probes the buffer's first, third and fourth blocks — block 1
    is useless for data because the driver prefetches it for every packet.
    """

    clock: EvictionSet
    block2: EvictionSet
    block3: EvictionSet

    def sets(self) -> list[EvictionSet]:
        return [self.clock, self.block2, self.block3]


class CovertTrojan:
    """Remote sender: turns a symbol stream into a broadcast frame schedule."""

    def __init__(
        self,
        alphabet: int = 2,
        ring_size: int = 256,
        n_streams: int = 1,
        rate_pps: float = 500_000.0,
        reorder_prob: float = 0.0,
        protocol: str = "broadcast",
        rng: random.Random | None = None,
    ) -> None:
        if alphabet not in SYMBOL_SIZES:
            raise ValueError(f"unsupported alphabet {alphabet}")
        if n_streams < 1 or ring_size % n_streams:
            raise ValueError("n_streams must divide ring_size")
        self.alphabet = alphabet
        self.ring_size = ring_size
        self.n_streams = n_streams
        self.rate_pps = rate_pps
        self.reorder_prob = reorder_prob
        #: With DDIO, undeliverable broadcasts suffice (stealthiest).
        #: Without DDIO the payload only enters the cache when the stack
        #: processes it, so the trojan must send frames the host handles
        #: (Section IV-d's discussion).
        self.protocol = protocol
        self.rng = rng or random.Random(23)

    @property
    def packets_per_symbol(self) -> int:
        """Frames the trojan must send per symbol (ring advance distance)."""
        return self.ring_size // self.n_streams

    def build_stream(self, symbols: list[int]) -> PatternStream:
        """Pattern stream delivering ``symbols`` (padded to whole cycles)."""
        per = self.packets_per_symbol
        sizes: list[int] = []
        tags: list[int] = []
        for symbol in symbols:
            size = frame_size_for(symbol, self.alphabet)
            sizes.extend([size] * per)
            tags.extend([symbol] * per)
        if self.reorder_prob > 0:
            self._inject_reordering(sizes, tags)
        return PatternStream(
            sizes, rate_pps=self.rate_pps, symbols=tags, protocol=self.protocol
        )

    def _inject_reordering(self, sizes: list[int], tags: list[int]) -> None:
        """Swap adjacent frames with probability ``reorder_prob`` — the
        out-of-order arrivals that appear once the send rate approaches line
        rate (the error jump at 640 kbps in Fig. 12d)."""
        for i in range(len(sizes) - 1):
            if self.rng.random() < self.reorder_prob:
                sizes[i], sizes[i + 1] = sizes[i + 1], sizes[i]
                tags[i], tags[i + 1] = tags[i + 1], tags[i]


@dataclass
class DecodedSymbol:
    """One symbol the spy decoded."""

    time: int
    stream: int
    symbol: int


class CovertReceiver:
    """Local spy: decodes symbols from buffer-set activity.

    For each monitored stream, a window of ``window`` samples opens when the
    clock set fires; block-2/3 activity anywhere in the window decides the
    symbol (wide peaks may straddle two samples — the paper uses the same
    three-sample window).
    """

    def __init__(
        self,
        process,
        streams: list[StreamMonitors],
        window: int = 3,
        supervisor=None,
    ) -> None:
        if not streams:
            raise ValueError("no stream monitors")
        self.process = process
        self.streams = list(streams)
        self.window = window
        #: Optional :class:`~repro.attack.adaptive.AdaptiveSupervisor`.
        #: Saturated probe streams (drifted threshold) trigger online
        #: recalibration; dark streams (remapped buffers) trigger a heal;
        #: after either, the receiver re-locks: windows reset, monitors
        #: re-primed, decoding resumes on the next clock edge.
        self.supervisor = supervisor
        if supervisor is not None:
            for stream in self.streams:
                supervisor.track(*stream.sets())

    def _sweep(self) -> SetSweep:
        """One batched probe covering every stream's clock/b2/b3 sets, in
        the exact per-stream order the scalar loop probed them."""
        return SetSweep(
            self.process, [es for stream in self.streams for es in stream.sets()]
        )

    def listen(
        self,
        n_symbols: int,
        wait_cycles: int,
        max_samples: int | None = None,
        alphabet: int = 2,
    ) -> list[DecodedSymbol]:
        """Probe until ``n_symbols`` are decoded (or the sample budget ends).

        Each sample is one batched :class:`SetSweep` probe over all
        ``3 * n_streams`` monitored sets (cycle- and telemetry-identical
        to the historical per-set probe loop), and the per-stream window
        state machine advances as array operations; the decode order —
        stream index ascending within a sample — matches the scalar loop,
        pinned against ``legacy_decode_activity`` in
        ``tests/test_analysis_equivalence.py``.
        """
        machine = self.process.machine
        for stream in self.streams:
            for es in stream.sets():
                es.prime()
        sweep = self._sweep()
        # Per-stream open windows: remaining samples, accumulated activity.
        n_streams = len(self.streams)
        countdown = np.zeros(n_streams, dtype=np.int64)
        b2_seen = np.zeros(n_streams, dtype=bool)
        b3_seen = np.zeros(n_streams, dtype=bool)
        decoded: list[DecodedSymbol] = []
        budget = max_samples if max_samples is not None else 50 * n_symbols + 1000
        for _ in range(budget):
            if len(decoded) >= n_symbols:
                break
            if wait_cycles:
                machine.idle(wait_cycles)
            now = machine.clock.now
            active = sweep.probe() > 0
            clock = active[0::3]
            b2 = active[1::3]
            b3 = active[2::3]
            open_window = countdown > 0
            b2_seen |= open_window & b2
            b3_seen |= open_window & b3
            countdown[open_window] -= 1
            closing = open_window & (countdown == 0)
            opening = ~open_window & clock
            countdown[opening] = self.window - 1
            b2_seen[opening] = b2[opening]
            b3_seen[opening] = b3[opening]
            decode = closing | opening if self.window == 1 else closing
            for k in np.nonzero(decode)[0]:
                decoded.append(
                    DecodedSymbol(
                        time=now,
                        stream=int(k),
                        symbol=symbol_from_blocks(
                            bool(b2_seen[k]), bool(b3_seen[k]), alphabet
                        ),
                    )
                )
            if self.supervisor is not None:
                event = self.supervisor.observe(int(active.sum()), 3 * n_streams)
                if event is not None:
                    self._relock(event, countdown, b2_seen, b3_seen)
                    sweep = self._sweep()
        decoded.sort(key=lambda d: d.time)
        return decoded

    def _relock(self, event, countdown, b2_seen, b3_seen) -> None:
        """Re-acquire the channel after a recovery: swap in healed
        monitors (if any), abandon open decode windows, re-prime."""
        if event.kind == "heal" and event.payload:
            self.streams = list(event.payload)
            self.supervisor.untrack_all()
            for stream in self.streams:
                self.supervisor.track(*stream.sets())
        countdown[:] = 0
        b2_seen[:] = False
        b3_seen[:] = False
        for stream in self.streams:
            for es in stream.sets():
                es.prime()


def run_covert_channel(
    machine,
    spy_receiver: CovertReceiver,
    trojan: CovertTrojan,
    symbols: list[int],
    wait_cycles: int,
    max_samples: int | None = None,
) -> ChannelReport:
    """End-to-end channel run: send ``symbols``, decode, score.

    Returns the paper's metrics: bandwidth from elapsed simulated time and
    error rate from edit distance (Section IV-a methodology).
    """
    stream = trojan.build_stream(symbols)
    start = machine.clock.now
    stream.attach(machine, machine.nic)
    decoded = spy_receiver.listen(
        len(symbols),
        wait_cycles,
        max_samples=max_samples,
        alphabet=trojan.alphabet,
    )
    stream.stop()
    elapsed = machine.clock.seconds(machine.clock.now - start)
    # The spy may give up before the trojan finishes transmitting; the
    # channel cannot be faster than the wire time of the full frame train.
    frame_size = frame_size_for(max(SYMBOL_SIZES[trojan.alphabet]), trojan.alphabet)
    per_frame = max(
        1.0 / trojan.rate_pps,
        machine.config.link.frame_time_seconds(frame_size),
    )
    send_duration = len(symbols) * trojan.packets_per_symbol * per_frame
    elapsed = max(elapsed, send_duration)
    received = [d.symbol for d in decoded]
    return evaluate_channel(symbols, received, elapsed, trojan.alphabet)


def run_chasing_channel(
    machine,
    chaser: PacketChaser,
    trojan: CovertTrojan,
    symbols: list[int],
    timeout_cycles: int,
    poll_wait: int = 0,
) -> tuple[ChannelReport, float]:
    """Full-sequence channel: one symbol per packet (Fig. 12c/d).

    The trojan is configured with ``n_streams == ring_size`` so each frame
    carries one symbol.  Returns (report, out_of_sync_rate).
    """
    if trojan.packets_per_symbol != 1:
        raise ValueError("chasing channel needs one packet per symbol")
    chaser.prime_all()
    stream = trojan.build_stream(symbols)
    start = machine.clock.now
    stream.attach(machine, machine.nic)
    result = chaser.chase(
        len(symbols), timeout_cycles, poll_wait=poll_wait, prime=False
    )
    stream.stop()
    elapsed = machine.clock.seconds(machine.clock.now - start)
    received = [size_to_symbol(s, trojan.alphabet) for s in result.sizes]
    report = evaluate_channel(symbols, received, elapsed, trojan.alphabet)
    return report, result.out_of_sync_rate


def size_to_symbol(blocks: int, alphabet: int) -> int:
    """Inverse encoding: detected block count -> symbol."""
    if alphabet == 2:
        return 1 if blocks >= 4 else 0
    if blocks >= 4:
        return 2
    if blocks >= 3:
        return 1
    return 0
