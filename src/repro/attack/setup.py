"""Attack assembly helpers: from a machine to probe-ready monitors.

Two assembly paths exist:

* The **measured** path — discovery scan -> SEQUENCER -> per-block slice
  resolution — is what the paper's spy actually does, and each stage is
  implemented and benchmarked individually (:mod:`repro.attack.discovery`,
  :mod:`repro.attack.sequencer`).
* The **oracle** path here snaps monitors directly onto the true buffer
  locations (simulator introspection).  Experiments whose subject is the
  *channel* or the *classifier* — not the setup — use it so benchmark time
  goes to the phenomenon under study.  EXPERIMENTS.md records which path
  each experiment used.
"""

from __future__ import annotations

from repro.attack.chase import BufferMonitor, PacketChaser
from repro.attack.covert import StreamMonitors
from repro.attack.evictionset import EvictionSet, OracleEvictionSetBuilder
from repro.attack.timing import LatencyThreshold, calibrate_threshold


def unique_buffer_positions(machine) -> list[int]:
    """Ring positions (from the current head) whose block-0 cache set hosts
    exactly one ring buffer — the buffers the covert channel prefers."""
    ring = machine.ring
    if ring is None:
        raise RuntimeError("machine has no NIC installed")
    ordered = ring.buffers[ring.head:] + ring.buffers[: ring.head]
    flats = [machine.llc.flat_set_of(b.dma_paddr) for b in ordered]
    counts: dict[int, int] = {}
    for flat in flats:
        counts[flat] = counts.get(flat, 0) + 1
    return [i for i, flat in enumerate(flats) if counts[flat] == 1]


def spaced_positions(candidates: list[int], n: int, ring_size: int) -> list[int]:
    """Pick ``n`` candidate positions roughly ``ring_size / n`` apart."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if len(candidates) < n:
        raise ValueError(f"only {len(candidates)} unique buffers for n={n}")
    stride = ring_size / n
    picked: list[int] = []
    for k in range(n):
        target = k * stride
        best = min(
            (c for c in candidates if c not in picked),
            key=lambda c: min(abs(c - target), ring_size - abs(c - target)),
        )
        picked.append(best)
    return sorted(picked)


class MonitorFactory:
    """Builds probe-ready monitors for ring buffers (oracle-placed)."""

    def __init__(
        self,
        machine,
        spy,
        threshold: LatencyThreshold | None = None,
        huge_pages: int = 16,
    ) -> None:
        self.machine = machine
        self.spy = spy
        self.threshold = threshold or calibrate_threshold(spy)
        self.builder = OracleEvictionSetBuilder(
            spy, self.threshold, huge_pages=huge_pages
        )
        self._cache: dict[tuple[int, int], EvictionSet] = {}
        self._line = machine.llc.geometry.line_size

    def eviction_set_for_paddr(self, paddr: int) -> EvictionSet:
        """Attacker eviction set covering the cache set of ``paddr``.

        With the modulo index backend the cache set is named by
        ``(set index, slice)`` and grouping can use address bits — the
        historical path, kept bit-identical.  A randomized backend
        (``keyed``/``skewed``) breaks that naming, so placement falls
        back to the flat-set oracle grouping, keyed by mapping epoch
        (a re-key moves every line, invalidating cached sets).
        """
        llc = self.machine.llc
        if llc.mapping.index_transparent:
            key = (llc.set_index_of(paddr), llc.slice_of(paddr))
        else:
            key = (llc.flat_set_of(paddr), -1 - llc.mapping_epoch)
        es = self._cache.get(key)
        if es is None:
            if llc.mapping.index_transparent:
                es = self.builder.group_for(*key)
            else:
                es = self.builder.group_for_flat(key[0])
            self._cache[key] = es
        return es

    def buffer_at(self, ring_position: int):
        """The rx buffer at ``ring_position`` from the *current* ring head.

        Monitor healers capture the returned buffer object: the ring head
        moves during a run, so rebuilding by position would silently
        monitor a different buffer — the physical buffer is the identity
        that survives re-keying and re-randomization.
        """
        ring = self.machine.ring
        ordered = ring.buffers[ring.head:] + ring.buffers[: ring.head]
        return ordered[ring_position % len(ordered)]

    def monitor_for_buffer(
        self,
        buffer,
        name: str,
        blocks: tuple[int, ...] = (0, 1, 2, 3),
        include_alt: bool = True,
    ) -> BufferMonitor:
        """Monitor for one specific rx buffer (position-independent)."""
        ring = self.machine.ring
        base = buffer.page_paddr + buffer.page_offset
        alt = buffer.page_paddr + (buffer.page_offset ^ ring.config.buffer_size)
        block_sets = {
            k: self.eviction_set_for_paddr(base + k * self._line) for k in blocks
        }
        alt_sets = (
            {k: self.eviction_set_for_paddr(alt + k * self._line) for k in blocks}
            if include_alt
            else {}
        )
        return BufferMonitor(name=name, blocks=block_sets, alt_blocks=alt_sets)

    def buffer_monitor(
        self,
        ring_position: int,
        blocks: tuple[int, ...] = (0, 1, 2, 3),
        include_alt: bool = True,
    ) -> BufferMonitor:
        """Monitor for the buffer at ``ring_position`` (from current head)."""
        return self.monitor_for_buffer(
            self.buffer_at(ring_position),
            name=f"buf@{ring_position}",
            blocks=blocks,
            include_alt=include_alt,
        )

    def stream_monitors_for_buffer(self, buffer) -> StreamMonitors:
        """Covert-channel monitors (blocks 0, 2, 3) for one specific buffer.

        Consulting the live mapping on every call, this is also the heal
        path: after a ``keyed`` re-key moved the buffer's blocks to new
        cache sets, calling it again yields monitors for the *new* sets
        (under the modulo backend it returns the same cached sets and a
        heal degrades to a harmless re-prime).
        """
        monitor = self.monitor_for_buffer(
            buffer, name="stream", blocks=(0, 2, 3), include_alt=False
        )
        return StreamMonitors(
            clock=monitor.blocks[0],
            block2=monitor.blocks[2],
            block3=monitor.blocks[3],
        )

    def stream_monitors(self, ring_position: int) -> StreamMonitors:
        """Covert-channel monitors (blocks 0, 2, 3) for one buffer."""
        return self.stream_monitors_for_buffer(self.buffer_at(ring_position))

    def full_ring_chaser(
        self,
        blocks: tuple[int, ...] = (0, 1, 2, 3),
        include_alt: bool = True,
    ) -> PacketChaser:
        """A chaser over every buffer in true ring order."""
        ring = self.machine.ring
        monitors = [
            self.buffer_monitor(i, blocks=blocks, include_alt=include_alt)
            for i in range(len(ring.buffers))
        ]
        return PacketChaser(self.spy, monitors)


def adaptive_covert_supervisor(factory, positions, config=None):
    """An :class:`~repro.attack.adaptive.AdaptiveSupervisor` for a covert
    receiver over the buffers currently at ``positions``, whose healer
    rebuilds those buffers' stream monitors against the live mapping."""
    from repro.attack.adaptive import AdaptiveSupervisor

    buffers = [factory.buffer_at(position) for position in positions]

    def healer():
        return [factory.stream_monitors_for_buffer(buffer) for buffer in buffers]

    return AdaptiveSupervisor(
        factory.spy, config=config, healer=healer, factory=factory
    )
