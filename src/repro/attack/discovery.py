"""Ring-buffer footprint discovery (Section III-B of the paper).

With eviction sets for the 256 page-aligned cache sets in hand, the spy
watches them while the NIC receives traffic.  Sets that light up host ring
buffers (Fig. 7); sets that stay dark host none (~35% of them, Fig. 6).
Once a buffer's block-0 set is known, the sets holding its blocks 1..3 are
found by *trial and error over slices*: the set-index bits of ``base + k*64``
are known, and the right slice is the candidate whose activity co-occurs
with the buffer's block-0 activity (Section IV-b's "trial and error
procedure").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.evictionset import EvictionSet
from repro.attack.primeprobe import ProbeMonitor, SampleTrace


@dataclass
class DiscoveredSet:
    """One page-aligned cache set observed to host >= 1 ring buffer."""

    group_index: int
    eviction_set: EvictionSet
    activity: float


class RingDiscovery:
    """Finds which page-aligned sets host rx buffers, and block-k sets."""

    #: Base idle backoff (cycles) between retry scans; doubles per attempt.
    RETRY_BACKOFF_CYCLES = 200_000

    def __init__(self, process, page_aligned_groups: list[EvictionSet]) -> None:
        if not page_aligned_groups:
            raise ValueError("no page-aligned groups supplied")
        self.process = process
        self.groups = list(page_aligned_groups)

    def scan(self, n_samples: int, wait_cycles: int) -> SampleTrace:
        """Probe all page-aligned groups for ``n_samples`` sweeps."""
        monitor = ProbeMonitor(self.process, self.groups)
        return monitor.sample(n_samples, wait_cycles)

    def scan_until_active(
        self,
        n_samples: int,
        wait_cycles: int,
        min_activity: float = 0.02,
        max_attempts: int = 3,
    ) -> tuple[SampleTrace, list["DiscoveredSet"]]:
        """Scan with bounded retry-with-backoff when nothing lights up.

        Under injected loss or a traffic lull a whole scan can come back
        dark; rather than letting the caller fail on an empty set list,
        retry after an exponentially growing idle (giving queued traffic
        time to arrive).  Returns the last trace and whatever active sets
        it showed — possibly an empty list, which callers must tolerate
        (graceful degradation, not an exception).
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        trace = self.scan(n_samples, wait_cycles)
        active = self.active_sets(trace, min_activity)
        for attempt in range(max_attempts - 1):
            if active:
                break
            self.process.machine.idle(self.RETRY_BACKOFF_CYCLES << attempt)
            trace = self.scan(n_samples, wait_cycles)
            active = self.active_sets(trace, min_activity)
        return trace, active

    def active_sets(
        self, trace: SampleTrace, min_activity: float = 0.02
    ) -> list[DiscoveredSet]:
        """Groups whose activity fraction clears ``min_activity``."""
        out = []
        for idx, fraction in enumerate(trace.activity_fraction()):
            if fraction >= min_activity:
                out.append(
                    DiscoveredSet(
                        group_index=idx,
                        eviction_set=self.groups[idx],
                        activity=fraction,
                    )
                )
        return out

    def idle_vs_receiving(
        self,
        n_samples: int,
        wait_cycles: int,
        start_traffic,
    ) -> tuple[SampleTrace, SampleTrace]:
        """The Fig. 7 experiment: scan idle, then scan while receiving.

        ``start_traffic`` is a callable that attaches/starts the sender.
        """
        idle = self.scan(n_samples, wait_cycles)
        start_traffic()
        receiving = self.scan(n_samples, wait_cycles)
        return idle, receiving

    # ------------------------------------------------------------------
    # Block-set resolution (slice trial and error)
    # ------------------------------------------------------------------
    def resolve_block_set(
        self,
        buffer_block0: EvictionSet,
        candidates: list[EvictionSet],
        n_samples: int,
        wait_cycles: int,
    ) -> EvictionSet:
        """Pick which slice candidate holds block k of a discovered buffer.

        Monitors the buffer's block-0 set together with all slice
        candidates for the block-k index; returns the candidate whose
        activity co-occurs most often with block-0 activity.
        """
        if not candidates:
            raise ValueError("no candidates supplied")
        monitor = ProbeMonitor(self.process, [buffer_block0] + candidates)
        trace = monitor.sample(n_samples, wait_cycles)
        active = trace.samples > 0
        clock_active = active[:, :1]
        totals = active[:, 1:].sum(axis=0, dtype=np.int64)
        co_counts = (active[:, 1:] & clock_active).sum(axis=0, dtype=np.int64)
        # Score: co-occurrence with a penalty for uncorrelated activity, so
        # a busy unrelated set does not win by volume alone.  argmax keeps
        # the first of tied maxima, matching the scalar strictly-greater
        # scan it replaces (pinned in tests/test_analysis_equivalence.py).
        scores = 2 * co_counts - totals
        return candidates[int(np.argmax(scores))]
