"""Web fingerprinting over packet sizes (Section V of the paper).

The spy chases the ring while a co-located victim's browser loads a page;
the sequence of detected packet sizes (in cache-block granularity, capped
at "4 or more") fingerprints the page.  Offline, the attacker records
training loads per site and averages them into representatives; online, a
cross-correlation classifier picks the site (89.7% accuracy with DDIO,
86.5% without, over the paper's five-site closed world).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.correlation import CorrelationClassifier
from repro.attack.chase import PacketChaser
from repro.net.traffic import TraceReplay
from repro.net.websites import WebsiteCorpus, WebsiteProfile


@dataclass
class CaptureConfig:
    """Knobs for one trace capture."""

    trace_length: int = 100
    timeout_cycles: int = 4_000_000
    poll_wait: int = 12_000
    #: Extra wait before reading sizes — needed without DDIO, where the
    #: payload enters the cache well after the header (Section IV-d).
    size_wait: int = 0
    #: Idle gap between consecutive loads (lets in-flight events settle).
    inter_load_gap: int = 2_000_000


class TraceCollector:
    """Captures packet-size traces by chasing the ring during page loads."""

    def __init__(self, machine, chaser: PacketChaser, config: CaptureConfig) -> None:
        self.machine = machine
        self.chaser = chaser
        self.config = config

    def capture_load(self, load_trace: list[tuple[float, int]]) -> list[int]:
        """Replay one page load and return the detected block-size vector.

        The spy chases the *entire* load (it monitors continuously, so it
        stays synchronised for the next one) and the fingerprint keeps the
        first ``trace_length`` sizes, like the paper's first-100-packets
        vectors.
        """
        source = TraceReplay(load_trace, protocol="tcp")
        source.attach(self.machine, self.machine.nic)
        result = self.chaser.chase(
            len(load_trace),
            timeout_cycles=self.config.timeout_cycles,
            poll_wait=self.config.poll_wait,
            size_wait=self.config.size_wait,
        )
        source.stop()
        self.machine.idle(self.config.inter_load_gap)
        return result.sizes[: self.config.trace_length]


class WebFingerprintAttack:
    """The full offline + online pipeline over a website corpus."""

    def __init__(
        self,
        collector: TraceCollector,
        corpus: WebsiteCorpus,
        rng: random.Random | None = None,
        max_lag: int = 8,
    ) -> None:
        self.collector = collector
        self.corpus = corpus
        self.rng = rng or random.Random(42)
        self.classifier = CorrelationClassifier(
            trace_length=collector.config.trace_length, max_lag=max_lag
        )
        self._trained = False

    def _capture_site(self, profile: WebsiteProfile) -> list[int]:
        return self.collector.capture_load(profile.sample(self.rng))

    def train(self, loads_per_site: int = 4) -> None:
        """Offline phase: build one representative per site."""
        if loads_per_site < 1:
            raise ValueError("need at least one training load per site")
        training: dict[str, list[list[int]]] = {}
        for profile in self.corpus:
            training[profile.name] = [
                self._capture_site(profile) for _ in range(loads_per_site)
            ]
        self.classifier.fit(training)
        self._trained = True

    def classify_one(self, site: str) -> str:
        """Simulate one victim load of ``site`` and classify the capture."""
        if not self._trained:
            raise RuntimeError("attack not trained; call train() first")
        trace = self._capture_site(self.corpus.get(site))
        return self.classifier.classify(trace)

    def evaluate(self, trials_per_site: int = 4) -> float:
        """Closed-world accuracy over ``trials_per_site`` loads per site.

        Captures happen in the same profile-major order as before (the
        machine state evolves identically); classification is pure, so all
        trials are scored in one batched ``classify_many`` call over a
        single score matrix instead of one classifier pass per capture.
        """
        if not self._trained:
            raise RuntimeError("attack not trained; call train() first")
        captures: list[list[int]] = []
        truth: list[str] = []
        for profile in self.corpus:
            for _ in range(trials_per_site):
                captures.append(self._capture_site(profile))
                truth.append(profile.name)
        if not captures:
            return 0.0
        predicted = self.classifier.classify_many(captures)
        correct = sum(1 for p, t in zip(predicted, truth) if p == t)
        return correct / len(truth)


def recovered_vs_original(
    collector: TraceCollector,
    load_trace: list[tuple[float, int]],
    line_size: int = 64,
    cap: int = 4,
) -> tuple[list[int], list[int]]:
    """The Fig. 13 comparison: true block sizes vs what the spy recovered.

    Returns ``(original, recovered)`` block-size vectors for one load.
    """
    original = [min(cap, -(-size // line_size)) for _gap, size in load_trace]
    recovered = collector.capture_load(load_trace)
    n = min(len(original), collector.config.trace_length)
    return original[:n], recovered
