"""PRIME+PROBE monitoring over a list of eviction sets.

This is the Mastik-equivalent layer: given eviction sets for the cache sets
of interest, ``sample`` runs the PRIME - IDLE - PROBE loop and returns an
activity matrix (samples x sets of miss counts).  The probe *rate* — how
long the idle step waits — is the paper's central tuning knob: it must be
long enough that one packet's activity lands in one sample, and short
enough not to lose the temporal order of consecutive packets (Table I's
parameters: 8000 probes/s against 0.2 M packets/s).

Since the engine refactor a timed probe sweep is a *single* batched
machine call over the concatenation of every monitored set's traversal:
:meth:`Machine.cpu_access_many` preserves per-access event and clock
semantics, so the combined sweep is cycle-identical to the historical
per-line Python loop while running an order of magnitude faster.

The trace itself is **columnar**: :class:`SampleTrace` holds one packed
``(n_samples, n_sets)`` int64 matrix plus an int64 times vector, filled
in place by the sweep loop (no per-sweep Python lists), and every
downstream consumer — sequencer graph build, discovery co-occurrence,
covert decode, activity summaries — operates on it with array kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attack.evictionset import EvictionSet
from repro.telemetry.quality import (
    ProbeSweepAccumulator,
    quality_registry,
    record_probe_latencies,
)


@dataclass
class SampleTrace:
    """Result of a monitoring session, stored columnar.

    ``samples`` is a packed ``(n_samples, n_sets)`` int64 matrix —
    ``samples[i, j]`` = misses observed in probe i on monitored set j —
    and ``times`` an int64 vector of sweep-start times.  The constructor
    still accepts plain (possibly nested) lists and packs them once;
    activity summaries are computed once and cached.
    """

    #: samples[i, j] = misses observed in probe i on monitored set j.
    samples: np.ndarray
    #: Simulated time at the start of each probe sweep.
    times: np.ndarray
    set_labels: list[str]
    _counts: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _fractions: list[float] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.int64)
        if samples.ndim != 2:
            if samples.size:
                raise ValueError(f"samples must be 2-D, got shape {samples.shape}")
            samples = samples.reshape(0, len(self.set_labels))
        self.samples = samples
        self.times = np.asarray(self.times, dtype=np.int64)

    @property
    def n_samples(self) -> int:
        return self.samples.shape[0]

    @property
    def n_sets(self) -> int:
        return len(self.set_labels)

    def activity_counts(self) -> list[int]:
        """Per-set count of samples with at least one miss (cached)."""
        if self._counts is None:
            if self.samples.shape[0]:
                self._counts = (self.samples > 0).sum(axis=0, dtype=np.int64)
            else:
                self._counts = np.zeros(self.n_sets, dtype=np.int64)
        return [int(c) for c in self._counts]

    def activity_fraction(self) -> list[float]:
        """Per-set fraction of active samples (cached)."""
        if self._fractions is None:
            counts = self.activity_counts()
            n = self.samples.shape[0] if self.samples is not None else 0
            if not n:
                self._fractions = [0.0] * self.n_sets
            else:
                self._fractions = [c / n for c in counts]
        return self._fractions


class SetSweep:
    """One batched timed probe over a fixed list of eviction sets.

    The concatenation of every set's zig-zag traversal goes out as a
    single :meth:`Machine.cpu_access_many` call — access order, event
    timing and the clock are identical to calling ``es.probe()`` per set
    — and the telemetry :meth:`EvictionSet.probe` would have recorded
    per set is recorded once for the batch (histograms and counters are
    order-independent sums of the same integer latencies, so registry
    state is bit-identical).  Used by the covert receiver and the packet
    chaser, whose probe groups are small and fixed per decision.
    """

    def __init__(self, process, sets: list[EvictionSet]) -> None:
        if not sets:
            raise ValueError("sweep over an empty set list")
        self.process = process
        self.sets = list(sets)
        self._cache: dict[bytes, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._offsets: np.ndarray | None = None
        self._thresholds: np.ndarray | None = None

    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        key = bytes(es.version & 1 for es in self.sets)
        cached = self._cache.get(key)
        if cached is None:
            decomps = [es.decomp() for es in self.sets]
            cached = (
                np.concatenate([es.probe_order_paddrs() for es in self.sets]),
                np.concatenate([f[::-1] for f, _l in decomps]),
                np.concatenate([l[::-1] for _f, l in decomps]),
            )
            if len(self._cache) >= 4:
                self._cache.clear()
            self._cache[key] = cached
        if self._offsets is None:
            lens = np.fromiter(
                (len(es) for es in self.sets), np.int64, count=len(self.sets)
            )
            self._offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
            self._thresholds = np.repeat(
                np.fromiter(
                    (es.threshold.threshold for es in self.sets),
                    np.float64,
                    count=len(self.sets),
                ),
                lens,
            )
        return cached

    def probe(self) -> np.ndarray:
        """Timed zig-zag sweep; returns per-set miss counts (int64)."""
        machine = self.process.machine
        combined, flats, lines = self._arrays()
        lats = machine.cpu_access_many(combined, timed=True, decomp=(flats, lines))
        miss_mask = lats > self._thresholds
        counts = np.add.reduceat(miss_mask.astype(np.int64), self._offsets)
        for es in self.sets:
            es.flip()
        tele = machine.telemetry
        if tele is not None and tele.metrics.enabled:
            tele.metrics.histogram("probe.latency_cycles").observe_many(lats)
            tele.metrics.counter("probe.accesses").inc(len(combined))
            total_misses = int(miss_mask.sum())
            if total_misses:
                tele.metrics.counter("probe.misses").inc(total_misses)
            registry = quality_registry(tele)
            if registry is not None:
                record_probe_latencies(registry, lats, self._thresholds)
        return counts


class ProbeMonitor:
    """Prime+probe driver over a fixed monitor list."""

    def __init__(
        self, process, eviction_sets: list[EvictionSet], supervisor=None
    ) -> None:
        if not eviction_sets:
            raise ValueError("monitor list is empty")
        self.process = process
        self.sets = list(eviction_sets)
        #: Optional :class:`~repro.attack.adaptive.AdaptiveSupervisor`.
        #: When absent (the default) no adaptive machinery runs and the
        #: sample loop is bit-identical to pre-adaptive builds.
        self.supervisor = supervisor
        if supervisor is not None:
            supervisor.track(*self.sets)
        #: Concatenated traversal arrays per orientation signature.  A
        #: zig-zag sweep alternates between two signatures, so this holds
        #: two entries in steady state; interleaved per-set probes just
        #: miss the cache and rebuild.
        self._sweep_cache: dict[bytes, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._lens: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._thresholds: np.ndarray | None = None
        #: Lazily-created quality-hook batcher; flushed when probing stops.
        self._quality_acc: ProbeSweepAccumulator | None = None

    def _sweep_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(paddrs, flats, lines) of the full probe-order sweep, cached.

        Keyed by each set's flip parity: after a whole-monitor sweep every
        set flips together, so steady-state sampling ping-pongs between
        two cached signatures and never re-concatenates.
        """
        key = bytes(es.version & 1 for es in self.sets)
        cached = self._sweep_cache.get(key)
        if cached is None:
            parts = [es.probe_order_paddrs() for es in self.sets]
            decomps = [es.decomp() for es in self.sets]
            cached = (
                np.concatenate(parts),
                np.concatenate([f[::-1] for f, _l in decomps]),
                np.concatenate([l[::-1] for _f, l in decomps]),
            )
            if len(self._sweep_cache) >= 4:
                self._sweep_cache.clear()
            self._sweep_cache[key] = cached
        if self._lens is None:
            self._lens = np.fromiter(
                (len(es) for es in self.sets), np.int64, count=len(self.sets)
            )
            self._offsets = np.concatenate(([0], np.cumsum(self._lens)[:-1]))
            self._thresholds = np.repeat(
                np.fromiter(
                    (es.threshold.threshold for es in self.sets),
                    np.float64,
                    count=len(self.sets),
                ),
                self._lens,
            )
        return cached

    def __len__(self) -> int:
        return len(self.sets)

    def refresh_thresholds(self) -> None:
        """Drop the cached per-access threshold arrays (after an online
        recalibration changed ``es.threshold`` under us)."""
        self._lens = None
        self._offsets = None
        self._thresholds = None

    def _apply_recovery(self, event) -> None:
        """Swap in healed sets / refreshed thresholds, then re-prime."""
        if event.kind == "heal" and event.payload:
            self.sets = list(event.payload)
            self._sweep_cache.clear()
            self.supervisor.untrack_all()
            self.supervisor.track(*self.sets)
        self.refresh_thresholds()
        self.prime()

    def prime(self) -> None:
        """Initial fill of every monitored set."""
        tele = self.process.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "prime",
                cat="attack",
                args={
                    "sets": len(self.sets),
                    "sim_now": self.process.machine.clock.now,
                },
            ):
                for es in self.sets:
                    es.prime()
            return
        for es in self.sets:
            es.prime()

    def _probe_sweep(self) -> np.ndarray:
        """One timed sweep over every monitored set as a single batched call.

        Accesses are issued in exactly the order the per-set
        ``es.probe()`` loop would issue them (set 0's reversed traversal,
        then set 1's, ...), so events, the clock and every latency are
        unchanged — only the Python-loop overhead is gone.  Returns the
        per-set miss counts as an int64 row.
        """
        machine = self.process.machine
        combined, flats, lines = self._sweep_arrays()
        lats = machine.cpu_access_many(combined, timed=True, decomp=(flats, lines))
        miss_mask = lats > self._thresholds
        row = np.add.reduceat(miss_mask.astype(np.int64), self._offsets)
        for es in self.sets:
            es.flip()
        tele = machine.telemetry
        if tele is not None and tele.metrics.enabled:
            tele.metrics.histogram("probe.latency_cycles").observe_many(lats)
            tele.metrics.counter("probe.accesses").inc(len(combined))
            total_misses = int(miss_mask.sum())
            if total_misses:
                tele.metrics.counter("probe.misses").inc(total_misses)
            registry = quality_registry(tele)
            if registry is not None:
                acc = self._quality_acc
                if acc is None or acc.registry is not registry:
                    acc = self._quality_acc = ProbeSweepAccumulator(
                        registry, self._thresholds, self._offsets
                    )
                acc.add(lats, miss_mask, total_misses)
        return row

    def _fast_sweep(self) -> np.ndarray:
        """One aggregate-latency sweep, batched across every set.

        The sequential loop advances ``measure_overhead`` after each set's
        traversal; batching defers those advances to the end of the sweep.
        That is unobservable exactly when no event fires inside the
        sweep's worst-case window (and no partition reads the mid-sweep
        clock), so outside that window this falls back to the loop.
        """
        machine = self.process.machine
        llc = machine.llc
        timing = llc.timing
        combined, flats, lines = self._sweep_arrays()
        n_sets = len(self.sets)
        nxt = machine.events.peek_time()
        worst = (
            len(combined) * timing.llc_miss_latency
            + n_sets * timing.measure_overhead
        )
        if llc.partition is not None or (
            nxt is not None and nxt - machine.clock.now <= worst
        ):
            return np.fromiter(
                (es.probe_fast() for es in self.sets), np.int64, count=n_sets
            )
        lats = machine.cpu_access_many(combined, decomp=(flats, lines))
        for es in self.sets:
            es.flip()
        machine.clock.advance(n_sets * timing.measure_overhead)
        totals = np.add.reduceat(lats, self._offsets)
        baselines = self._lens * timing.llc_hit_latency
        est = np.round(
            (totals - baselines) / (timing.llc_miss_latency - timing.llc_hit_latency)
        ).astype(np.int64)
        return np.maximum(est, 0)

    def probe_once(self) -> list[int]:
        """One sweep over all monitored sets; returns per-set miss counts."""
        row = self._probe_sweep()
        if self._quality_acc is not None:
            self._quality_acc.flush()
        return [int(v) for v in row]

    def sample(
        self,
        n_samples: int,
        wait_cycles: int = 0,
        fast_probe: bool = False,
    ) -> SampleTrace:
        """Run the PRIME - IDLE(wait_cycles) - PROBE loop ``n_samples`` times.

        ``fast_probe`` uses aggregate-latency probing (one timer read per
        set instead of per access), roughly tripling the probe rate.

        The trace matrix is preallocated and each sweep's miss-count row
        is written in place — no per-sweep Python lists anywhere on the
        path from probe to analysis.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        machine = self.process.machine
        tele = machine.telemetry
        traced = tele is not None and tele.tracer.enabled
        self.prime()
        samples = np.empty((n_samples, len(self.sets)), dtype=np.int64)
        times = np.empty(n_samples, dtype=np.int64)
        for i in range(n_samples):
            if wait_cycles:
                machine.idle(wait_cycles)
            times[i] = machine.clock.now
            if traced:
                with tele.tracer.span(
                    "probe",
                    cat="attack",
                    args={"sample": i, "sim_now": machine.clock.now},
                ):
                    if fast_probe:
                        row = self._fast_sweep()
                    else:
                        row = self._probe_sweep()
                tele.tracer.counter(
                    "probe.misses", {"misses": int(row.sum())}, cat="attack"
                )
            elif fast_probe:
                row = self._fast_sweep()
            else:
                row = self._probe_sweep()
            samples[i] = row
            if self.supervisor is not None:
                event = self.supervisor.observe(int((row > 0).sum()), row.size)
                if event is not None:
                    self._apply_recovery(event)
        if tele is not None and tele.metrics.enabled:
            tele.metrics.counter("probe.sweeps").inc(n_samples)
        if self._quality_acc is not None:
            self._quality_acc.flush()
        return SampleTrace(
            samples=samples,
            times=times,
            set_labels=[es.label or str(es.set_index) for es in self.sets],
        )

    def probe_duration_estimate(self, fast_probe: bool = False) -> int:
        """Cycles one full probe sweep takes, assuming all hits.

        Useful for choosing ``wait_cycles`` to hit a target probe rate.
        A ``fast_probe`` sweep pays the timer overhead once per *set*
        (one fence around each traversal) rather than once per access.
        """
        timing = self.process.machine.llc.timing
        n_accesses = sum(len(es) for es in self.sets)
        if fast_probe:
            return (
                n_accesses * timing.llc_hit_latency
                + len(self.sets) * timing.measure_overhead
            )
        per_access = timing.llc_hit_latency + timing.measure_overhead
        return n_accesses * per_access
