"""PRIME+PROBE monitoring over a list of eviction sets.

This is the Mastik-equivalent layer: given eviction sets for the cache sets
of interest, ``sample`` runs the PRIME - IDLE - PROBE loop and returns an
activity matrix (samples x sets of miss counts).  The probe *rate* — how
long the idle step waits — is the paper's central tuning knob: it must be
long enough that one packet's activity lands in one sample, and short
enough not to lose the temporal order of consecutive packets (Table I's
parameters: 8000 probes/s against 0.2 M packets/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.evictionset import EvictionSet


@dataclass
class SampleTrace:
    """Result of a monitoring session."""

    #: samples[i][j] = misses observed in probe i on monitored set j.
    samples: list[list[int]]
    #: Simulated time at the start of each probe sweep.
    times: list[int]
    set_labels: list[str]

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    @property
    def n_sets(self) -> int:
        return len(self.set_labels)

    def activity_counts(self) -> list[int]:
        """Per-set count of samples with at least one miss."""
        counts = [0] * self.n_sets
        for row in self.samples:
            for j, misses in enumerate(row):
                if misses:
                    counts[j] += 1
        return counts

    def activity_fraction(self) -> list[float]:
        """Per-set fraction of active samples."""
        if not self.samples:
            return [0.0] * self.n_sets
        return [c / self.n_samples for c in self.activity_counts()]


class ProbeMonitor:
    """Prime+probe driver over a fixed monitor list."""

    def __init__(self, process, eviction_sets: list[EvictionSet]) -> None:
        if not eviction_sets:
            raise ValueError("monitor list is empty")
        self.process = process
        self.sets = list(eviction_sets)

    def __len__(self) -> int:
        return len(self.sets)

    def prime(self) -> None:
        """Initial fill of every monitored set."""
        tele = self.process.machine.telemetry
        if tele is not None and tele.tracer.enabled:
            with tele.tracer.span(
                "prime",
                cat="attack",
                args={
                    "sets": len(self.sets),
                    "sim_now": self.process.machine.clock.now,
                },
            ):
                for es in self.sets:
                    es.prime()
            return
        for es in self.sets:
            es.prime()

    def probe_once(self) -> list[int]:
        """One sweep over all monitored sets; returns per-set miss counts."""
        return [es.probe() for es in self.sets]

    def sample(
        self,
        n_samples: int,
        wait_cycles: int = 0,
        fast_probe: bool = False,
    ) -> SampleTrace:
        """Run the PRIME - IDLE(wait_cycles) - PROBE loop ``n_samples`` times.

        ``fast_probe`` uses aggregate-latency probing (one timer read per
        set instead of per access), roughly tripling the probe rate.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        machine = self.process.machine
        tele = machine.telemetry
        traced = tele is not None and tele.tracer.enabled
        self.prime()
        samples: list[list[int]] = []
        times: list[int] = []
        for i in range(n_samples):
            if wait_cycles:
                machine.idle(wait_cycles)
            times.append(machine.clock.now)
            if traced:
                with tele.tracer.span(
                    "probe",
                    cat="attack",
                    args={"sample": i, "sim_now": machine.clock.now},
                ):
                    if fast_probe:
                        row = [es.probe_fast() for es in self.sets]
                    else:
                        row = [es.probe() for es in self.sets]
                tele.tracer.counter(
                    "probe.misses", {"misses": sum(row)}, cat="attack"
                )
                samples.append(row)
            elif fast_probe:
                samples.append([es.probe_fast() for es in self.sets])
            else:
                samples.append([es.probe() for es in self.sets])
        if tele is not None and tele.metrics.enabled:
            tele.metrics.counter("probe.sweeps").inc(n_samples)
        return SampleTrace(
            samples=samples,
            times=times,
            set_labels=[es.label or str(es.set_index) for es in self.sets],
        )

    def probe_duration_estimate(self) -> int:
        """Cycles one full probe sweep takes, assuming all hits.

        Useful for choosing ``wait_cycles`` to hit a target probe rate.
        """
        timing = self.process.machine.llc.timing
        per_access = timing.llc_hit_latency + timing.measure_overhead
        return sum(len(es) for es in self.sets) * per_access
