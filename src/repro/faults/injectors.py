"""Fault injectors: the pieces that plug into existing simulation layers.

* :func:`faulty_frames` — wraps a traffic source's ``(gap, frame)`` stream
  with loss, duplication, adjacent reordering and burst jitter.  Installed
  transparently by :meth:`repro.net.traffic.TrafficSource.attach` when the
  machine has an active fault plan.
* :class:`NoisyCoRunner` — a cache-hostile co-runner on "another core": a
  self-rescheduling event that issues bursts of competing LLC accesses from
  its own address space, creating the occupancy noise the paper's
  PRIME+PROBE spy has to survive on a loaded host.  Like the NIC driver, it
  does not advance the global clock.

NIC-side faults (rx-ring overflow, refill stalls) and probe-timing jitter
have no class here: their hook sites (:meth:`repro.nic.nic.Nic.deliver`,
:meth:`repro.core.machine.Process.timed_access`) query the plan directly.
"""

from __future__ import annotations

from typing import Iterator

from repro.faults.plan import FaultPlan
from repro.mem.addrspace import AddressSpace
from repro.net.packet import Frame

#: Pages of attacker-unrelated memory the co-runner sprays accesses over.
CORUNNER_PAGES = 32


def _duplicate(frame: Frame) -> Frame:
    """A fresh frame carrying the same bytes (new frame_id, own timestamps)."""
    return Frame(size=frame.size, protocol=frame.protocol, symbol=frame.symbol)


def faulty_frames(
    plan: FaultPlan, frames: Iterator[tuple[float, Frame]]
) -> Iterator[tuple[float, Frame]]:
    """Apply the plan's net faults to a ``(gap_seconds, frame)`` stream.

    Order of operations per frame: adjacent reordering first (it consumes
    two stream elements), then gap jitter, loss and duplication.  A dropped
    frame's gap is carried into the next frame so the stream's pacing — and
    therefore every later frame's arrival time — stays anchored to the
    original schedule rather than silently compressing.
    """
    carry_gap = 0.0
    for gap, frame in _reordered(plan, frames):
        gap = plan.jitter_gap(gap) + carry_gap
        carry_gap = 0.0
        if plan.should_drop_frame():
            carry_gap = gap
            continue
        yield gap, frame
        if plan.should_duplicate_frame():
            # The duplicate trails immediately; the source clamps the gap
            # up to the wire time of the frame, as for any frame.
            yield 0.0, _duplicate(frame)


def _reordered(
    plan: FaultPlan, frames: Iterator[tuple[float, Frame]]
) -> Iterator[tuple[float, Frame]]:
    """Swap adjacent frames with the plan's reorder probability."""
    iterator = iter(frames)
    for gap, frame in iterator:
        if plan.should_reorder_frame():
            try:
                next_gap, next_frame = next(iterator)
            except StopIteration:
                yield gap, frame
                return
            yield gap, next_frame
            yield next_gap, frame
        else:
            yield gap, frame


class NoisyCoRunner:
    """Competing LLC traffic from an unrelated process on another core."""

    def __init__(self, machine, plan: FaultPlan) -> None:
        self.machine = machine
        self.plan = plan
        self.rng = plan.corunner_rng()
        self.burst = plan.config.corunner_accesses
        self.interval = max(
            1, int(machine.clock.frequency_hz / plan.config.corunner_rate_hz)
        )
        self.space = AddressSpace(machine.physmem, "fault-corunner")
        self.base = self.space.mmap(CORUNNER_PAGES)
        line = machine.llc.geometry.line_size
        self._line = line
        self._n_lines = CORUNNER_PAGES * machine.physmem.page_size // line

    def start(self) -> None:
        """Schedule the first wakeup; subsequent ones self-reschedule."""
        self.machine.events.schedule(
            self.machine.clock.now + self.interval, self._tick, label="fault-corunner"
        )

    def _tick(self) -> None:
        machine = self.machine
        llc = machine.llc
        now = machine.clock.now
        # A time-varying schedule scales the burst size (a 0x phase skips
        # the wakeup entirely — and draws nothing, keeping the cache-domain
        # stream a pure function of the phases actually active).
        burst = self.burst
        scale = self.plan.schedule_scale()
        if scale != 1.0:
            burst = int(round(burst * scale))
        for _ in range(burst):
            offset = self.rng.randrange(self._n_lines) * self._line
            llc.cpu_access(self.space.translate(self.base + offset), now=now)
        if burst:
            self.plan.note_corunner_accesses(burst)
        machine.events.schedule(now + self.interval, self._tick, label="fault-corunner")
