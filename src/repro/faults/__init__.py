"""Deterministic fault injection across NIC / cache / attack layers.

The paper evaluates Packet Chasing under adversity — background traffic,
co-running cache noise, dropped and reordered packets, probe-timing jitter
(Figs. 11/12, and the Levenshtein-based sequencer exists precisely because
the channel is lossy).  This package makes those conditions reproducible:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the per-machine seeded
  decision stream (SeedSequence-derived per-domain RNGs; bit-identical for
  a given seed at any ``--jobs``) plus :class:`FaultStats` counting.
* :mod:`repro.faults.profiles` — the named ``--faults`` presets.
* :mod:`repro.faults.injectors` — the frame-stream transform and the noisy
  co-runner; NIC and timing faults hook straight into their sites.

Everything is off by default: a machine whose :class:`~repro.core.config.
FaultConfig` is all-zero constructs no plan and executes the exact
pre-faults instruction stream.
"""

from repro.faults.injectors import NoisyCoRunner, faulty_frames
from repro.faults.plan import FaultPlan, FaultStats, derive_fault_seed
from repro.faults.profiles import FAULT_PROFILES, get_profile, parse_fault_spec
from repro.faults.schedule import FAULT_SCHEDULES, FaultSchedule, get_schedule

__all__ = [
    "FAULT_PROFILES",
    "FAULT_SCHEDULES",
    "FaultPlan",
    "FaultSchedule",
    "FaultStats",
    "NoisyCoRunner",
    "derive_fault_seed",
    "faulty_frames",
    "get_profile",
    "get_schedule",
    "parse_fault_spec",
]
