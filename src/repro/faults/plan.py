"""The :class:`FaultPlan`: one machine's seeded fault-injection state.

A plan is derived purely from ``(machine seed, FaultConfig)``: each fault
domain (net / nic / cache / timing) gets its own :class:`random.Random`
seeded via :class:`numpy.random.SeedSequence` spawning — the same
discipline :mod:`repro.runner.spec` uses for shard seeds — so two machines
with the same config produce the same fault stream regardless of process
layout, ``--jobs``, or which other injectors fired in between (domains
never share an RNG, so enabling the co-runner cannot perturb packet loss).

The plan is also the counting point: every injector increments
:class:`FaultStats` unconditionally (cheap, experiment-visible) and mirrors
into the ambient telemetry registry's ``faults.*`` counters when metrics
are enabled.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, fields

import numpy as np

from repro.core.config import FaultConfig

#: Fault-domain labels; the derivation namespace below keeps them disjoint
#: from every experiment tag the runner spawns.
_DOMAINS = ("net", "nic", "cache", "timing")


def derive_fault_seed(root_seed: int, domain: str) -> int:
    """Stable 63-bit seed for one fault domain of one machine."""
    digest = hashlib.sha256(f"repro.faults:{domain}".encode("utf-8")).digest()
    tag = int.from_bytes(digest[:8], "big")
    words = np.random.SeedSequence([root_seed, tag]).generate_state(2, np.uint32)
    return (int(words[0]) << 31 | int(words[1])) & ((1 << 63) - 1)


@dataclass
class FaultStats:
    """Counts of every fault actually injected (ground truth for tests and
    experiment reports; mirrored into telemetry when metrics are on)."""

    frames_dropped: int = 0
    frames_duplicated: int = 0
    frames_reordered: int = 0
    gaps_jittered: int = 0
    nic_overflow_drops: int = 0
    refill_stalls: int = 0
    corunner_accesses: int = 0
    probes_jittered: int = 0

    def total(self) -> int:
        return sum(getattr(self, f.name) for f in fields(self))

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultPlan:
    """Seeded draw-by-draw fault decisions for one simulated machine.

    Hook sites (traffic sources, the NIC, ``Process.timed_access``) call
    the ``should_*``/``draw_*`` methods below; each consults only its own
    domain RNG.  Construction is refused for an inactive config — callers
    use :meth:`from_config`, which returns ``None`` so every hook site can
    guard with a single ``is not None`` check and inactive machines carry
    zero fault machinery.
    """

    def __init__(
        self, config: FaultConfig, root_seed: int, telemetry=None, clock=None
    ) -> None:
        if not config.active:
            raise ValueError("FaultPlan requires an active FaultConfig")
        self.config = config
        self.root_seed = root_seed
        self.telemetry = telemetry
        self.stats = FaultStats()
        self._rng = {
            domain: random.Random(derive_fault_seed(root_seed, domain))
            for domain in _DOMAINS
        }
        #: Optional time-varying intensity curve.  When unset every knob is
        #: static and the draw stream is bit-identical to pre-schedule
        #: builds; when set, intensities are scaled by ``scale(sim time)``
        #: read off the machine clock (pure data, still fully seeded).
        if config.schedule:
            from repro.faults.schedule import get_schedule

            self._schedule = get_schedule(config.schedule)
            if clock is None:
                raise ValueError(
                    f"fault schedule {config.schedule!r} needs a machine clock"
                )
        else:
            self._schedule = None
        self._clock = clock

    @classmethod
    def from_config(
        cls, config: FaultConfig, root_seed: int, telemetry=None, clock=None
    ) -> "FaultPlan | None":
        """A plan for an active config, or ``None`` for the off profile."""
        if not config.active:
            return None
        return cls(config, root_seed, telemetry=telemetry, clock=clock)

    # -- time-varying intensity ----------------------------------------
    def schedule_scale(self) -> float:
        """Current schedule scale factor (1.0 without a schedule)."""
        if self._schedule is None:
            return 1.0
        return self._schedule.scale_at(self._clock.seconds())

    def _effective(self, prob: float) -> float:
        """A probability knob after schedule scaling (clamped to 1)."""
        if self._schedule is None:
            return prob
        return min(1.0, prob * self._schedule.scale_at(self._clock.seconds()))

    # -- counting ------------------------------------------------------
    def _count(self, stat: str, counter: str, n: int = 1) -> None:
        setattr(self.stats, stat, getattr(self.stats, stat) + n)
        tele = self.telemetry
        if tele is not None and tele.metrics.enabled:
            tele.metrics.counter(counter).inc(n)

    # -- net domain (consumed by repro.faults.injectors) ---------------
    @property
    def net_active(self) -> bool:
        cfg = self.config
        return bool(
            cfg.drop_prob or cfg.dup_prob or cfg.reorder_prob or cfg.gap_jitter
        )

    def should_drop_frame(self) -> bool:
        prob = self.config.drop_prob
        if prob and self._rng["net"].random() < self._effective(prob):
            self._count("frames_dropped", "faults.net.dropped")
            return True
        return False

    def should_duplicate_frame(self) -> bool:
        prob = self.config.dup_prob
        if prob and self._rng["net"].random() < self._effective(prob):
            self._count("frames_duplicated", "faults.net.duplicated")
            return True
        return False

    def should_reorder_frame(self) -> bool:
        prob = self.config.reorder_prob
        if prob and self._rng["net"].random() < self._effective(prob):
            self._count("frames_reordered", "faults.net.reordered")
            return True
        return False

    def jitter_gap(self, gap_seconds: float) -> float:
        """Apply burst jitter to one inter-frame gap."""
        jitter = self.config.gap_jitter
        if not jitter:
            return gap_seconds
        if self._schedule is not None:
            jitter = min(1.0, jitter * self.schedule_scale())
        factor = self._rng["net"].uniform(1.0 - jitter, 1.0 + jitter)
        if jitter:
            self._count("gaps_jittered", "faults.net.gaps_jittered")
        return max(0.0, gap_seconds * factor)

    # -- nic domain ----------------------------------------------------
    def should_overflow(self) -> bool:
        """Rx-ring overflow: the arriving frame is dropped at the adapter."""
        prob = self.config.nic_overflow_prob
        if prob and self._rng["nic"].random() < self._effective(prob):
            self._count("nic_overflow_drops", "faults.nic.overflow_drops")
            return True
        return False

    def refill_stall(self) -> int:
        """Cycles of descriptor-refill stall for this frame (0 = none)."""
        prob = self.config.refill_stall_prob
        if prob and self._rng["nic"].random() < self._effective(prob):
            self._count("refill_stalls", "faults.nic.refill_stalls")
            return self.config.refill_stall_cycles
        return 0

    # -- cache domain --------------------------------------------------
    @property
    def corunner_active(self) -> bool:
        return self.config.corunner_rate_hz > 0

    def corunner_rng(self) -> random.Random:
        """The cache-noise domain RNG (owned by the co-runner)."""
        return self._rng["cache"]

    def note_corunner_accesses(self, n: int) -> None:
        self._count("corunner_accesses", "faults.cache.noise_accesses", n)

    # -- timing domain -------------------------------------------------
    def probe_jitter(self) -> int:
        """Extra measured cycles for one timed access (0 when disabled)."""
        cap = self.config.probe_jitter_cycles
        if not cap:
            return 0
        if self._schedule is not None:
            cap = int(round(cap * self.schedule_scale()))
            if cap <= 0:
                return 0
        extra = self._rng["timing"].randint(0, cap)
        if extra:
            self._count("probes_jittered", "faults.timing.jittered_probes")
        return extra
