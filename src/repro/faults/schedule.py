"""Time-varying fault schedules — conditions that change *during* a run.

A :class:`FaultSchedule` maps simulated time to a scale factor applied on
top of a :class:`~repro.core.config.FaultConfig`'s static intensities:
probabilities become ``min(1, p * scale)``, the probe-jitter cap becomes
``round(cap * scale)``, and the co-runner burst scales likewise.  The
schedule is pure data — a piecewise function of sim time — so the fault
stream stays a deterministic function of ``(seed, profile, schedule)``
and is bit-identical at any ``--jobs``.

Three shapes cover the interesting regimes:

* ``ramp`` — linear interpolation between ``(t_ms, scale)`` points
  (thermal / frequency-scaling style drift that creeps up on a
  calibrated threshold).
* ``step`` — scale jumps at each point and holds (a co-scheduled job
  landing on the machine).
* periodic (``period_ms > 0``) — the point list repeats, modelling
  recurring interference bursts.

Scales beyond the first/last point hold their boundary value, so a
schedule shorter than the run degrades to a constant tail, never an
extrapolation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic scale(t) curve over simulated time.

    Parameters
    ----------
    name:
        Registry key (``FaultConfig.schedule`` stores this).
    summary:
        One-line description for ``repro faults list``.
    points:
        ``((t_ms, scale), ...)`` sorted by time, at least one entry.
    mode:
        ``"ramp"`` (linear interpolation) or ``"step"`` (hold-previous).
    period_ms:
        If positive, time wraps modulo this period before lookup.
    """

    name: str
    summary: str
    points: tuple[tuple[float, float], ...]
    mode: str = "ramp"
    period_ms: float = 0.0

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("schedule needs at least one (t_ms, scale) point")
        if self.mode not in ("ramp", "step"):
            raise ValueError(f"unknown schedule mode {self.mode!r}")
        times = [t for t, _s in self.points]
        if times != sorted(times):
            raise ValueError("schedule points must be sorted by time")
        if any(s < 0 for _t, s in self.points):
            raise ValueError("schedule scales must be non-negative")
        if self.period_ms < 0:
            raise ValueError(f"negative period: {self.period_ms}")

    def scale_at(self, t_seconds: float) -> float:
        """The intensity scale factor at simulated time ``t_seconds``."""
        t = t_seconds * 1e3
        if self.period_ms > 0:
            t = t % self.period_ms
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            return points[-1][1]
        for i in range(len(points) - 1):
            t0, s0 = points[i]
            t1, s1 = points[i + 1]
            if t0 <= t <= t1:
                if self.mode == "step" or t1 == t0:
                    return s0
                return s0 + (s1 - s0) * (t - t0) / (t1 - t0)
        return points[-1][1]  # pragma: no cover - unreachable by construction

    def max_scale(self) -> float:
        """Upper bound of the curve (for `faults list` and sanity checks)."""
        return max(s for _t, s in self.points)


#: Built-in schedules.  Time constants are tuned to the scaled-down
#: machine's covert-channel runs (a fig10-style decode spans ~2 ms of sim
#: time; one receiver sample is ~10 µs), so every shape both *bites*
#: mid-run and leaves room for recovery before the run ends.
FAULT_SCHEDULES: dict[str, FaultSchedule] = {
    "drift": FaultSchedule(
        name="drift",
        summary="ramp 1x -> 2.5x over ~0.5 ms, then hold (thermal drift)",
        points=((0.1, 1.0), (0.6, 2.5)),
        mode="ramp",
    ),
    "step": FaultSchedule(
        name="step",
        summary="quiet until ~0.7 ms, then 2.5x (co-scheduled job lands)",
        points=((0.7, 0.0), (0.7001, 2.5)),
        mode="step",
    ),
    "burst": FaultSchedule(
        name="burst",
        summary="periodic 2.5x bursts: 0.35 ms on / 0.85 ms off",
        points=((0.35, 2.5), (0.3501, 0.0)),
        mode="step",
        period_ms=1.2,
    ),
}


def get_schedule(name: str) -> FaultSchedule:
    """Look up a schedule by name; raises ValueError listing known names."""
    try:
        return FAULT_SCHEDULES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_SCHEDULES))
        raise ValueError(f"unknown fault schedule {name!r} (known: {known})") from None
