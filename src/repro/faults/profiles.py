"""Named fault profiles — the ``--faults <profile>`` presets.

Intensities are calibrated against the paper's adversity axes: ``light``
approximates a quiet-but-real host (sporadic background interference,
Fig. 11's best case), ``moderate`` the loaded host the accuracy tables are
reported under, and ``heavy`` the degradation tail of Figs. 11/12 where
bit-recovery visibly drops but the channel still synchronises.  The
``noise-ablation`` experiment sweeps scaled copies of ``moderate`` to trace
the full curve.
"""

from __future__ import annotations

from repro.core.config import FaultConfig

FAULT_PROFILES: dict[str, FaultConfig] = {
    "off": FaultConfig(profile="off"),
    "light": FaultConfig(
        profile="light",
        drop_prob=0.01,
        dup_prob=0.002,
        reorder_prob=0.005,
        gap_jitter=0.10,
        nic_overflow_prob=0.005,
        refill_stall_prob=0.002,
        refill_stall_cycles=20_000,
        corunner_rate_hz=2_000.0,
        corunner_accesses=4,
        probe_jitter_cycles=8,
    ),
    "moderate": FaultConfig(
        profile="moderate",
        drop_prob=0.03,
        dup_prob=0.01,
        reorder_prob=0.02,
        gap_jitter=0.25,
        nic_overflow_prob=0.02,
        refill_stall_prob=0.01,
        refill_stall_cycles=40_000,
        corunner_rate_hz=8_000.0,
        corunner_accesses=8,
        probe_jitter_cycles=20,
    ),
    "heavy": FaultConfig(
        profile="heavy",
        drop_prob=0.10,
        dup_prob=0.03,
        reorder_prob=0.05,
        gap_jitter=0.50,
        nic_overflow_prob=0.05,
        refill_stall_prob=0.03,
        refill_stall_cycles=80_000,
        corunner_rate_hz=25_000.0,
        corunner_accesses=16,
        probe_jitter_cycles=40,
    ),
}


def get_profile(name: str) -> FaultConfig:
    """Look up a named profile; raises with the available names on miss."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault profile {name!r}; known: {known}") from None
