"""Named fault profiles — the ``--faults <profile>`` presets.

Intensities are calibrated against the paper's adversity axes: ``light``
approximates a quiet-but-real host (sporadic background interference,
Fig. 11's best case), ``moderate`` the loaded host the accuracy tables are
reported under, and ``heavy`` the degradation tail of Figs. 11/12 where
bit-recovery visibly drops but the channel still synchronises.  The
``noise-ablation`` experiment sweeps scaled copies of ``moderate`` to trace
the full curve.
"""

from __future__ import annotations

from repro.core.config import FaultConfig

FAULT_PROFILES: dict[str, FaultConfig] = {
    "off": FaultConfig(profile="off"),
    "light": FaultConfig(
        profile="light",
        drop_prob=0.01,
        dup_prob=0.002,
        reorder_prob=0.005,
        gap_jitter=0.10,
        nic_overflow_prob=0.005,
        refill_stall_prob=0.002,
        refill_stall_cycles=20_000,
        corunner_rate_hz=2_000.0,
        corunner_accesses=4,
        probe_jitter_cycles=8,
    ),
    "moderate": FaultConfig(
        profile="moderate",
        drop_prob=0.03,
        dup_prob=0.01,
        reorder_prob=0.02,
        gap_jitter=0.25,
        nic_overflow_prob=0.02,
        refill_stall_prob=0.01,
        refill_stall_cycles=40_000,
        corunner_rate_hz=8_000.0,
        corunner_accesses=8,
        probe_jitter_cycles=20,
    ),
    "heavy": FaultConfig(
        profile="heavy",
        drop_prob=0.10,
        dup_prob=0.03,
        reorder_prob=0.05,
        gap_jitter=0.50,
        nic_overflow_prob=0.05,
        refill_stall_prob=0.03,
        refill_stall_cycles=80_000,
        corunner_rate_hz=25_000.0,
        corunner_accesses=16,
        probe_jitter_cycles=40,
    ),
    # Time-varying: starts as a quiet host, then the "drift" schedule ramps
    # every intensity to 2.5x over ~1 ms of sim time.  The probe-jitter
    # base of 60 cycles is chosen against the timing model's hit/miss gap
    # (hit 40 + overhead 30 vs miss 200 + 30): at peak the 150-cycle cap
    # straddles a stale midpoint threshold (saturating the probe stream)
    # while staying below the 160-cycle bound past which hit and miss
    # windows overlap irrecoverably — i.e. recalibration *can* win.
    "drift": FaultConfig(
        profile="drift",
        drop_prob=0.01,
        dup_prob=0.002,
        reorder_prob=0.005,
        gap_jitter=0.10,
        nic_overflow_prob=0.005,
        refill_stall_prob=0.002,
        refill_stall_cycles=20_000,
        corunner_rate_hz=2_000.0,
        corunner_accesses=4,
        probe_jitter_cycles=60,
        schedule="drift",
    ),
}


def get_profile(name: str) -> FaultConfig:
    """Look up a named profile; raises with the available names on miss."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault profile {name!r}; known: {known}") from None


def parse_fault_spec(spec: str) -> FaultConfig:
    """Resolve a ``--faults`` spec: ``<profile>`` or ``<profile>@<scale>``.

    ``moderate@0.5`` is :meth:`FaultConfig.scaled` applied to the named
    preset; the scale must be a finite non-negative float.  Raises
    ``ValueError`` with a usage hint on any malformed spec.
    """
    name, sep, scale_text = spec.partition("@")
    base = get_profile(name)
    if not sep:
        return base
    try:
        scale = float(scale_text)
    except ValueError:
        raise ValueError(
            f"malformed fault scale {scale_text!r} in {spec!r} "
            "(expected <profile>@<float>, e.g. moderate@0.5)"
        ) from None
    if not 0 <= scale < float("inf"):
        raise ValueError(f"fault scale must be finite and >= 0, got {scale_text!r}")
    return base.scaled(scale)
