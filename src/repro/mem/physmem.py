"""Physical page-frame allocator and DRAM traffic accounting."""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

#: Per-node free-list size at which the init shuffle switches from
#: random.shuffle (bit-compatible with historical seeds) to a vectorised
#: numpy permutation.  The boundary sits above every test-scale machine
#: (scaled_down: 2^16 frames over 2 nodes) and below the bench-scale and
#: default machines whose construction the Python shuffle dominated.
_NUMPY_SHUFFLE_MIN_FRAMES = 100_000


@dataclass
class DramTraffic:
    """Counters for memory-bus transactions (one line transfer each).

    The defense evaluation (Fig. 15 of the paper) reports normalised memory
    read and write traffic; these counters are incremented by the cache
    hierarchy on fills and writebacks and by the NIC on direct-to-memory DMA
    when DDIO is disabled.
    """

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class PhysicalMemory:
    """A page-frame allocator over a flat physical address range.

    Frames are handed out in a randomised order (an unprivileged process has
    no control over frame placement), optionally restricted to a NUMA node.
    Contiguous runs can be reserved for huge-page mappings.  Only frame
    numbers are tracked, never contents — the attack depends on addresses,
    not data.

    Parameters
    ----------
    size_bytes:
        Total physical memory.
    page_size:
        Base page size (4096).
    numa_nodes:
        Number of NUMA nodes; the physical range is striped across nodes in
        equal contiguous chunks, like a real dual-socket machine.
    rng:
        Source of randomness for frame placement.
    """

    def __init__(
        self,
        size_bytes: int = 1 << 32,
        page_size: int = 4096,
        numa_nodes: int = 2,
        rng: random.Random | None = None,
    ) -> None:
        if size_bytes % page_size:
            raise ValueError("size_bytes must be a multiple of page_size")
        if numa_nodes < 1:
            raise ValueError(f"numa_nodes must be >= 1, got {numa_nodes}")
        self.page_size = page_size
        self.size_bytes = size_bytes
        self.numa_nodes = numa_nodes
        self.n_frames = size_bytes // page_size
        self._rng = rng or random.Random(0)
        self.traffic = DramTraffic()
        self._frames_per_node = self.n_frames // numa_nodes
        # Per-node free lists, pre-shuffled so alloc_frame is O(1) swap-pop.
        # Large pools use a numpy permutation seeded from the machine rng:
        # a Fisher-Yates over a million frames in pure Python used to
        # dominate Machine construction (and every fig6-style experiment
        # that builds one machine per trial).  Placement stays a
        # deterministic function of the seed either way; small pools keep
        # the original random.shuffle so existing seeded placements (and
        # everything downstream of them) are bit-identical where the
        # shuffle cost is negligible anyway.
        self._free_lists: list[list[int]] = []
        for node in range(numa_nodes):
            lo = node * self._frames_per_node
            hi = self.n_frames if node == numa_nodes - 1 else lo + self._frames_per_node
            if hi - lo >= _NUMPY_SHUFFLE_MIN_FRAMES:
                perm = np.random.default_rng(self._rng.getrandbits(64)).permutation(
                    hi - lo
                )
                frames = (perm + lo).tolist()
            else:
                frames = list(range(lo, hi))
                self._rng.shuffle(frames)
            self._free_lists.append(frames)
        # Free/allocated state as a bitmap rather than a set of frame
        # numbers: building set(range(n_frames)) dominated Machine
        # construction at bench scale (a million-entry set per instance for
        # fig6-style one-machine-per-trial experiments), while the bitmap is
        # a single allocation and every membership test stays O(1).
        self._free = np.ones(self.n_frames, dtype=bool)
        self._n_free = self.n_frames

    def node_of_frame(self, frame: int) -> int:
        """NUMA node that owns physical frame ``frame``."""
        if not 0 <= frame < self.n_frames:
            raise ValueError(f"frame {frame} out of range")
        return min(frame // self._frames_per_node, self.numa_nodes - 1)

    def node_of_addr(self, paddr: int) -> int:
        """NUMA node that owns physical address ``paddr``."""
        return self.node_of_frame(paddr // self.page_size)

    def _pop_from_node(self, node: int) -> int:
        free = self._free_lists[node]
        while free:
            # Swap-pop a random entry so a freshly freed frame is not simply
            # handed back to the next caller (the randomization defense
            # depends on replacement pages actually moving).
            idx = self._rng.randrange(len(free))
            free[idx], free[-1] = free[-1], free[idx]
            frame = free.pop()
            if self._free[frame]:
                self._free[frame] = False
                self._n_free -= 1
                return frame
        raise MemoryError(f"out of physical frames on node {node}")

    def alloc_frame(self, node: int | None = None) -> int:
        """Allocate one random free frame, optionally on a specific node."""
        if node is not None:
            if not 0 <= node < self.numa_nodes:
                raise ValueError(f"node {node} out of range")
            return self._pop_from_node(node)
        order = list(range(self.numa_nodes))
        self._rng.shuffle(order)
        for candidate in order:
            try:
                return self._pop_from_node(candidate)
            except MemoryError:
                continue
        raise MemoryError("out of physical frames")

    def alloc_frames(self, count: int, node: int | None = None) -> list[int]:
        """Allocate ``count`` random free frames."""
        return [self.alloc_frame(node) for _ in range(count)]

    def alloc_contiguous(self, count: int, align_frames: int = 1) -> int:
        """Allocate ``count`` physically contiguous frames; return the first.

        Used for huge-page mappings (512 contiguous 4 KB frames, 2 MB
        aligned) and for DMA coherent regions.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if align_frames <= 0:
            raise ValueError(f"align_frames must be positive, got {align_frames}")
        n_starts = (self.n_frames - count) // align_frames + 1
        if n_starts <= 0:
            raise MemoryError(f"no contiguous run of {count} frames available")

        def claim(start: int) -> bool:
            if self._free[start : start + count].all():
                self._free[start : start + count] = False
                self._n_free -= count
                return True
            return False

        # Memory is usually mostly free, so random probing succeeds quickly;
        # fall back to a deterministic sweep if it does not.
        for _ in range(64):
            start = self._rng.randrange(n_starts) * align_frames
            if claim(start):
                return start
        for idx in range(n_starts):
            start = idx * align_frames
            if claim(start):
                return start
        raise MemoryError(f"no contiguous run of {count} frames available")

    def free_frame(self, frame: int) -> None:
        """Return a frame to the free pool."""
        if not 0 <= frame < self.n_frames:
            raise ValueError(f"frame {frame} out of range")
        if self._free[frame]:
            raise ValueError(f"double free of frame {frame}")
        self._free[frame] = True
        self._n_free += 1
        self._free_lists[self.node_of_frame(frame)].append(frame)

    @property
    def free_frames(self) -> int:
        """Number of unallocated frames."""
        return self._n_free

    def frame_addr(self, frame: int) -> int:
        """Physical address of the start of ``frame``."""
        return frame * self.page_size
