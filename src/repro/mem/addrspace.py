"""Per-process virtual address spaces.

Two mapping flavours matter for the attack:

* **Small (4 KB) pages** — what any unprivileged allocation gets.  Virtual
  pages land on randomised physical frames, so the process controls only the
  low 12 address bits.  With 64-byte lines and 2048-set slices, that fixes
  set-index bits 6..11 and leaves bits 12..16 (plus the slice hash) unknown
  — which is exactly why the paper's spy must build eviction sets by timing.
* **Huge (2 MB) pages** — physically contiguous and aligned, so the process
  controls bits 0..20: the full set index is known and only the slice
  remains to be resolved by timing.  Real attacks (Liu et al., Mastik) use
  huge pages the same way.
"""

from __future__ import annotations

from repro.mem.physmem import PhysicalMemory

HUGE_PAGE_SIZE = 2 * 1024 * 1024


class AddressSpace:
    """Virtual-to-physical mapping for one simulated process.

    Virtual addresses are allocated from a simple bump pointer; translation
    is a page-table dictionary.  The class never stores data — only the
    mapping — because the attack is purely address/timing based.
    """

    def __init__(self, physmem: PhysicalMemory, name: str = "proc") -> None:
        self.physmem = physmem
        self.name = name
        self.page_size = physmem.page_size
        self._page_table: dict[int, int] = {}  # vpn -> pfn
        self._next_vaddr = 0x1000_0000  # arbitrary non-zero base
        self._huge_regions: list[tuple[int, int]] = []  # (vaddr, n_bytes)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def mmap(self, n_pages: int, node: int | None = None) -> int:
        """Map ``n_pages`` 4 KB pages onto random frames; return base vaddr."""
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        base = self._next_vaddr
        for i in range(n_pages):
            vpn = (base // self.page_size) + i
            self._page_table[vpn] = self.physmem.alloc_frame(node)
        self._next_vaddr += n_pages * self.page_size
        return base

    def mmap_huge(self, n_huge_pages: int = 1) -> int:
        """Map ``n_huge_pages`` 2 MB huge pages; return base vaddr.

        Each huge page is a physically contiguous, 2 MB-aligned run of
        frames, so ``paddr = frame_base + (vaddr - base)`` within the page.
        """
        if n_huge_pages <= 0:
            raise ValueError(f"n_huge_pages must be positive, got {n_huge_pages}")
        frames_per_huge = HUGE_PAGE_SIZE // self.page_size
        base = self._next_vaddr
        # Keep the virtual base huge-page aligned so offset arithmetic works.
        if base % HUGE_PAGE_SIZE:
            base += HUGE_PAGE_SIZE - (base % HUGE_PAGE_SIZE)
        for h in range(n_huge_pages):
            start_frame = self.physmem.alloc_contiguous(
                frames_per_huge, align_frames=frames_per_huge
            )
            for i in range(frames_per_huge):
                vpn = (base + h * HUGE_PAGE_SIZE) // self.page_size + i
                self._page_table[vpn] = start_frame + i
        self._next_vaddr = base + n_huge_pages * HUGE_PAGE_SIZE
        self._huge_regions.append((base, n_huge_pages * HUGE_PAGE_SIZE))
        return base

    def map_fixed(self, vaddr: int, frame: int) -> None:
        """Install an explicit vpn->pfn mapping (kernel-style, for drivers)."""
        if vaddr % self.page_size:
            raise ValueError("vaddr must be page aligned")
        self._page_table[vaddr // self.page_size] = frame

    def munmap(self, vaddr: int, n_pages: int) -> None:
        """Unmap and free ``n_pages`` starting at ``vaddr``."""
        if vaddr % self.page_size:
            raise ValueError("vaddr must be page aligned")
        base_vpn = vaddr // self.page_size
        for i in range(n_pages):
            frame = self._page_table.pop(base_vpn + i, None)
            if frame is None:
                raise ValueError(f"page {base_vpn + i:#x} not mapped")
            self.physmem.free_frame(frame)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate(self, vaddr: int) -> int:
        """Translate a virtual address to a physical address."""
        vpn, offset = divmod(vaddr, self.page_size)
        try:
            frame = self._page_table[vpn]
        except KeyError:
            raise ValueError(
                f"segfault: {self.name} accessed unmapped address {vaddr:#x}"
            ) from None
        return frame * self.page_size + offset

    def is_mapped(self, vaddr: int) -> bool:
        """Whether ``vaddr`` falls on a mapped page."""
        return (vaddr // self.page_size) in self._page_table

    @property
    def mapped_pages(self) -> int:
        """Number of mapped 4 KB pages."""
        return len(self._page_table)
