"""Physical memory and address-space modelling.

The attack's geometry comes entirely from *addresses*: rx buffers live on
page-aligned physical pages, the attacker maps pages of its own and reasons
about which cache sets they fall into.  This package models:

* :class:`~repro.mem.physmem.PhysicalMemory` — a page-frame allocator with
  NUMA node attribution (the IGB driver's reuse logic checks the node of
  each buffer page) and DRAM traffic counters used by the defense
  evaluation (Fig. 15).
* :class:`~repro.mem.addrspace.AddressSpace` — a process' virtual address
  space: 4 KB mappings with randomised frames (what an unprivileged spy
  gets) and 2 MB huge-page mappings (contiguous frames, the standard
  attacker technique for controlling set-index bits).
"""

from repro.mem.addrspace import AddressSpace
from repro.mem.physmem import DramTraffic, PhysicalMemory

__all__ = ["AddressSpace", "PhysicalMemory", "DramTraffic"]
