"""Adaptive I/O cache partitioning — the paper's hardware defense (§VII).

Each LLC set gets an I/O partition of ``IO_lines`` ways (1..3, initially 2).
The partition boundary is *hard* within an adaptation period: DDIO fills may
only displace other I/O lines, CPU fills only CPU lines — so incoming
packets become invisible to a PRIME+PROBE spy.  A per-set presence counter
(``IO_present``) tracks how many cycles the set held at least one valid I/O
line; every ``period`` cycles the boundary adapts:

* presence >= ``t_high``  -> grow the I/O partition (saturating at 3);
* presence <= ``t_low``   -> shrink it (saturating at 1);

and lines stranded on the wrong side of a moved boundary are invalidated
(with writeback), which is the only instant any cross-partition effect is
visible — at most one bit of information per period, as the paper argues.

Presence is accounted lazily (on fills and at adaptation) so the simulation
never has to tick 16384 counters per cycle.

Since the engine refactor the partition operates directly on the packed
representation: every hook receives the flat set id and performs its
victim selection and boundary invalidations through the LLC's
:class:`~repro.cache.engine.CacheEngine`.  The pre-engine cset-based
variant is frozen in :mod:`repro.cache.legacy` for differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PartitionConfig:
    """Paper parameters: p = 10k cycles, Thigh = 5k, Tlow = 2k, 1..3 ways."""

    period: int = 10_000
    t_high: int = 5_000
    t_low: int = 2_000
    min_quota: int = 1
    max_quota: int = 3
    init_quota: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.t_low < self.t_high <= self.period:
            raise ValueError("need 0 < t_low < t_high <= period")
        if not 0 < self.min_quota <= self.init_quota <= self.max_quota:
            raise ValueError("need 0 < min_quota <= init_quota <= max_quota")


@dataclass
class PartitionStats:
    """Defense activity counters."""

    adaptations: int = 0
    quota_grown: int = 0
    quota_shrunk: int = 0
    boundary_invalidations: int = 0


class AdaptivePartition:
    """Per-set I/O/CPU partition state, pluggable into :class:`SlicedLLC`."""

    def __init__(self, config: PartitionConfig | None = None) -> None:
        self.config = config or PartitionConfig()
        self.stats = PartitionStats()
        self._quota: dict[int, int] = {}
        #: Quota of sets never individually adapted.  Starts at init_quota
        #: and decays to min_quota like any I/O-free set would, without
        #: having to materialise per-set counters for the whole LLC.
        self._default_quota = self.config.init_quota
        #: Accumulated I/O-present cycles per set, this period.
        self._presence: dict[int, int] = {}
        #: Sets currently holding >= 1 I/O line -> time the streak started.
        self._io_since: dict[int, int] = {}
        self._period_start = 0
        self._machine = None

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, machine) -> None:
        """Attach to the machine's LLC and schedule adaptation ticks."""
        if machine.llc.partition is not None:
            raise RuntimeError("LLC already has a partition installed")
        machine.llc.partition = self
        self._machine = machine
        self._period_start = machine.clock.now

        def tick() -> None:
            self.adapt(machine.llc, machine.clock.now)
            machine.events.schedule(
                machine.clock.now + self.config.period, tick, label="partition-adapt"
            )

        machine.events.schedule(
            machine.clock.now + self.config.period, tick, label="partition-adapt"
        )

    def quota(self, flat: int) -> int:
        """Current I/O partition size of a set."""
        return self._quota.get(flat, self._default_quota)

    # ------------------------------------------------------------------
    # Victim selection (called by the LLC before inserting a fill)
    # ------------------------------------------------------------------
    def victim_for_io_fill(self, llc, flat: int, now: int):
        """Make room for an I/O fill strictly inside the I/O partition."""
        engine = llc.engine
        if engine.io_count(flat) >= self.quota(flat):
            return engine.evict_lru_of(flat, io=True)
        if engine.size(flat) >= engine.ways:
            # Transitional only (e.g. partition freshly installed over a
            # full cache): take a CPU line once; invariants hold thereafter.
            return engine.evict_lru(flat)
        return None

    def victim_for_cpu_fill(self, llc, flat: int, now: int):
        """Make room for a CPU fill strictly inside the CPU partition."""
        engine = llc.engine
        cpu_limit = engine.ways - self.quota(flat)
        if engine.cpu_count(flat) >= cpu_limit:
            victim = engine.evict_lru_of(flat, io=False)
            if victim is not None:
                return victim
        if engine.size(flat) >= engine.ways:
            return engine.evict_lru(flat)
        return None

    # ------------------------------------------------------------------
    # Presence accounting
    # ------------------------------------------------------------------
    def after_fill(self, llc, flat: int, now: int) -> None:
        """Update the lazy I/O-presence clock after any set mutation."""
        has_io = llc.engine.io_count(flat) > 0
        since = self._io_since.get(flat)
        if has_io and since is None:
            self._io_since[flat] = now
        elif not has_io and since is not None:
            start = max(since, self._period_start)
            self._presence[flat] = self._presence.get(flat, 0) + max(0, now - start)
            del self._io_since[flat]

    def presence_this_period(self, flat: int, now: int) -> int:
        """I/O-present cycles accumulated by ``flat`` in the open period."""
        total = self._presence.get(flat, 0)
        since = self._io_since.get(flat)
        if since is not None:
            total += max(0, now - max(since, self._period_start))
        return min(total, max(0, now - self._period_start))

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def adapt(self, llc, now: int) -> None:
        """Re-evaluate the I/O/CPU boundary of every set that saw I/O."""
        cfg = self.config
        self.stats.adaptations += 1
        candidates = set(self._presence) | set(self._io_since)
        for flat in candidates:
            presence = self.presence_this_period(flat, now)
            quota = self.quota(flat)
            if presence >= cfg.t_high and quota < cfg.max_quota:
                self._set_quota(llc, flat, quota + 1)
                self.stats.quota_grown += 1
            elif presence <= cfg.t_low and quota > cfg.min_quota:
                self._set_quota(llc, flat, quota - 1)
                self.stats.quota_shrunk += 1
        # Sets with a decayed quota that saw no I/O at all also shrink.
        for flat, quota in list(self._quota.items()):
            if flat not in candidates and quota > cfg.min_quota:
                self._set_quota(llc, flat, quota - 1)
                self.stats.quota_shrunk += 1
        # Sets never individually adapted decay collectively.
        if self._default_quota > cfg.min_quota:
            self._default_quota -= 1
        self._presence.clear()
        for flat in list(self._io_since):
            self._io_since[flat] = now
        self._period_start = now

    def _set_quota(self, llc, flat: int, new_quota: int) -> None:
        """Move the boundary, invalidating lines stranded on the wrong side."""
        self._quota[flat] = new_quota
        engine = llc.engine
        # Shrinking I/O partition: excess I/O lines leave (with writeback).
        while engine.io_count(flat) > new_quota:
            victim = engine.evict_lru_of(flat, io=True)
            if victim is None:
                break
            llc._retire(victim, by_io=True)
            self.stats.boundary_invalidations += 1
        # Growing it: excess CPU lines leave.
        cpu_limit = engine.ways - new_quota
        while engine.cpu_count(flat) > cpu_limit:
            victim = engine.evict_lru_of(flat, io=False)
            if victim is None:
                break
            llc._retire(victim, by_io=False)
            self.stats.boundary_invalidations += 1
