"""Software mitigations: ring-buffer randomization (Section VI-b).

Packet Chasing leans on two driver properties: buffers live at *stable*
page-aligned addresses, and they fill in a *stable order*.  Randomization
attacks both:

* :class:`FullRandomizer` — allocate a brand-new page for every received
  packet.  Sequence and location knowledge go stale instantly, but the
  driver/NIC must synchronise on a new descriptor address per packet —
  the ~41.8% p99 latency hit of Fig. 16.
* :class:`PartialRandomizer` — permute the ring's order every N packets.
  The paper notes the attack needs ~65k packets to deconstruct the ring, so
  a much smaller interval keeps any recovered sequence useless at a far
  lower cost.

Both plug into :attr:`repro.nic.driver.IgbDriver.randomizer` and charge
their overhead to the machine's event clock via a cost model, so the
defense evaluation can measure the latency impact.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

import numpy as np


def derive_defense_seed(root_seed: int, domain: str) -> int:
    """Derive a defense RNG seed from the machine seed, namespaced by
    ``domain``.

    Same discipline as :func:`repro.faults.plan.derive_fault_seed`: the
    domain tag goes through SHA-256 (stable across processes/platforms)
    and the mix through ``SeedSequence``, so every defense draws from an
    independent stream that is a pure function of the machine config —
    defense-eval runs are bit-identical at any ``--jobs``.
    """
    tag = int.from_bytes(
        hashlib.sha256(f"repro.defense:{domain}".encode()).digest()[:8], "little"
    )
    w0, w1 = np.random.SeedSequence([root_seed, tag]).generate_state(2, np.uint32)
    return (int(w0) << 31 | int(w1)) & ((1 << 63) - 1)


@dataclass(frozen=True)
class RandomizationCost:
    """Cycle costs of the randomization work.

    ``alloc_cycles`` covers allocating + DMA-mapping a fresh page and
    rewriting the descriptor (coherent-memory write, i.e. expensive);
    ``shuffle_cycles_per_buffer`` covers re-writing one descriptor during a
    bulk permutation.
    """

    alloc_cycles: int = 2_500
    shuffle_cycles_per_buffer: int = 600


class _RandomizerBase:
    """Shared bookkeeping: packets seen, cycles charged."""

    def __init__(self, cost: RandomizationCost | None = None) -> None:
        self.cost = cost or RandomizationCost()
        self.packets = 0
        self.cycles_charged = 0
        #: Cycles of overhead accrued since last drained by the perf model.
        self.pending_cycles = 0

    def _charge(self, cycles: int) -> None:
        self.cycles_charged += cycles
        self.pending_cycles += cycles

    def drain_pending(self) -> int:
        """Return and clear overhead cycles accrued since the last call.

        The performance harness adds these to request service time.
        """
        pending = self.pending_cycles
        self.pending_cycles = 0
        return pending


class FullRandomizer(_RandomizerBase):
    """Fresh page per packet: maximal protection, maximal cost."""

    def on_packet(self, driver, buffer) -> None:
        """Driver hook: replace the just-used buffer with a new page."""
        self.packets += 1
        driver.ring.replace_buffer(buffer.index)
        driver.stats.buffers_replaced += 1
        self._charge(self.cost.alloc_cycles)


class PartialRandomizer(_RandomizerBase):
    """Permute the ring order every ``interval`` packets."""

    def __init__(
        self,
        interval: int,
        cost: RandomizationCost | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(cost)
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        #: None until first use: without an explicit ``rng`` the stream
        #: is derived from the *machine's* seed on first packet, so the
        #: shuffle sequence is a pure function of the machine config
        #: (bit-identical at any ``--jobs``), not of module-level state.
        self.rng = rng
        self.shuffles = 0

    def _stream(self, driver) -> random.Random:
        if self.rng is None:
            self.rng = random.Random(
                derive_defense_seed(
                    driver.machine.config.seed,
                    f"randomization.partial:{self.interval}",
                )
            )
        return self.rng

    def on_packet(self, driver, buffer) -> None:
        """Driver hook: count packets; shuffle when the interval elapses."""
        self.packets += 1
        if self.packets % self.interval == 0:
            driver.ring.shuffle_order(self._stream(driver))
            self.shuffles += 1
            self._charge(
                self.cost.shuffle_cycles_per_buffer * len(driver.ring.buffers)
            )
