"""Mitigations for Packet Chasing (Sections VI and VII of the paper).

* :mod:`repro.defense.randomization` — the short-term, software-only
  schemes: fully randomized rx buffers (fresh page per packet) and partial
  randomization (reshuffle the ring every N packets).  They break the
  recovered sequence but cost allocation work per packet / per interval.
* :mod:`repro.defense.partitioning` — the paper's hardware proposal:
  adaptive per-set I/O partitions in the LLC.  DDIO fills may only displace
  other I/O lines; a per-set counter of I/O presence grows or shrinks each
  set's I/O quota (1..3 ways) every adaptation period.
"""

from repro.defense.partitioning import AdaptivePartition, PartitionConfig
from repro.defense.randomization import (
    FullRandomizer,
    PartialRandomizer,
    RandomizationCost,
)

__all__ = [
    "AdaptivePartition",
    "PartitionConfig",
    "FullRandomizer",
    "PartialRandomizer",
    "RandomizationCost",
]
