"""Append-only, checksummed JSONL run ledger.

Every runner invocation — cached or live, full or partial — appends one
record to ``<cache-dir>/ledger.jsonl`` describing what ran (experiment,
config hash, backend, fault profile, seed, job count) and how well it went
(the experiment's ``headline_metrics()`` dict plus shard/wall bookkeeping).
Records survive the process, so ``repro report`` can chart the quality
trajectory across runs the way EXPERIMENTS.md charts it across PRs.

Integrity mirrors the result cache's v2 format: each line carries a
SHA-256 checksum over the canonical JSON of its record, and lines that
fail to parse or verify are quarantined to ``<cache-dir>/quarantine/``
(and dropped from the ledger) instead of poisoning every later read.

Headline metrics come from *reduced results*, never from the ambient
metrics registry, so a record is bit-identical at any ``--jobs N``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable

#: Same directory the result cache lives in; duplicated (not imported from
#: ``repro.runner.cache``) to keep telemetry free of runner imports.
DEFAULT_LEDGER_DIR = ".repro-cache"
LEDGER_FILENAME = "ledger.jsonl"
QUARANTINE_DIR = "quarantine"
#: Schema 2 added the ``context`` field (``adaptive.*``/``faults.*``
#: counter totals).  Schema-1 records remain readable: ``context``
#: defaults to empty, so ``repro report`` never crashes on old ledgers.
LEDGER_SCHEMA_VERSION = 2
READABLE_SCHEMA_VERSIONS = frozenset({1, 2})

#: Golden schema: every record dict carries exactly these keys (tested).
RECORD_FIELDS = (
    "schema",
    "kind",
    "experiment",
    "timestamp",
    "config_hash",
    "backend",
    "faults",
    "seed",
    "jobs",
    "cache_hit",
    "partial",
    "shards_done",
    "shards_total",
    "trials",
    "wall_seconds",
    "phase_seconds",
    "headline",
    "context",
)


def record_checksum(record: dict) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON of ``record``."""
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class LedgerRecord:
    """One ledger line: provenance plus headline quality metrics."""

    experiment: str
    kind: str = "run"  # "run" (experiment) or "bench" (hot-path numbers)
    timestamp: float = 0.0
    config_hash: str = ""
    backend: str = "modulo"
    faults: str = "off"
    seed: int | None = None
    jobs: int = 1
    cache_hit: bool = False
    partial: bool = False
    shards_done: int = 0
    shards_total: int = 0
    trials: int = 0
    wall_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    headline: dict[str, float] = field(default_factory=dict)
    #: Secondary accounting (``adaptive.*`` recovery and ``faults.*``
    #: injection totals from the reduced result); schema 2+, defaults
    #: empty for records written before it existed.
    context: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["schema"] = LEDGER_SCHEMA_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerRecord":
        known = {
            k: v for k, v in payload.items() if k in RECORD_FIELDS and k != "schema"
        }
        return cls(**known)


def headline_metrics_of(result: Any) -> dict[str, float]:
    """``result.headline_metrics()`` as a sorted, finite, float-only dict.

    Results without the method (plain payloads, legacy pickles) yield an
    empty dict; NaN/inf values (e.g. a skipped fingerprint leg) are dropped
    so every record is strict-JSON safe.
    """
    fn = getattr(result, "headline_metrics", None)
    if not callable(fn):
        return {}
    return _sanitize_metrics(fn())


def context_metrics_of(result: Any) -> dict[str, float]:
    """``result.context_metrics()`` sanitized the same way (or ``{}``).

    Context metrics carry secondary accounting — ``adaptive.*`` recovery
    counters, ``faults.*`` injection totals — that belongs in the ledger
    (``repro report`` renders a recovery column) but not in the headline
    regression deltas.
    """
    fn = getattr(result, "context_metrics", None)
    if not callable(fn):
        return {}
    return _sanitize_metrics(fn())


def _sanitize_metrics(raw: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in raw.items():
        try:
            v = float(value)
        except (TypeError, ValueError):
            continue
        if math.isfinite(v):
            out[str(key)] = v
    return dict(sorted(out.items()))


def record_for_run(
    experiment: str,
    config: Any,
    root_seed: int | None,
    metrics: Any,
    result: Any,
) -> LedgerRecord:
    """Build a run record from runner bookkeeping + a reduced result.

    ``metrics`` is the runner's ``RunnerMetrics`` (duck-typed so the
    telemetry layer stays import-free of the runner package).
    """
    faults = getattr(config, "faults", None)
    return LedgerRecord(
        experiment=experiment,
        kind="run",
        timestamp=time.time(),
        config_hash=getattr(config, "config_hash", lambda: "")(),
        backend=getattr(config, "cache_backend", "modulo"),
        faults=getattr(faults, "profile", "off") if faults is not None else "off",
        seed=root_seed,
        jobs=getattr(metrics, "jobs", 1),
        cache_hit=getattr(metrics, "cache_hit", False),
        partial=getattr(metrics, "partial", False),
        shards_done=getattr(metrics, "shards_done", 0),
        shards_total=getattr(metrics, "shards_total", 0),
        trials=getattr(metrics, "trials_done", 0),
        wall_seconds=getattr(metrics, "wall_seconds", 0.0),
        phase_seconds=dict(getattr(metrics, "phase_seconds", {}) or {}),
        headline=headline_metrics_of(result),
        context=context_metrics_of(result),
    )


@dataclass
class LedgerStats:
    appended: int = 0
    read: int = 0
    quarantined: int = 0


class RunLedger:
    """Append/scan interface over one ``ledger.jsonl`` file."""

    def __init__(self, root: str | Path = DEFAULT_LEDGER_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / LEDGER_FILENAME
        self.stats = LedgerStats()

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- write --------------------------------------------------------
    def append(self, record: LedgerRecord) -> None:
        payload = record.to_dict()
        line = json.dumps(
            {"record": payload, "checksum": record_checksum(payload)},
            sort_keys=True,
        )
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        self.stats.appended += 1

    # -- read ---------------------------------------------------------
    @staticmethod
    def _parse_line(line: str) -> LedgerRecord | None:
        """A verified record, or ``None`` for anything malformed."""
        try:
            wrapper = json.loads(line)
        except (ValueError, TypeError):
            return None
        if not isinstance(wrapper, dict):
            return None
        payload = wrapper.get("record")
        checksum = wrapper.get("checksum")
        if not isinstance(payload, dict) or checksum != record_checksum(payload):
            return None
        if payload.get("schema") not in READABLE_SCHEMA_VERSIONS:
            return None
        if not isinstance(payload.get("experiment"), str):
            return None
        try:
            return LedgerRecord.from_dict(payload)
        except TypeError:
            return None

    def records(
        self, experiment: str | None = None, kind: str | None = None
    ) -> list[LedgerRecord]:
        """All verified records, in append order, oldest first.

        Malformed lines (bad JSON, checksum mismatch, unknown schema) are
        moved to the quarantine file and the ledger is rewritten without
        them, mirroring the result cache's corrupt-entry handling.

        ``experiment`` matches exactly or as a dashed prefix, so e.g.
        ``accuracy`` also selects its ``accuracy-train``/``accuracy-eval``
        sub-phases.
        """
        if not self.path.exists():
            return []
        good: list[tuple[str, LedgerRecord]] = []
        bad: list[str] = []
        with self.path.open("r", encoding="utf-8") as fh:
            for raw in fh:
                line = raw.rstrip("\n")
                if not line.strip():
                    continue
                record = self._parse_line(line)
                if record is None:
                    bad.append(line)
                else:
                    good.append((line, record))
        if bad:
            self._quarantine(bad, [line for line, _ in good])
        out = [record for _, record in good]
        self.stats.read += len(out)
        if experiment is not None:
            out = [
                r
                for r in out
                if r.experiment == experiment
                or r.experiment.startswith(experiment + "-")
            ]
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        return out

    def experiments(self) -> list[str]:
        """Distinct experiment names in the ledger, append order."""
        seen: dict[str, None] = {}
        for record in self.records():
            seen.setdefault(record.experiment, None)
        return list(seen)

    def _quarantine(self, bad: Iterable[str], good: list[str]) -> None:
        """Move bad lines aside and rewrite the ledger with good ones."""
        bad = list(bad)
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            qpath = self.quarantine_root / LEDGER_FILENAME
            with qpath.open("a", encoding="utf-8") as fh:
                for line in bad:
                    fh.write(line + "\n")
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=LEDGER_FILENAME, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for line in good:
                        fh.write(line + "\n")
                os.replace(tmp, self.path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # best-effort: a read-only ledger still serves records
        self.stats.quarantined += len(bad)
