"""Channel-quality estimators for the attack/analysis hook sites.

The paper's claims are signal-quality claims — probe-latency separation,
threshold placement, ring-order recovery fidelity, covert bit error rate —
so this module turns the raw numbers those layers already compute into
named metrics on the ambient :class:`~repro.telemetry.metrics.MetricsRegistry`:

====================================  =======================================
``quality.calibration.*``             SNR / threshold margin / drift between
                                      successive calibrations
``quality.probe.*``                   tightest per-set latency-vs-threshold
                                      margin and hit/miss separation
``quality.evset.*``                   eviction-set construction health
                                      (retries, failed reductions, cluster
                                      confidence)
``quality.sequencer.*``               recovery graph size, replaced noisy
                                      sets, per-set activity fractions
``quality.chase.*``                   packet-chasing sync health
``quality.covert.*``                  substitution/insertion/deletion error
                                      breakdown and realized capacity
``quality.fingerprint.*``             confusion-matrix cells
====================================  =======================================

Every estimator is *read-only* over values the hot path already produced
(no RNG draws, no clock advances), and every hook site guards on
``telemetry.metrics.enabled``, so with telemetry off the instruction
stream is bit-identical — the property the telemetry test suite pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.telemetry.metrics import MetricsRegistry

#: Bucket edges for d'-style SNR values (dimensionless).
SNR_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
#: Bucket edges for normalized threshold margins (1.0 = perfectly centred).
MARGIN_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0)
#: Bucket edges for [0, 1] fractions (confidence, activity, error rates).
FRACTION_BUCKETS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)
#: Bucket edges for per-probe |latency - threshold| margins, in cycles.
MARGIN_CYCLES_BUCKETS = (5, 10, 20, 40, 80, 160, 320, 640)

#: Escape hatch used only by scripts/check_telemetry_overhead.py to isolate
#: the estimators' cost inside an *enabled* metrics session.  Not a user
#: knob; every record_* helper below no-ops while this is False.
_HOOKS_ENABLED = True


def set_hooks_enabled(value: bool) -> bool:
    """Flip the overhead-measurement switch; returns the previous value."""
    global _HOOKS_ENABLED
    previous = _HOOKS_ENABLED
    _HOOKS_ENABLED = bool(value)
    return previous


def quality_registry(telemetry) -> MetricsRegistry | None:
    """The registry to record quality metrics on, or ``None`` when off."""
    if (
        not _HOOKS_ENABLED
        or telemetry is None
        or not telemetry.metrics.enabled
    ):
        return None
    return telemetry.metrics


# ---------------------------------------------------------------------------
# pure estimators
# ---------------------------------------------------------------------------


def snr(
    hit_mean: float, miss_mean: float, hit_std: float, miss_std: float
) -> float:
    """d'-style separation: (miss - hit) mean gap over pooled spread.

    The pooled standard deviation is floored at one cycle so the noiseless
    simulated timing model (zero spread) yields a finite, JSON-safe value.
    """
    pooled = math.sqrt((hit_std**2 + miss_std**2) / 2.0)
    return (miss_mean - hit_mean) / max(pooled, 1.0)


def threshold_margin(hit_mean: float, miss_mean: float, threshold: float) -> float:
    """How centred the threshold sits between the class means.

    1.0 means exactly midway, 0.0 means touching one mean, negative means
    the threshold fell outside the [hit_mean, miss_mean] gap entirely.
    """
    gap = miss_mean - hit_mean
    if gap <= 0:
        return 0.0
    return 2.0 * min(threshold - hit_mean, miss_mean - threshold) / gap


@dataclass(frozen=True)
class DivergenceReport:
    """Windowed ground-truth-vs-recovered divergence for ring sequences."""

    #: normalized cyclic edit distance over the whole sequences
    overall: float
    #: normalized (plain) edit distance per aligned window
    per_window: tuple[float, ...]
    window: int

    @property
    def worst(self) -> float:
        return max(self.per_window) if self.per_window else self.overall

    @property
    def mean_windowed(self) -> float:
        if not self.per_window:
            return self.overall
        return sum(self.per_window) / len(self.per_window)


def windowed_divergence(
    recovered: Sequence[int], truth: Sequence[int], window: int = 16
) -> DivergenceReport:
    """Divergence of ``recovered`` from ``truth``, overall and per window.

    The truth is rotated to its best cyclic alignment first (ring order has
    no distinguished origin), then compared window-by-window so a locally
    garbled stretch shows up as a hot window instead of vanishing into the
    sequence-wide average.
    """
    from repro.analysis.levenshtein import (
        best_rotation,
        cyclic_levenshtein,
        levenshtein,
    )

    recovered = list(recovered)
    truth = list(truth)
    if not truth:
        return DivergenceReport(
            overall=1.0 if recovered else 0.0, per_window=(), window=window
        )
    overall = cyclic_levenshtein(recovered, truth) / len(truth)
    aligned = list(best_rotation(recovered, truth))
    per: list[float] = []
    span = max(len(aligned), len(recovered))
    for start in range(0, span, window):
        t_win = aligned[start : start + window]
        r_win = recovered[start : start + window]
        denominator = max(len(t_win), len(r_win), 1)
        per.append(levenshtein(r_win, t_win) / denominator)
    return DivergenceReport(overall=overall, per_window=tuple(per), window=window)


# ---------------------------------------------------------------------------
# metric orientation (used by `repro report` regression gating)
# ---------------------------------------------------------------------------

#: Substrings marking a metric where *smaller* is better.
_LOWER_TOKENS = (
    "error",
    "divergence",
    "distance",
    "mismatch",
    "drift",
    "out_of_sync",
    "failed",
    "retries",
    "loss",
    "overhead",
    "noise",
    "_ms",
    "seconds",
)
#: Metrics that are descriptive (reported, never gated): shape/scale facts
#: whose "better" direction is closeness to the paper, not a monotone axis.
_INFO_TOKENS = (
    "empty_set_fraction",
    "sets_per_instance",
    "max_buffers_on_one_set",
    "truth_len",
    "rekeys",
)


def metric_orientation(name: str) -> str:
    """``"lower"``, ``"higher"`` or ``"info"`` for a headline-metric name."""
    lowered = name.lower()
    for token in _INFO_TOKENS:
        if token in lowered:
            return "info"
    # profiling/wall seconds are costs, but *_seconds inside info names
    # were already handled above
    for token in _LOWER_TOKENS:
        if token in lowered:
            return "lower"
    return "higher"


# ---------------------------------------------------------------------------
# registry recorders (one per hook site)
# ---------------------------------------------------------------------------


def _mean_std(values: Sequence[float]) -> tuple[float, float]:
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(var)


def record_calibration(
    registry: MetricsRegistry,
    hits: Sequence[float],
    misses: Sequence[float],
    threshold: float,
    attempts: int,
) -> None:
    """Calibration health: SNR, threshold margin, drift vs previous run."""
    hit_mean, hit_std = _mean_std(hits)
    miss_mean, miss_std = _mean_std(misses)
    value = snr(hit_mean, miss_mean, hit_std, miss_std)
    margin = threshold_margin(hit_mean, miss_mean, threshold)
    runs = registry.counter("quality.calibration.runs")
    previous = registry.gauge("quality.calibration.threshold")
    if runs.value:
        registry.gauge("quality.calibration.drift").set(
            abs(threshold - previous.value)
        )
    runs.inc()
    registry.counter("quality.calibration.attempts").inc(attempts)
    previous.set(float(threshold))
    registry.gauge("quality.calibration.hit_mean").set(hit_mean)
    registry.gauge("quality.calibration.miss_mean").set(miss_mean)
    registry.gauge("quality.calibration.snr_last").set(value)
    registry.gauge("quality.calibration.margin_last").set(margin)
    registry.histogram("quality.calibration.snr", SNR_BUCKETS).observe(value)
    registry.histogram("quality.calibration.margin", MARGIN_BUCKETS).observe(margin)


def _sweep_snr(lats: np.ndarray, miss_mask: np.ndarray, n_miss: int) -> float:
    """d'-style SNR of one mixed-class sweep.

    Hit-class statistics come from whole-sweep sums minus the miss-class
    sums (one fancy index and four reductions total), so the probe hot
    path never pays for two masked ``mean``/``std`` pairs.
    """
    n_hit = lats.size - n_miss
    miss_lats = lats[miss_mask]
    sum_all = float(lats.sum())
    sumsq_all = float(np.dot(lats, lats))
    sum_miss = float(miss_lats.sum())
    sumsq_miss = float(np.dot(miss_lats, miss_lats))
    hit_mean = (sum_all - sum_miss) / n_hit
    miss_mean = sum_miss / n_miss
    hit_var = max((sumsq_all - sumsq_miss) / n_hit - hit_mean**2, 0.0)
    miss_var = max(sumsq_miss / n_miss - miss_mean**2, 0.0)
    return snr(hit_mean, miss_mean, math.sqrt(hit_var), math.sqrt(miss_var))


class ProbeSweepAccumulator:
    """Batches ``quality.probe`` observations across probe sweeps.

    Per (sweep, monitored set) the recorded margin is the *tightest*
    per-line ``|latency - threshold|`` in cycles — the decision closest to
    flipping, i.e. how near that set's hit/miss classification came to the
    threshold.  Fixed-bucket histograms are order-independent, so these
    margins are computed and observed in one vectorized pass per
    ``flush_every`` sweeps; the steady-state per-sweep hook cost is a list
    append and two integer comparisons — the sweep's latency array is
    referenced, not copied (``cpu_access_many`` allocates a fresh array
    per sweep and the probe path never mutates it).  The SNR estimate
    still records per mixed-class sweep (that per-sweep separation *is*
    the quantity being measured), which is rare in quiet probe windows.

    The owner must call :meth:`flush` when its probing loop ends —
    ``ProbeMonitor`` does so at the end of ``sample()``/``probe_once()``.
    """

    __slots__ = ("registry", "flush_every", "_pending", "_thresholds", "_offsets")

    def __init__(
        self,
        registry: MetricsRegistry,
        thresholds: np.ndarray,
        offsets: np.ndarray,
        flush_every: int = 64,
    ) -> None:
        self.registry = registry
        #: per-access threshold vector / per-set start offsets into a sweep
        self._thresholds = thresholds
        self._offsets = offsets
        self.flush_every = flush_every
        self._pending: list[np.ndarray] = []

    def add(self, lats, miss_mask, n_miss: int) -> None:
        pending = self._pending
        pending.append(lats)
        if 0 < n_miss < lats.size:
            value = _sweep_snr(lats, miss_mask, n_miss)
            self.registry.gauge("quality.probe.snr_last").set(value)
            self.registry.histogram("quality.probe.snr", SNR_BUCKETS).observe(value)
        if len(pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        k = len(self._pending)
        block = self._pending[0] if k == 1 else np.concatenate(self._pending)
        margins = block.reshape(k, -1) - self._thresholds
        np.abs(margins, out=margins)
        per_set = np.minimum.reduceat(margins, self._offsets, axis=1)
        self.registry.histogram(
            "quality.probe.margin_cycles", MARGIN_CYCLES_BUCKETS
        ).observe_many(per_set.ravel())
        self._pending.clear()


def record_probe_latencies(registry: MetricsRegistry, lats, threshold) -> None:
    """Margin-only variant for single probes and batched set sweeps.

    ``threshold`` is a scalar (one set's probe) or a per-access float
    vector aligned with ``lats`` (a :class:`~repro.attack.primeprobe.SetSweep`
    over sets with differing thresholds); the recorded margins are
    identical either way.
    """
    margins = np.abs(
        np.asarray(lats, dtype=np.float64) - np.asarray(threshold, dtype=np.float64)
    )
    registry.histogram(
        "quality.probe.margin_cycles", MARGIN_CYCLES_BUCKETS
    ).observe_many(margins)


def record_evset_report(registry: MetricsRegistry, report) -> None:
    """Eviction-set construction health from a ``ClusterReport``."""
    registry.counter("quality.evset.reports").inc()
    registry.counter("quality.evset.groups").inc(len(report.groups))
    registry.counter("quality.evset.expected_groups").inc(report.expected)
    registry.counter("quality.evset.retries").inc(report.retries)
    registry.counter("quality.evset.failed_reductions").inc(
        report.failed_reductions
    )
    registry.gauge("quality.evset.confidence_last").set(report.confidence)
    registry.histogram("quality.evset.confidence", FRACTION_BUCKETS).observe(
        report.confidence
    )


def record_sequence_recovery(
    registry: MetricsRegistry,
    n_sets: int,
    graph_edges: int,
    sequence_len: int,
    activity: Sequence[float],
    replaced_sets: int = 0,
) -> None:
    """Sequencer health: graph connectivity and per-set activity spread."""
    registry.counter("quality.sequencer.recoveries").inc()
    registry.counter("quality.sequencer.replaced_sets").inc(replaced_sets)
    registry.gauge("quality.sequencer.monitored_sets").set(float(n_sets))
    registry.gauge("quality.sequencer.graph_edges").set(float(graph_edges))
    registry.gauge("quality.sequencer.sequence_len").set(float(sequence_len))
    if len(activity):
        registry.histogram(
            "quality.sequencer.active_fraction", FRACTION_BUCKETS
        ).observe_many(np.asarray(activity, dtype=np.float64))


def record_divergence(registry: MetricsRegistry, report: DivergenceReport) -> None:
    """Ground-truth divergence of one recovered ring sequence."""
    registry.gauge("quality.sequencer.divergence").set(report.overall)
    registry.gauge("quality.sequencer.divergence_worst_window").set(report.worst)
    if report.per_window:
        registry.histogram(
            "quality.sequencer.window_divergence", FRACTION_BUCKETS
        ).observe_many(np.asarray(report.per_window, dtype=np.float64))


def record_chase(registry: MetricsRegistry, result) -> None:
    """Packet-chasing sync health from a ``ChaseResult``."""
    registry.counter("quality.chase.packets").inc(len(result.sizes))
    registry.counter("quality.chase.misses").inc(result.misses)
    registry.counter("quality.chase.resyncs").inc(result.resyncs)
    registry.gauge("quality.chase.out_of_sync_rate").set(result.out_of_sync_rate)


def record_channel_report(registry: MetricsRegistry, report) -> None:
    """Covert-channel BER breakdown and realized capacity."""
    registry.counter("quality.covert.symbols_sent").inc(report.symbols_sent)
    registry.counter("quality.covert.symbols_received").inc(
        report.symbols_received
    )
    registry.counter("quality.covert.substitutions").inc(report.substitutions)
    registry.counter("quality.covert.insertions").inc(report.insertions)
    registry.counter("quality.covert.deletions").inc(report.deletions)
    registry.gauge("quality.covert.error_rate_last").set(report.error_rate)
    registry.gauge("quality.covert.bandwidth_bps_last").set(report.bandwidth_bps)
    registry.gauge("quality.covert.effective_bps_last").set(
        report.effective_bandwidth_bps
    )
    registry.histogram("quality.covert.error_rate", FRACTION_BUCKETS).observe(
        min(report.error_rate, 1.0)
    )


def record_confusion(
    registry: MetricsRegistry, confusion: dict, suffix: str
) -> None:
    """Fingerprint confusion-matrix cells as counters.

    ``confusion`` maps ``(true_site, predicted_site)`` to a count; each
    cell becomes ``quality.fingerprint.<suffix>.confusion.<true>-><pred>``
    so shard merges add cell-wise and the report can rebuild the matrix.
    """
    total = 0
    correct = 0
    for (true_site, predicted), count in sorted(confusion.items()):
        registry.counter(
            f"quality.fingerprint.{suffix}.confusion.{true_site}->{predicted}"
        ).inc(count)
        total += count
        if true_site == predicted:
            correct += count
    registry.counter(f"quality.fingerprint.{suffix}.trials").inc(total)
    registry.counter(f"quality.fingerprint.{suffix}.correct").inc(correct)
