"""Structured tracing, metrics and profiling for the simulated machine.

The paper's argument is temporal — DDIO fills displacing spy lines, probe
latencies crossing thresholds, ring-buffer reuse order — and this package
makes every run inspectable on exactly those axes:

* :mod:`repro.telemetry.tracer` — span/instant/counter event tracing,
  exported as Chrome ``trace_event`` JSON (opens in Perfetto) or JSONL;
* :mod:`repro.telemetry.metrics` — counters, gauges and fixed-bucket
  latency histograms with snapshot/merge and per-phase deltas;
* :mod:`repro.telemetry.context` — the ambient installation mechanism
  machines pick telemetry up from;
* :mod:`repro.telemetry.profile` — wall-clock phase timing for the runner;
* :mod:`repro.telemetry.shard` — cross-process capture so ``--jobs N``
  runs lose nothing;
* :mod:`repro.telemetry.quality` — channel-quality estimators (SNR,
  threshold margin, recovery divergence, BER breakdown) fed by the
  attack/analysis hook sites;
* :mod:`repro.telemetry.ledger` — the append-only, checksummed
  ``ledger.jsonl`` every runner invocation records itself into;
* :mod:`repro.telemetry.report` — the ``repro report`` dashboard over it.

See OBSERVABILITY.md for the API guide, how to open traces in Perfetto,
and measured overhead.  Telemetry is opt-in: with nothing installed every
hook site short-circuits on a single ``is None`` check and results are
bit-identical to an untelemetered build.
"""

from repro.telemetry.context import (
    Telemetry,
    current_telemetry,
    install,
    session,
)
from repro.telemetry.metrics import (
    PROBE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.ledger import (
    LedgerRecord,
    RunLedger,
    headline_metrics_of,
    record_for_run,
)
from repro.telemetry.profile import PhaseTimer
from repro.telemetry.quality import (
    DivergenceReport,
    metric_orientation,
    quality_registry,
    windowed_divergence,
)
from repro.telemetry.report import render_html, render_report, report_main
from repro.telemetry.shard import (
    SHARD_PID_BASE,
    ShardTelemetryPayload,
    TelemetrizedShardFn,
    merge_shard_payloads,
)
from repro.telemetry.tracer import DEFAULT_MAX_EVENTS, Tracer

__all__ = [
    "Telemetry",
    "current_telemetry",
    "install",
    "session",
    "PROBE_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "LedgerRecord",
    "RunLedger",
    "headline_metrics_of",
    "record_for_run",
    "DivergenceReport",
    "metric_orientation",
    "quality_registry",
    "windowed_divergence",
    "render_html",
    "render_report",
    "report_main",
    "SHARD_PID_BASE",
    "ShardTelemetryPayload",
    "TelemetrizedShardFn",
    "merge_shard_payloads",
    "DEFAULT_MAX_EVENTS",
    "Tracer",
]
