"""Cross-process telemetry collection for sharded experiment runs.

Shard workers run in separate processes, so events and counters they record
would vanish with the worker.  :class:`TelemetrizedShardFn` wraps a shard
function so that **in a worker process** it installs a fresh ambient
:class:`~repro.telemetry.context.Telemetry`, runs the shard, and ships the
recorded events and metrics snapshot back through the result pipe; the
runner then folds them into the parent telemetry (trace events appear as a
per-shard process track, metrics merge by addition).  **In the parent
process** (``--jobs 1``) the ambient telemetry is already live, so the
wrapper runs the shard directly and returns an empty payload.

The wrapper is picklable as long as the wrapped shard function is — the
same constraint the executor already imposes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.telemetry.context import Telemetry, current_telemetry, install


@dataclass
class ShardTelemetryPayload:
    """A shard's result plus whatever telemetry the worker recorded."""

    result: Any
    trace_events: list[dict] | None = None
    metrics_snapshot: dict | None = None


class TelemetrizedShardFn:
    """Wraps a shard function to capture telemetry across process borders."""

    def __init__(self, shard_fn, trace: bool, metrics: bool, max_events: int) -> None:
        self.shard_fn = shard_fn
        self.trace = trace
        self.metrics = metrics
        self.max_events = max_events
        self.origin_pid = os.getpid()

    def __call__(self, config, params: dict, shard) -> ShardTelemetryPayload:
        if os.getpid() == self.origin_pid:
            # Serial path: the parent's ambient telemetry records directly.
            return ShardTelemetryPayload(self.shard_fn(config, params, shard))
        telemetry = Telemetry.create(
            trace=self.trace, metrics=self.metrics, max_events=self.max_events
        )
        previous = install(telemetry)
        try:
            result = self.shard_fn(config, params, shard)
        finally:
            install(previous)
        return ShardTelemetryPayload(
            result=result,
            trace_events=telemetry.tracer.events if self.trace else None,
            metrics_snapshot=telemetry.metrics.snapshot() if self.metrics else None,
        )


#: pid offset for per-shard trace tracks in the merged Chrome trace.
SHARD_PID_BASE = 100


def merge_shard_payloads(payloads: list[ShardTelemetryPayload]) -> list[Any]:
    """Fold worker telemetry into the ambient telemetry; return raw results."""
    telemetry = current_telemetry()
    results = []
    for index, payload in enumerate(payloads):
        results.append(payload.result)
        if telemetry is None:
            continue
        if payload.trace_events:
            telemetry.tracer.absorb(payload.trace_events, pid=SHARD_PID_BASE + index)
        if payload.metrics_snapshot:
            telemetry.metrics.merge_snapshot(payload.metrics_snapshot)
    return results
