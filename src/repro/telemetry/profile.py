"""Wall-clock phase timing for the runner (and anything else host-side).

:class:`PhaseTimer` measures named phases of *host* execution — plan,
execute, reduce — with ``time.perf_counter``.  It is cheap enough to run
unconditionally (two clock reads per phase), so the runner always fills
``RunnerMetrics.phase_seconds`` whether or not telemetry is installed; when
a tracer is attached the phases additionally appear as spans on a
``runner`` track in the exported trace.
"""

from __future__ import annotations

import time

from repro.telemetry.tracer import Tracer


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self, tracer: Tracer | None = None, span_prefix: str = "") -> None:
        self.seconds: dict[str, float] = {}
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._span_prefix = span_prefix

    class _Phase:
        __slots__ = ("_timer", "_name", "_start", "_span")

        def __init__(self, timer: "PhaseTimer", name: str) -> None:
            self._timer = timer
            self._name = name
            self._span = None

        def __enter__(self):
            timer = self._timer
            if timer._tracer is not None:
                self._span = timer._tracer.span(
                    timer._span_prefix + self._name, cat="runner"
                )
                self._span.__enter__()
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info) -> None:
            elapsed = time.perf_counter() - self._start
            timer = self._timer
            timer.seconds[self._name] = timer.seconds.get(self._name, 0.0) + elapsed
            if self._span is not None:
                self._span.__exit__(*exc_info)

    def phase(self, name: str) -> "PhaseTimer._Phase":
        """``with timer.phase("execute"): ...``"""
        return PhaseTimer._Phase(self, name)
