"""Structured event tracing in Chrome ``trace_event`` format.

A :class:`Tracer` records three kinds of events while the simulation runs:

* **spans** — named intervals with wall-clock duration (``ph: "X"``
  complete events).  Components wrap their work in ``with tracer.span(...)``
  so a run decomposes into prime/probe sweeps, per-frame DMA fills, driver
  receive work and runner phases.
* **instants** — point events (``ph: "i"``) for things with no duration in
  the model, e.g. an I/O fill evicting a CPU line.
* **counters** — sampled values (``ph: "C"``) such as per-probe miss
  counts, which Perfetto renders as a stacked area track.

Timestamps are host wall-clock microseconds since the tracer was created —
that is what makes spans render with real widths (simulated time does not
advance while Python executes a driver receive).  Every event additionally
carries the *simulated* cycle count in ``args.sim_now`` when the caller
provides it, so the two timelines can be correlated.

The exported file (:meth:`Tracer.write_chrome`) loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``; :meth:`Tracer.write_jsonl`
emits the same events one JSON object per line for ad-hoc ``jq`` analysis.

Tracing is **opt-in**: nothing in the simulator constructs a tracer on its
own, and all hook sites guard on ``machine.telemetry is None`` first, so a
run without telemetry executes the exact pre-telemetry instruction stream.
"""

from __future__ import annotations

import json
import time
from typing import Any, TextIO

#: Default cap on buffered events; beyond it events are counted as dropped
#: rather than recorded, bounding memory on long traced runs.
DEFAULT_MAX_EVENTS = 500_000


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict | None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._start = self._tracer._now_us()
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        end = tracer._now_us()
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": self._start,
            "dur": end - self._start,
            "pid": tracer.pid,
            "tid": tracer.tid,
        }
        if self.args:
            event["args"] = self.args
        tracer._emit(event)


class _NullSpan:
    """Shared no-op span returned when the tracer is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Buffered trace-event recorder with Chrome/JSONL export.

    ``enabled`` is the one flag hook sites consult; a disabled tracer
    records nothing and its :meth:`span` returns a shared no-op context
    manager.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_events: int = DEFAULT_MAX_EVENTS,
        pid: int = 1,
        tid: int = 1,
        process_name: str = "repro-sim",
    ) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self.pid = pid
        self.tid = tid
        self.process_name = process_name
        self.events: list[dict] = []
        self.dropped = 0
        self._t0 = time.perf_counter_ns()

    # -- recording ----------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._t0) / 1000.0

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def span(self, name: str, cat: str = "sim", args: dict | None = None):
        """Context manager recording ``name`` as a complete event."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "sim", args: dict | None = None) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, name: str, values: dict[str, Any] | float, cat: str = "sim") -> None:
        """Record a counter sample (scalar or named series)."""
        if not self.enabled:
            return
        if not isinstance(values, dict):
            values = {"value": values}
        self._emit(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": self.tid,
                "args": values,
            }
        )

    # -- merging ------------------------------------------------------
    def absorb(self, events: list[dict], pid: int) -> None:
        """Merge events recorded in another process under process id ``pid``.

        Each shard worker has its own wall-clock origin, so absorbed events
        keep their own timeline but appear as a separate process track.
        """
        for event in events:
            merged = dict(event)
            merged["pid"] = pid
            self._emit(merged)

    # -- export -------------------------------------------------------
    def _metadata_events(self) -> list[dict]:
        pids = {e["pid"] for e in self.events} | {self.pid}
        out = []
        for pid in sorted(pids):
            name = self.process_name if pid == self.pid else f"shard-{pid}"
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": name},
                }
            )
        return out

    def chrome_trace(self) -> dict:
        """The full trace as a Chrome ``trace_event`` JSON object."""
        return {
            "traceEvents": self._metadata_events() + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def write_chrome(self, path_or_file: str | TextIO) -> int:
        """Write the Chrome-format trace; returns the event count."""
        payload = self.chrome_trace()
        if hasattr(path_or_file, "write"):
            json.dump(payload, path_or_file)
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        return len(self.events)

    def write_jsonl(self, path_or_file: str | TextIO) -> int:
        """Write one event per line (for jq/grep post-processing)."""
        if hasattr(path_or_file, "write"):
            for event in self.events:
                path_or_file.write(json.dumps(event) + "\n")
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                for event in self.events:
                    fh.write(json.dumps(event) + "\n")
        return len(self.events)

    def span_names(self) -> set[str]:
        """Distinct names of recorded complete events (test/CLI summary)."""
        return {e["name"] for e in self.events if e.get("ph") == "X"}
