"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the numerical half of telemetry (the tracer is the
temporal half): component hook sites increment counters and observe
latencies, experiments snapshot the registry per phase, and the runner
merges per-shard snapshots back into the parent registry so ``--jobs N``
loses nothing.

Histograms use *fixed* buckets so that snapshots from different shards
merge by element-wise addition — the same trick Prometheus uses — and the
default bucket edges are chosen for probe latencies in cycles (an LLC hit
is ~40 cycles, a miss ~90+ on the simulated timing model).
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Default bucket upper edges (inclusive) for probe-latency histograms, in
#: CPU cycles.  Spans the hit/miss split of the simulated timing model.
PROBE_LATENCY_BUCKETS = (25, 50, 75, 100, 150, 200, 300, 500, 1000, 2000)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are upper edges; one overflow bucket is implicit.  Two
    histograms with identical edges merge by adding their bucket counts.
    """

    __slots__ = ("buckets", "_edges", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = PROBE_LATENCY_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"bucket edges must be non-empty and ascending: {buckets}")
        self.buckets = tuple(buckets)
        self._edges = np.asarray(buckets, dtype=np.float64)
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Batched :meth:`observe` — same final state, one numpy pass.

        ``value <= edge`` bucketing matches the scalar loop exactly:
        ``searchsorted(side="left")`` returns the first edge >= value, and
        index ``len(buckets)`` is the implicit overflow bucket.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(self._edges, arr, side="left")
        binned = np.bincount(idx, minlength=len(self.buckets) + 1)
        for i, n in enumerate(binned):
            if n:
                self.counts[i] += int(n)
        self.sum += float(arr.sum())
        self.count += arr.size
        lo = float(arr.min())
        hi = float(arr.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile estimate, ``q`` in [0, 100].

        The target rank comes from the shared rule in
        :func:`repro.analysis.stats.percentile_rank` (the same one the
        discrete nearest-rank ``stats.percentile`` realises); here the
        samples are gone, so ranks are interpolated linearly inside the
        bucket that contains the target rank.  The first bucket's lower
        edge is the observed minimum and the overflow bucket's upper edge
        is the observed maximum, so estimates never leave the observed
        value range.
        """
        from repro.analysis.stats import percentile_rank

        target = percentile_rank(self.count, q)
        if self.count == 0 or self.min is None or self.max is None:
            return 0.0
        cumulative = 0
        for i, n in enumerate(self.counts):
            if not n:
                continue
            lo = self.buckets[i - 1] if i > 0 else self.min
            hi = self.buckets[i] if i < len(self.buckets) else self.max
            lo = max(float(lo), self.min)
            hi = min(float(hi), self.max)
            if cumulative + n >= target:
                fraction = (target - cumulative) / n
                value = lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
                return float(min(max(value, self.min), self.max))
            cumulative += n
        return float(self.max)

    def percentiles(
        self, qs: tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> dict[str, float]:
        """``{"p50": ..., ...}`` via :meth:`percentile` (snapshot-friendly)."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            # Derived, ignored by merge_dict (which folds raw counts and
            # recomputes): here so JSON snapshots carry p50/p95/p99.
            "percentiles": self.percentiles(),
        }

    def merge_dict(self, snap: dict) -> None:
        if list(snap["buckets"]) != list(self.buckets):
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{snap['buckets']} != {list(self.buckets)}"
            )
        for i, c in enumerate(snap["counts"]):
            self.counts[i] += c
        self.sum += snap["sum"]
        self.count += snap["count"]
        for bound, pick in (("min", min), ("max", max)):
            other = snap.get(bound)
            ours = getattr(self, bound)
            if other is not None:
                setattr(self, bound, other if ours is None else pick(ours, other))


class MetricsRegistry:
    """Named metrics with snapshot / merge / per-phase delta support."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: phase name -> counter/histogram-count deltas captured between
        #: begin_phase/end_phase (repeated phases accumulate).
        self.phases: dict[str, dict[str, Any]] = {}
        self._phase_stack: list[tuple[str, dict]] = []

    # -- get-or-create ------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, buckets: tuple[float, ...] = PROBE_LATENCY_BUCKETS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(buckets)
        return h

    # -- snapshots ----------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict state of every metric (picklable, mergeable)."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.to_dict() for k, h in self._histograms.items()},
            "phases": {k: dict(v) for k, v in self.phases.items()},
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's snapshot into this one (shard merge)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hsnap in snap.get("histograms", {}).items():
            self.histogram(name, tuple(hsnap["buckets"])).merge_dict(hsnap)
        for phase, delta in snap.get("phases", {}).items():
            mine = self.phases.setdefault(phase, {})
            for key, value in delta.items():
                mine[key] = mine.get(key, 0) + value

    # -- phases -------------------------------------------------------
    def begin_phase(self, name: str) -> None:
        """Start capturing counter/histogram-count deltas under ``name``."""
        base = {
            "counters": {k: c.value for k, c in self._counters.items()},
            "hist_counts": {k: h.count for k, h in self._histograms.items()},
        }
        self._phase_stack.append((name, base))

    def end_phase(self) -> dict[str, Any]:
        """Close the innermost phase; returns (and stores) its deltas."""
        if not self._phase_stack:
            raise RuntimeError("end_phase() without begin_phase()")
        name, base = self._phase_stack.pop()
        delta: dict[str, Any] = {}
        for key, counter in self._counters.items():
            d = counter.value - base["counters"].get(key, 0)
            if d:
                delta[key] = d
        for key, hist in self._histograms.items():
            d = hist.count - base["hist_counts"].get(key, 0)
            if d:
                delta[f"{key}.observations"] = d
        stored = self.phases.setdefault(name, {})
        for key, value in delta.items():
            stored[key] = stored.get(key, 0) + value
        return delta

    class _Phase:
        __slots__ = ("_registry", "_name")

        def __init__(self, registry: "MetricsRegistry", name: str) -> None:
            self._registry = registry
            self._name = name

        def __enter__(self):
            self._registry.begin_phase(self._name)
            return self._registry

        def __exit__(self, *exc_info) -> None:
            self._registry.end_phase()

    def phase(self, name: str) -> "MetricsRegistry._Phase":
        """Context-manager form of begin_phase/end_phase."""
        return MetricsRegistry._Phase(self, name)
