"""`repro report` — render the run ledger as a quality dashboard.

Reads ``<cache-dir>/ledger.jsonl`` (:mod:`repro.telemetry.ledger`) and
renders, per experiment: the latest run's provenance, every headline
metric against the trailing run with a delta column, a backend x
fault-profile matrix of the experiment's primary metric, and a short run
history.  Regressions use the same >20% floor the hot-path bench gate
uses for ``sweep_speedup``, oriented per metric (error rates regress
upward, bandwidths regress downward, descriptive metrics never gate).

Markdown is the native output; ``--html`` wraps the same tables in a
minimal standalone page.
"""

from __future__ import annotations

import argparse
import html as html_module
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.ledger import DEFAULT_LEDGER_DIR, LedgerRecord, RunLedger
from repro.telemetry.quality import metric_orientation

#: Same regression floor CI applies to sweep_speedup (scripts/bench_hotpath).
REGRESSION_TOLERANCE = 0.20

#: Priority substrings for picking one "primary" metric per experiment for
#: the backend x faults matrix (first match wins, else first key).
_PRIMARY_PRIORITY = ("error", "divergence", "accuracy", "out_of_sync", "bps")


@dataclass
class ReportResult:
    """Rendered dashboard plus the regressions it flagged."""

    markdown: str
    experiments: list[str] = field(default_factory=list)
    regressions: list[str] = field(default_factory=list)


def relative_regression(name: str, current: float, previous: float) -> float:
    """Degradation of ``current`` vs ``previous``, oriented and normalized.

    Positive values mean "worse"; the change is scaled by the larger
    magnitude of the two values so a 0 -> 0.01 error-rate jump registers
    as total (1.0) degradation instead of dividing by zero.
    """
    orientation = metric_orientation(name)
    if orientation == "info":
        return 0.0
    scale = max(abs(previous), abs(current))
    if scale == 0:
        return 0.0
    delta = (current - previous) / scale
    return delta if orientation == "lower" else -delta


def primary_metric(headline: dict[str, float]) -> str | None:
    """The one metric worth a matrix cell, by priority substring."""
    if not headline:
        return None
    for token in _PRIMARY_PRIORITY:
        for name in headline:
            if token in name.lower():
                return name
    return next(iter(headline))


def _fmt(value: float) -> str:
    if value != value:  # NaN guard; ledger records should never carry one
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _when(timestamp: float) -> str:
    if not timestamp:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(timestamp))


def _delta_rows(
    current: LedgerRecord,
    previous: LedgerRecord | None,
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Headline table rows + regression messages for one experiment."""
    rows = ["| metric | current | previous | delta | status |", "|---|---|---|---|---|"]
    regressions: list[str] = []
    prev_headline = previous.headline if previous is not None else {}
    for name, value in current.headline.items():
        if previous is None or name not in prev_headline:
            rows.append(f"| {name} | {_fmt(value)} | - | - | new |")
            continue
        prior = prev_headline[name]
        degradation = relative_regression(name, value, prior)
        orientation = metric_orientation(name)
        if orientation == "info":
            status = "info"
        elif degradation > tolerance:
            status = f"REGRESSED ({degradation:+.0%})"
            regressions.append(
                f"{current.experiment}: {name} {_fmt(prior)} -> {_fmt(value)} "
                f"({degradation:+.0%} worse, tolerance {tolerance:.0%})"
            )
        elif degradation < -tolerance:
            status = f"improved ({-degradation:+.0%})"
        else:
            status = "ok"
        delta = value - prior
        rows.append(
            f"| {name} | {_fmt(value)} | {_fmt(prior)} | {delta:+.4g} | {status} |"
        )
    return rows, regressions


def _matrix_rows(records: list[LedgerRecord]) -> list[str]:
    """Backend x fault-profile matrix of the primary metric (latest cell)."""
    latest = records[-1]
    metric = primary_metric(latest.headline)
    if metric is None:
        return []
    cells: dict[tuple[str, str], float] = {}
    for record in records:  # append order: later records overwrite
        if metric in record.headline:
            cells[(record.backend, record.faults)] = record.headline[metric]
    backends = sorted({b for b, _ in cells})
    profiles = sorted({p for _, p in cells})
    if not backends:
        return []
    rows = [
        f"Primary metric `{metric}`, latest value per backend x fault profile:",
        "",
        "| backend \\ faults | " + " | ".join(profiles) + " |",
        "|---|" + "---|" * len(profiles),
    ]
    for backend in backends:
        row = [f"| {backend}"]
        for profile in profiles:
            value = cells.get((backend, profile))
            row.append(_fmt(value) if value is not None else "-")
        rows.append(" | ".join(row) + " |")
    return rows


def _recovery_cell(record: LedgerRecord) -> str:
    """Summed ``adaptive.*`` recovery counters, or ``-`` when absent.

    ``context`` arrived with ledger schema 2; ``getattr`` keeps the column
    safe against records deserialized from older code paths.
    """
    context = getattr(record, "context", None) or {}
    counters = {
        key: value
        for key, value in context.items()
        if key.startswith("adaptive.") and key != "adaptive.confidence"
    }
    if not counters:
        return "-"
    total = int(sum(counters.values()))
    confidence = context.get("adaptive.confidence")
    if confidence is None:
        return str(total)
    return f"{total} ({confidence:.0%})"


def _history_rows(records: list[LedgerRecord], last: int) -> list[str]:
    rows = [
        "| when | kind | seed | jobs | backend | faults | wall (s) | flags "
        "| recov | primary |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for record in records[-last:]:
        flags = []
        if record.cache_hit:
            flags.append("cached")
        if record.partial:
            flags.append("PARTIAL")
        metric = primary_metric(record.headline)
        primary = f"{metric}={_fmt(record.headline[metric])}" if metric else "-"
        rows.append(
            f"| {_when(record.timestamp)} | {record.kind} | {record.seed} "
            f"| {record.jobs} | {record.backend} | {record.faults} "
            f"| {record.wall_seconds:.2f} | {' '.join(flags) or '-'} "
            f"| {_recovery_cell(record)} | {primary} |"
        )
    return rows


def render_report(
    ledger: RunLedger,
    experiment: str | None = None,
    last: int = 10,
    tolerance: float = REGRESSION_TOLERANCE,
) -> ReportResult:
    """Render the dashboard for one experiment (or every one seen)."""
    names = (
        [experiment]
        if experiment is not None
        else ledger.experiments()
    )
    total = len(ledger.records())  # also quarantines malformed lines up front
    lines = ["# repro report", ""]
    lines.append(
        f"Ledger: `{ledger.path}` "
        f"({total} record(s), {ledger.stats.quarantined} quarantined)"
    )
    result = ReportResult(markdown="")
    for name in names:
        records = ledger.records(experiment=name)
        if not records:
            lines += ["", f"## {name}", "", "_no ledger records_"]
            continue
        result.experiments.append(name)
        current = records[-1]
        previous = records[-2] if len(records) > 1 else None
        lines += ["", f"## {name}", ""]
        lines.append(
            f"Latest: {_when(current.timestamp)} — config `{current.config_hash or '-'}`, "
            f"backend `{current.backend}`, faults `{current.faults}`, "
            f"seed {current.seed}, jobs {current.jobs}"
            + (", **partial run**" if current.partial else "")
            + (", served from cache" if current.cache_hit else "")
        )
        if current.shards_total:
            lines.append(
                f"Shards {current.shards_done}/{current.shards_total}, "
                f"trials {current.trials}, wall {current.wall_seconds:.2f}s"
            )
        lines.append("")
        if current.headline:
            lines.append("### Headline metrics")
            lines.append("")
            rows, regressions = _delta_rows(current, previous, tolerance)
            lines += rows
            result.regressions += regressions
        else:
            lines.append("_no headline metrics recorded_")
        matrix = _matrix_rows(records)
        if matrix:
            lines += ["", "### Backend x fault-profile matrix", ""] + matrix
        lines += ["", "### History", ""] + _history_rows(records, last)
    if result.regressions:
        lines += ["", "## Regressions", ""]
        lines += [f"- {msg}" for msg in result.regressions]
    result.markdown = "\n".join(lines) + "\n"
    return result


# ---------------------------------------------------------------------------
# HTML rendering (markdown subset: headings, tables, paragraphs)
# ---------------------------------------------------------------------------

_HTML_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 70em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #999; padding: 0.25em 0.6em; text-align: left; }
th { background: #eee; }
code { background: #f4f4f4; padding: 0 0.2em; }
"""


def _inline(text: str) -> str:
    """Escape, then render `code` and **bold** spans."""
    out = html_module.escape(text)
    for marker, tag in (("**", "strong"), ("`", "code")):
        parts = out.split(marker)
        if len(parts) > 2:
            rebuilt = parts[0]
            for i, part in enumerate(parts[1:], start=1):
                rebuilt += (f"<{tag}>" if i % 2 else f"</{tag}>") + part
            if len(parts) % 2 == 0:  # unbalanced: leave the tail alone
                rebuilt += marker
            out = rebuilt
    return out


def render_html(markdown: str, title: str = "repro report") -> str:
    """Standalone HTML page from this module's markdown subset."""
    body: list[str] = []
    table: list[str] = []

    def flush_table() -> None:
        if not table:
            return
        body.append("<table>")
        for i, row in enumerate(table):
            cells = [c.strip() for c in row.strip().strip("|").split("|")]
            if i == 1 and all(set(c) <= set("-: ") for c in cells):
                continue
            tag = "th" if i == 0 else "td"
            body.append(
                "<tr>"
                + "".join(f"<{tag}>{_inline(c)}</{tag}>" for c in cells)
                + "</tr>"
            )
        body.append("</table>")
        table.clear()

    for line in markdown.splitlines():
        if line.startswith("|"):
            table.append(line)
            continue
        flush_table()
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            level = len(stripped) - len(stripped.lstrip("#"))
            level = min(level, 4)
            body.append(f"<h{level}>{_inline(stripped[level:].strip())}</h{level}>")
        elif stripped.startswith("- "):
            body.append(f"<p>• {_inline(stripped[2:])}</p>")
        else:
            body.append(f"<p>{_inline(stripped)}</p>")
    flush_table()
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html_module.escape(title)}</title>"
        f"<style>{_HTML_STYLE}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


# ---------------------------------------------------------------------------
# CLI (`repro report [exp]`)
# ---------------------------------------------------------------------------


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render a quality dashboard from the run ledger.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment to report on (default: every experiment in the ledger)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_LEDGER_DIR,
        help=f"directory holding ledger.jsonl (default: {DEFAULT_LEDGER_DIR})",
    )
    parser.add_argument(
        "--out", default=None, help="write the report here instead of stdout"
    )
    parser.add_argument(
        "--html", action="store_true", help="render HTML instead of markdown"
    )
    parser.add_argument(
        "--last", type=int, default=10, help="history rows per experiment"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=REGRESSION_TOLERANCE,
        help="regression floor vs the trailing run (default: 0.20)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero when any headline metric regressed past the floor",
    )
    return parser


def report_main(argv: list[str] | None = None) -> int:
    args = build_report_parser().parse_args(argv)
    ledger = RunLedger(args.cache_dir)
    if not ledger.path.exists():
        print(f"no ledger at {ledger.path} — run an experiment first", file=sys.stderr)
        return 1
    result = render_report(
        ledger,
        experiment=args.experiment,
        last=args.last,
        tolerance=args.tolerance,
    )
    if args.experiment is not None and not result.experiments:
        print(
            f"no ledger records for {args.experiment!r} "
            f"(ledger has: {', '.join(ledger.experiments()) or 'nothing'})",
            file=sys.stderr,
        )
        return 1
    output = (
        render_html(result.markdown, title=f"repro report — {args.experiment or 'all'}")
        if args.html
        else result.markdown
    )
    if args.out:
        Path(args.out).write_text(output, encoding="utf-8")
        print(f"report written to {args.out}")
    else:
        print(output, end="")
    for message in result.regressions:
        print(f"[report] REGRESSION: {message}", file=sys.stderr)
    if args.gate and result.regressions:
        return 1
    return 0
