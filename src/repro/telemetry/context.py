"""The Telemetry bundle and the ambient-installation mechanism.

Experiments construct machines deep inside library code, so telemetry is
wired in *ambiently*: the CLI (or a test) installs a :class:`Telemetry`
with :func:`install` / :func:`session`, and every :class:`~repro.core.
machine.Machine` built while it is installed picks it up in its
constructor.  Nothing is installed by default — ``current_telemetry()``
returns ``None`` and every hook site in the simulator guards on that, so
untelemetered runs execute the exact pre-telemetry instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import DEFAULT_MAX_EVENTS, Tracer


@dataclass
class Telemetry:
    """One run's tracer + metrics registry, handed around as a unit."""

    tracer: Tracer
    metrics: MetricsRegistry

    @classmethod
    def create(
        cls,
        trace: bool = True,
        metrics: bool = True,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> "Telemetry":
        return cls(
            tracer=Tracer(enabled=trace, max_events=max_events),
            metrics=MetricsRegistry(enabled=metrics),
        )

    @property
    def active(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    # -- convenience hooks used by the hot paths ----------------------
    def on_dma_fill(self, n: int = 1) -> None:
        """``n`` DDIO lines allocated in the LLC by inbound DMA.

        Batched DMA paths report a whole frame's fills in one call; the
        counter value is identical to ``n`` scalar calls.
        """
        if self.metrics.enabled:
            self.metrics.counter("llc.dma_fills").inc(n)

    def on_io_evict_cpu(self, line: int) -> None:
        """An I/O fill displaced a CPU-origin line — the paper's signal."""
        if self.metrics.enabled:
            self.metrics.counter("llc.io_evicted_cpu").inc()
        if self.tracer.enabled:
            self.tracer.instant("io-evict-cpu", cat="llc", args={"line": line})


_CURRENT: Telemetry | None = None


def current_telemetry() -> Telemetry | None:
    """The ambiently installed telemetry, or ``None``."""
    return _CURRENT


def install(telemetry: Telemetry | None) -> Telemetry | None:
    """Install ``telemetry`` as ambient; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    return previous


class session:
    """``with session(telemetry): ...`` — install for a scope, then restore."""

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._previous: Telemetry | None = None

    def __enter__(self) -> Telemetry:
        self._previous = install(self.telemetry)
        return self.telemetry

    def __exit__(self, *exc_info) -> None:
        install(self._previous)
