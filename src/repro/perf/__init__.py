"""Performance model for the defense evaluation (Figs. 14-16).

The paper evaluates its defense in gem5 full-system mode; here the same
*relative* comparisons (No-DDIO vs DDIO vs adaptive partitioning vs the
randomization schemes) come from a trace-driven model: workloads issue
memory accesses through an L1 + shared-LLC hierarchy and through the real
NIC/driver path, so throughput, DRAM traffic, miss rates and tail latency
all derive from the same cache simulator the attack runs on.

* :mod:`repro.perf.agent` — a process + private L1 issuing timed accesses.
* :mod:`repro.perf.workloads` — dd-style file copy, small-payload TCP
  receive, and an Nginx-like request server (the paper's workload mix).
* :mod:`repro.perf.wrk` — an open-loop constant-rate load generator with
  latency percentiles, standing in for wrk2.
"""

from repro.perf.agent import MemAgent
from repro.perf.workloads import FileCopyWorkload, NginxServer, TcpRecvWorkload
from repro.perf.wrk import LatencyReport, LoadGenerator

__all__ = [
    "MemAgent",
    "FileCopyWorkload",
    "NginxServer",
    "TcpRecvWorkload",
    "LatencyReport",
    "LoadGenerator",
]
