"""A workload's memory agent: process + private L1 over the shared LLC."""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy, L1Cache


class MemAgent:
    """Issues loads/stores for a victim workload through L1 + LLC.

    Unlike the spy (which deliberately works at LLC granularity), victim
    workloads have the normal locality structure, so an L1 in front of the
    LLC matters for realistic traffic: hot lines filter out, and only the
    L1 miss stream reaches the shared cache.
    """

    def __init__(self, machine, name: str, l1_kb: int = 32, l1_ways: int = 8) -> None:
        self.machine = machine
        self.process = machine.new_process(name)
        self.hierarchy = CacheHierarchy(
            machine.llc,
            l1=L1Cache(size_kb=l1_kb, ways=l1_ways, line_size=machine.llc.geometry.line_size),
        )
        self.cycles_spent = 0

    # ------------------------------------------------------------------
    # Mapping (delegates to the process address space)
    # ------------------------------------------------------------------
    def mmap(self, n_pages: int) -> int:
        return self.process.mmap(n_pages)

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def read(self, vaddr: int) -> int:
        """Timed load; advances the machine clock, returns latency."""
        return self._access(vaddr, write=False)

    def write(self, vaddr: int) -> int:
        """Timed store; advances the machine clock, returns latency."""
        return self._access(vaddr, write=True)

    def _access(self, vaddr: int, write: bool) -> int:
        machine = self.machine
        machine.events.run_due(machine.clock.now)
        paddr = self.process.addrspace.translate(vaddr)
        _hit, latency = self.hierarchy.access(paddr, write=write, now=machine.clock.now)
        machine.clock.advance(latency)
        self.cycles_spent += latency
        return latency

    def read_kernel(self, paddr: int) -> int:
        """Timed load of a kernel physical address (skb data, rx pages)."""
        machine = self.machine
        machine.events.run_due(machine.clock.now)
        _hit, latency = self.hierarchy.access(paddr, write=False, now=machine.clock.now)
        machine.clock.advance(latency)
        self.cycles_spent += latency
        return latency

    def compute(self, cycles: int) -> None:
        """Non-memory work."""
        self.machine.idle(cycles)
        self.cycles_spent += cycles
