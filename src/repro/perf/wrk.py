"""Open-loop constant-rate load generation with latency percentiles.

Stands in for the wrk2 tool the paper uses for Fig. 16: requests arrive on
a fixed schedule regardless of how the server is doing (open loop — this is
what exposes queueing delay in the tail), and response latency is recorded
per request.  Percentiles up to p99.99 are reported, like wrk2's latency
histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import percentiles

#: The percentile points Fig. 16 plots.
FIG16_PERCENTILES = (25.0, 50.0, 90.0, 99.0, 99.9, 99.99)


@dataclass
class LatencyReport:
    """Latency distribution of one load-generation run."""

    latencies_cycles: list[int]
    duration_cycles: int
    frequency_hz: float
    offered_rps: float

    @property
    def completed(self) -> int:
        return len(self.latencies_cycles)

    @property
    def achieved_rps(self) -> float:
        if self.duration_cycles == 0:
            return 0.0
        return self.completed * self.frequency_hz / self.duration_cycles

    def percentiles_ms(
        self, points: tuple[float, ...] = FIG16_PERCENTILES
    ) -> dict[float, float]:
        """Latency percentiles in milliseconds."""
        cycle_ms = 1000.0 / self.frequency_hz
        raw = percentiles(self.latencies_cycles, points)
        return {p: v * cycle_ms for p, v in raw.items()}

    def mean_ms(self) -> float:
        cycle_ms = 1000.0 / self.frequency_hz
        return sum(self.latencies_cycles) / len(self.latencies_cycles) * cycle_ms


class LoadGenerator:
    """Constant-rate open-loop driver for a request server.

    The server is anything with ``handle_request() -> service_cycles``
    (e.g. :class:`repro.perf.workloads.NginxServer`).  Requests that arrive
    while the server is busy queue FIFO; their latency includes the wait.
    """

    def __init__(self, machine, server, rate_rps: float, n_requests: int) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        if n_requests <= 0:
            raise ValueError(f"n_requests must be positive, got {n_requests}")
        self.machine = machine
        self.server = server
        self.rate_rps = rate_rps
        self.n_requests = n_requests

    def run(self) -> LatencyReport:
        machine = self.machine
        clock = machine.clock
        interval = clock.cycles(1.0 / self.rate_rps)
        start = clock.now
        latencies: list[int] = []
        for i in range(self.n_requests):
            arrival = start + i * interval
            if clock.now < arrival:
                machine.idle(arrival - clock.now)
            # Server picks the request up now (possibly late = queueing).
            self.server.handle_request()
            latencies.append(clock.now - arrival)
        return LatencyReport(
            latencies_cycles=latencies,
            duration_cycles=clock.now - start,
            frequency_hz=clock.frequency_hz,
            offered_rps=self.rate_rps,
        )
