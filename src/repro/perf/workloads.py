"""The defense-evaluation workloads (Section VII-a of the paper).

Three I/O-heavy workloads, matching the paper's mix:

* :class:`FileCopyWorkload` — ``dd`` copying a file from disk: disk DMA
  streams pages in (through DDIO when enabled), the CPU reads them and
  writes the destination.
* :class:`TcpRecvWorkload` — a process that constantly receives TCP
  packets with 8-byte payloads through the NIC/driver path and reads them.
* :class:`NginxServer` — an Nginx-like request handler: parse a request
  that arrived by NIC, look up a file in a page-cache region (Zipf
  popularity), touch per-request application state, write the response.

All memory goes through a :class:`~repro.perf.agent.MemAgent`, so LLC
pressure, DDIO interference and the partitioning defense all show up in
the measured service times and DRAM traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.packet import Frame
from repro.perf.agent import MemAgent


@dataclass
class WorkloadReport:
    """Outcome of a workload run."""

    items: int
    cycles: int
    reads: int
    writes: int
    llc_miss_rate: float

    def items_per_second(self, frequency_hz: float) -> float:
        if self.cycles == 0:
            return 0.0
        return self.items * frequency_hz / self.cycles


class FileCopyWorkload:
    """dd-style copy: disk DMA in, CPU read, CPU write to destination."""

    def __init__(self, machine, total_kb: int = 4096, chunk_kb: int = 4) -> None:
        self.machine = machine
        self.agent = MemAgent(machine, "dd")
        self.total_kb = total_kb
        self.chunk_kb = chunk_kb
        self._line = machine.llc.geometry.line_size
        page_size = machine.physmem.page_size
        chunk_pages = max(1, chunk_kb * 1024 // page_size)
        # Source page-cache pages are refilled by disk DMA; destination is a
        # buffer the process owns.  Both recycled, like real page cache.
        self._src_pages = 32
        self._src = self.agent.mmap(self._src_pages * chunk_pages)
        self._dst = self.agent.mmap(self._src_pages * chunk_pages)
        self._chunk_bytes = chunk_pages * page_size

    def run(self) -> WorkloadReport:
        """Copy the configured volume; returns traffic/miss accounting."""
        machine = self.machine
        llc = machine.llc
        stats0 = llc.stats.snapshot()
        traffic0 = (llc.traffic.reads, llc.traffic.writes)
        start = machine.clock.now
        n_chunks = self.total_kb // self.chunk_kb
        lines_per_chunk = self._chunk_bytes // self._line
        for chunk in range(n_chunks):
            slot = chunk % self._src_pages
            src_base = self._src + slot * self._chunk_bytes
            dst_base = self._dst + slot * self._chunk_bytes
            # Disk DMA fills the source pages (DDIO path when enabled).
            translate = self.agent.process.addrspace.translate
            for i in range(lines_per_chunk):
                llc.io_write(translate(src_base + i * self._line), now=machine.clock.now)
            # CPU copies: read source line, write destination line.
            for i in range(lines_per_chunk):
                self.agent.read(src_base + i * self._line)
                self.agent.write(dst_base + i * self._line)
        cycles = machine.clock.now - start
        return WorkloadReport(
            items=n_chunks,
            cycles=cycles,
            reads=llc.traffic.reads - traffic0[0],
            writes=llc.traffic.writes - traffic0[1],
            llc_miss_rate=llc.stats.delta(stats0).miss_rate,
        )


class TcpRecvWorkload:
    """Constant receipt of 8-byte-payload TCP packets, read by the app."""

    def __init__(self, machine, n_packets: int = 2000) -> None:
        if machine.nic is None:
            raise RuntimeError("TcpRecvWorkload needs an installed NIC")
        self.machine = machine
        self.agent = MemAgent(machine, "tcp-recv")
        self.n_packets = n_packets
        self._line = machine.llc.geometry.line_size
        # App-level receive buffer + connection state.
        self._app_buf = self.agent.mmap(4)
        self._state = self.agent.mmap(4)

    def run(self) -> WorkloadReport:
        machine = self.machine
        llc = machine.llc
        stats0 = llc.stats.snapshot()
        traffic0 = (llc.traffic.reads, llc.traffic.writes)
        start = machine.clock.now
        frame = None
        page_size = machine.physmem.page_size
        state_lines = 4 * page_size // self._line
        for i in range(self.n_packets):
            # 8-byte payload -> one-block frame (64 B on the wire).
            frame = Frame(size=64, protocol="tcp")
            machine.nic.deliver(frame)
            # Application epoll wakeup: read the payload (skb points into
            # the rx buffer line) and update connection state.
            ring = machine.ring
            rx_buffer = ring.buffers[(ring.head - 1) % len(ring.buffers)]
            self.agent.read_kernel(rx_buffer.dma_paddr)
            self.agent.read(self._app_buf + (i % 64) * self._line)
            self.agent.write(self._state + (i % state_lines) * self._line)
            self.agent.compute(120)
        cycles = machine.clock.now - start
        return WorkloadReport(
            items=self.n_packets,
            cycles=cycles,
            reads=llc.traffic.reads - traffic0[0],
            writes=llc.traffic.writes - traffic0[1],
            llc_miss_rate=llc.stats.delta(stats0).miss_rate,
        )


class NginxServer:
    """An Nginx-like static-file server handling one request at a time.

    Per request: the request frame arrives via the NIC, the server parses
    it, picks a file by Zipf popularity, reads the file's lines from the
    page-cache region, touches per-connection state, and writes the
    response headers.  Service time is whatever the memory system makes it.
    """

    def __init__(
        self,
        machine,
        n_files: int = 64,
        file_kb: int = 16,
        hot_state_kb: int = 256,
        zipf_s: float = 1.1,
        rng: random.Random | None = None,
    ) -> None:
        if machine.nic is None:
            raise RuntimeError("NginxServer needs an installed NIC")
        self.machine = machine
        self.agent = MemAgent(machine, "nginx")
        self.rng = rng or random.Random(5)
        self._line = machine.llc.geometry.line_size
        page_size = machine.physmem.page_size
        self.file_lines = file_kb * 1024 // self._line
        file_pages = max(1, file_kb * 1024 // page_size)
        self._files = [self.agent.mmap(file_pages) for _ in range(n_files)]
        self._state = self.agent.mmap(max(1, hot_state_kb * 1024 // page_size))
        self._state_lines = hot_state_kb * 1024 // self._line
        self._resp = self.agent.mmap(4)
        # Zipf-ish popularity weights.
        weights = [1.0 / (rank + 1) ** zipf_s for rank in range(n_files)]
        total = sum(weights)
        self._cum = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self.requests_served = 0
        #: Optional randomization defense whose pending overhead the server
        #: (driver, really) pays on the request path.
        self.randomizer = None

    def _pick_file(self) -> int:
        u = self.rng.random()
        for idx, edge in enumerate(self._cum):
            if u <= edge:
                return idx
        return len(self._cum) - 1

    def handle_request(self, request_frame: Frame | None = None) -> int:
        """Serve one request; returns service cycles."""
        machine = self.machine
        start = machine.clock.now
        frame = request_frame or Frame(size=256, protocol="tcp")
        machine.nic.deliver(frame)
        # Read the request bytes out of the rx buffer: cache-resident under
        # DDIO, a trip to DRAM without it — the service-time half of DDIO's
        # benefit.
        ring = machine.ring
        rx_buffer = ring.buffers[(ring.head - 1) % len(ring.buffers)]
        for i in range(frame.n_blocks(self._line)):
            self.agent.read_kernel(rx_buffer.dma_paddr + i * self._line)
        if self.randomizer is not None:
            pending = self.randomizer.drain_pending()
            if pending:
                self.agent.compute(pending)
        # Parse request: read connection state.
        for i in range(4):
            self.agent.read(
                self._state
                + ((self.requests_served * 7 + i) % self._state_lines) * self._line
            )
        # Read the file body from page cache.
        file_base = self._files[self._pick_file()]
        for i in range(self.file_lines):
            self.agent.read(file_base + i * self._line)
        # Build response headers + log entry.
        for i in range(8):
            self.agent.write(self._resp + i * self._line)
        self.agent.compute(400)
        self.requests_served += 1
        return machine.clock.now - start

    def serve_closed_loop(self, n_requests: int) -> WorkloadReport:
        """Back-to-back service (saturation throughput, Fig. 14)."""
        machine = self.machine
        llc = machine.llc
        stats0 = llc.stats.snapshot()
        traffic0 = (llc.traffic.reads, llc.traffic.writes)
        start = machine.clock.now
        for _ in range(n_requests):
            self.handle_request()
        return WorkloadReport(
            items=n_requests,
            cycles=machine.clock.now - start,
            reads=llc.traffic.reads - traffic0[0],
            writes=llc.traffic.writes - traffic0[1],
            llc_miss_rate=llc.stats.delta(stats0).miss_rate,
        )
