"""Time-ordered event queue.

The simulation interleaves two independent actors: the NIC (delivering
packets at times dictated by the traffic source and link rate) and CPU
processes (the spy probing the cache, victim workloads).  CPU actors drive
the clock forward with their memory accesses; before each access the machine
drains all events whose timestamp has been reached, so packet DMA lands in
the cache at the correct simulated instant relative to the spy's probes.

Cancellation is tombstone-based: ``Event.cancel`` marks the entry and tells
the queue, which keeps an exact live count (so ``len()`` is O(1) and never
counts tombstones) and drops cancelled entries lazily when they surface at
the heap top — or eagerly, by compacting the heap, once tombstones
outnumber live events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Compaction threshold: rebuild the heap when it holds more than this many
#: entries and over half of them are tombstones.
_COMPACT_MIN_HEAP = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire in
    scheduling order, keeping runs deterministic.
    """

    time: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Optional burst handler: ``drain(event, limit)`` may process the
    #: event *and* any amount of follow-on work of the same actor up to
    #: simulated time ``limit`` (``None`` = unbounded), provided nothing
    #: observable could interleave.  Only the Machine's event loop invokes
    #: it (see :meth:`repro.core.machine.Machine.idle`); ``run_due`` always
    #: takes the scalar ``action`` path.
    drain: "Callable[[Event, int | None], Any] | None" = field(
        default=None, compare=False, repr=False
    )
    _queue: "EventQueue | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives.

        Safe to call repeatedly, and a no-op after the event has fired.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        self._queue = None
        if queue is not None:
            queue._on_cancel()


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by simulated time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        #: Optional telemetry tracer; when set (and enabled), every labelled
        #: event that fires is recorded as an instant trace event.
        self.tracer = None

    def __len__(self) -> int:
        return self._live

    def schedule(
        self,
        time: int,
        action: Callable[[], Any],
        label: str = "",
        drain: "Callable[[Event, int | None], Any] | None" = None,
    ) -> Event:
        """Schedule ``action`` to run at absolute cycle ``time``.

        ``drain`` optionally marks the event burst-capable (see
        :class:`Event`); scalar execution via ``run_due`` is unaffected.
        """
        if time < 0:
            raise ValueError(f"cannot schedule event in negative time: {time}")
        event = Event(
            time=time,
            seq=next(self._counter),
            action=action,
            label=label,
            drain=drain,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _on_cancel(self) -> None:
        """Bookkeeping for one cancellation; compacts when tombstone-heavy."""
        self._live -= 1
        heap = self._heap
        if len(heap) > _COMPACT_MIN_HEAP and self._live * 2 < len(heap):
            self._heap = [event for event in heap if not event.cancelled]
            heapq.heapify(self._heap)

    @property
    def heap_size(self) -> int:
        """Heap entries including tombstones (introspection for tests)."""
        return len(self._heap)

    def peek_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def peek_head(self) -> Event | None:
        """The earliest pending live event, still queued, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def pop_head(self) -> Event | None:
        """Remove and return the earliest pending live event (no firing)."""
        head = self.peek_head()
        if head is None:
            return None
        heapq.heappop(self._heap)
        head._queue = None
        self._live -= 1
        return head

    def run_due(self, now: int) -> int:
        """Fire every pending event with ``time <= now``; return count fired.

        Events may schedule further events; those are honoured in the same
        call if their time is also due.
        """
        fired = 0
        tracer = self.tracer
        while self._heap and self._heap[0].time <= now:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event._queue = None
            self._live -= 1
            if tracer is not None and tracer.enabled and event.label:
                tracer.instant(
                    f"event:{event.label}", cat="events", args={"sim_now": event.time}
                )
            event.action()
            fired += 1
        return fired

    def run_until_empty(self, clock) -> int:
        """Drain the queue completely, advancing ``clock`` to each event.

        Used by pure victim-side simulations (no CPU actor driving time).
        """
        fired = 0
        while True:
            t = self.peek_time()
            if t is None:
                return fired
            clock.advance_to(t)
            fired += self.run_due(clock.now)

    def clear(self) -> None:
        """Drop all pending events."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0
