"""Time-ordered event queue.

The simulation interleaves two independent actors: the NIC (delivering
packets at times dictated by the traffic source and link rate) and CPU
processes (the spy probing the cache, victim workloads).  CPU actors drive
the clock forward with their memory accesses; before each access the machine
drains all events whose timestamp has been reached, so packet DMA lands in
the cache at the correct simulated instant relative to the spy's probes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire in
    scheduling order, keeping runs deterministic.
    """

    time: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by simulated time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time: int, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run at absolute cycle ``time``."""
        if time < 0:
            raise ValueError(f"cannot schedule event in negative time: {time}")
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_due(self, now: int) -> int:
        """Fire every pending event with ``time <= now``; return count fired.

        Events may schedule further events; those are honoured in the same
        call if their time is also due.
        """
        fired = 0
        while self._heap and self._heap[0].time <= now:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.action()
            fired += 1
        return fired

    def run_until_empty(self, clock) -> int:
        """Drain the queue completely, advancing ``clock`` to each event.

        Used by pure victim-side simulations (no CPU actor driving time).
        """
        fired = 0
        while True:
            t = self.peek_time()
            if t is None:
                return fired
            clock.advance_to(t)
            fired += self.run_due(clock.now)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
