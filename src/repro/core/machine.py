"""The simulated machine: memory + LLC + NIC + driver + processes.

A :class:`Machine` is the top-level object experiments construct.  Exactly
one CPU actor (normally the spy) *drives* simulated time: each of its memory
accesses advances the clock by the access latency, and before every access
the machine fires all pending events (packet arrivals, delayed driver work,
defense adaptation) whose time has come.  Other actors — the NIC, the
driver, victim workloads modelled as events — interleave with the driver of
time at cycle accuracy.

Typical setup::

    machine = Machine()
    machine.install_nic()
    spy = machine.new_process("spy")
    vaddr = spy.mmap_huge(4)
    latency = spy.timed_access(vaddr)
"""

from __future__ import annotations

import random

import numpy as np

from repro.cache.llc import SlicedLLC
from repro.core.clock import SimClock
from repro.core.config import MachineConfig
from repro.core.events import EventQueue
from repro.mem.addrspace import AddressSpace
from repro.mem.physmem import PhysicalMemory
from repro.telemetry.context import Telemetry, current_telemetry


class Process:
    """A CPU process: an address space plus clock-driving memory accesses.

    ``access`` is the only way attacker code touches memory, and it works
    exactly like real code does: issue a load, pay the latency.  The
    returned latency (plus :attr:`TimingParams.measure_overhead` for the
    timed variant) is all the information the spy ever gets.
    """

    def __init__(self, machine: "Machine", name: str) -> None:
        self.machine = machine
        self.name = name
        self.addrspace = AddressSpace(machine.physmem, name)

    # -- mapping ------------------------------------------------------
    def mmap(self, n_pages: int, node: int | None = None) -> int:
        """Map 4 KB pages with (randomised) physical backing."""
        return self.addrspace.mmap(n_pages, node)

    def mmap_huge(self, n_huge_pages: int = 1) -> int:
        """Map 2 MB huge pages (physically contiguous, aligned)."""
        return self.addrspace.mmap_huge(n_huge_pages)

    # -- memory accesses ----------------------------------------------
    def access(self, vaddr: int, write: bool = False) -> int:
        """Perform one memory access; returns its latency in cycles."""
        machine = self.machine
        machine.events.run_due(machine.clock.now)
        paddr = self.addrspace.translate(vaddr)
        _hit, latency = machine.llc.cpu_access(paddr, write=write, now=machine.clock.now)
        machine.clock.advance(latency)
        return latency

    def timed_access(self, vaddr: int, write: bool = False) -> int:
        """Access with timer overhead included — what rdtscp would report.

        Under an active fault plan the measurement carries jitter: extra
        cycles (an interrupt, SMM, a co-scheduled hyperthread) that both
        elapse on the clock and inflate the reported latency, exactly the
        noise a real rdtscp-based spy has to threshold through.
        """
        machine = self.machine
        overhead = machine.llc.timing.measure_overhead
        latency = self.access(vaddr, write)
        if machine.faults is not None:
            overhead += machine.faults.probe_jitter()
        machine.clock.advance(overhead)
        return latency + overhead

    def access_many(
        self, vaddrs, write: bool = False, timed: bool = False
    ) -> np.ndarray:
        """Batched :meth:`access`/:meth:`timed_access` over many addresses.

        Semantically one :meth:`access` (or :meth:`timed_access`) per
        address, in order — pending events still fire at the correct
        simulated instants — but issued as engine-batched chunks whenever
        no event can interrupt the chunk (see
        :meth:`Machine.cpu_access_many`).  Returns the per-access latency
        array the sequential loop would have produced.
        """
        translate = self.addrspace.translate
        paddrs = np.fromiter(
            (translate(int(v)) for v in vaddrs), np.int64, count=len(vaddrs)
        )
        return self.machine.cpu_access_many(paddrs, write=write, timed=timed)

    def flush(self, vaddr: int) -> int:
        """CLFLUSH the line containing ``vaddr``."""
        machine = self.machine
        machine.events.run_due(machine.clock.now)
        latency = machine.llc.flush(self.addrspace.translate(vaddr))
        machine.clock.advance(latency)
        return latency

    def compute(self, cycles: int) -> None:
        """Burn CPU time without touching memory (busy wait / work)."""
        self.machine.idle(cycles)


class Machine:
    """Assembled simulation of the paper's DDIO host."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        #: Observability hooks.  Defaults to the ambient telemetry (see
        #: repro.telemetry.context) so experiments need no plumbing; when
        #: ``None`` every hook site short-circuits and the machine behaves
        #: bit-identically to an uninstrumented build.
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        self.rng = random.Random(cfg.seed)
        self.clock = SimClock(cfg.processor.frequency_hz)
        self.events = EventQueue()
        self.physmem = PhysicalMemory(
            size_bytes=cfg.memory_bytes,
            page_size=cfg.ring.page_size,
            numa_nodes=cfg.numa_nodes,
            rng=random.Random(cfg.seed + 1),
        )
        self.llc = SlicedLLC(
            geometry=cfg.cache,
            ddio=cfg.ddio,
            timing=cfg.timing,
            traffic=self.physmem.traffic,
            backend=cfg.cache_backend,
            seed=cfg.seed,
        )
        self.kernel = AddressSpace(self.physmem, "kernel")
        self.nic = None
        self.driver = None
        self.ring = None
        if self.telemetry is not None:
            self.llc.telemetry = self.telemetry
            self.events.tracer = self.telemetry.tracer
        #: When True (default), the idle/drain event loops may hand a
        #: burst-capable event (``Event.drain``) a whole window of
        #: simulated time — the traffic sources use this to deliver frame
        #: bursts without one heap round-trip per frame.  Set False to
        #: force the scalar per-event path (the differential harness does,
        #: to pin burst-vs-scalar equivalence).
        self.allow_bursts = True
        #: Seeded fault injection (None when cfg.faults is all-zero, in
        #: which case no fault machinery exists and behaviour is
        #: bit-identical to a pre-faults build).
        self.faults = None
        if cfg.faults.active:
            from repro.faults import FaultPlan, NoisyCoRunner

            self.faults = FaultPlan.from_config(
                cfg.faults, cfg.seed, telemetry=self.telemetry, clock=self.clock
            )
            if self.faults.corunner_active:
                NoisyCoRunner(self, self.faults).start()

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def install_nic(
        self,
        shared_page_prob: float = 0.0,
        log_receives: bool = False,
        node: int = 0,
        legacy: bool = False,
    ):
        """Create and wire the rx ring, IGB driver and NIC; returns the NIC.

        ``legacy=True`` installs the frozen scalar datapath from
        :mod:`repro.nic.legacy` instead — reference side of the rx
        differential harness and benchmark only.
        """
        # Imported here to keep core free of a package cycle.
        from repro.nic.nic import RxTemplates
        from repro.nic.ring import RxRing

        if legacy:
            from repro.nic.legacy import LegacyIgbDriver as driver_cls
            from repro.nic.legacy import LegacyNic as nic_cls
        else:
            from repro.nic.driver import IgbDriver as driver_cls
            from repro.nic.nic import Nic as nic_cls

        if self.nic is not None:
            raise RuntimeError("NIC already installed")
        self._nic_legacy = legacy

        def build_ring() -> RxRing:
            return RxRing(
                self.physmem,
                config=self.config.ring,
                node=node,
                rng=random.Random(self.config.seed + 2),
            )

        tele = self.telemetry
        if tele is not None and tele.tracer.enabled:
            # The initial buffer allocation is the driver's
            # igb_alloc_rx_buffers pass — trace it as a refill.
            with tele.tracer.span(
                "driver-refill",
                cat="driver",
                args={
                    "reason": "init",
                    "descriptors": self.config.ring.n_descriptors,
                    "sim_now": self.clock.now,
                },
            ):
                self.ring = build_ring()
        else:
            self.ring = build_ring()
        if legacy:
            self.driver = driver_cls(
                self,
                self.ring,
                config=self.config.ring,
                shared_page_prob=shared_page_prob,
                log_receives=log_receives,
                rng=random.Random(self.config.seed + 3),
            )
            self.nic = nic_cls(self, self.ring, self.driver)
        else:
            templates = RxTemplates(self.llc, self.config.ring.buffer_size)
            self.driver = driver_cls(
                self,
                self.ring,
                config=self.config.ring,
                shared_page_prob=shared_page_prob,
                log_receives=log_receives,
                rng=random.Random(self.config.seed + 3),
                templates=templates,
            )
            self.nic = nic_cls(self, self.ring, self.driver, templates=templates)
        return self.nic

    def restart_networking(self) -> None:
        """Tear down and re-create the ring (fresh buffer placement), as a
        system reboot / networking restart would."""
        if self.nic is None:
            raise RuntimeError("no NIC installed")
        for buffer in self.ring.buffers:
            self.physmem.free_frame(buffer.page_paddr // self.physmem.page_size)
        log = self.driver.log_receives
        shared = self.driver.shared_page_prob
        self.nic = None
        self.install_nic(
            shared_page_prob=shared,
            log_receives=log,
            legacy=getattr(self, "_nic_legacy", False),
        )

    def new_process(self, name: str) -> Process:
        """Create a CPU process on this machine."""
        return Process(self, name)

    # ------------------------------------------------------------------
    # Batched CPU accesses
    # ------------------------------------------------------------------
    def cpu_access_many(
        self,
        paddrs: np.ndarray,
        write: bool = False,
        timed: bool = False,
        decomp: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Issue many CPU accesses with per-access event/clock semantics.

        Equivalent to a loop of ``Process.access`` / ``Process.timed_access``
        over physical addresses, but the loop body is replaced by batched
        :meth:`SlicedLLC.access_many` chunks wherever that is provably
        unobservable:

        * a chunk is only batched when the earliest pending event lies
          beyond a worst-case (all-miss) bound on the chunk's duration, so
          every event still fires before exactly the access it would have
          preceded in the sequential loop;
        * an active partition falls back to the scalar path (its presence
          clocks read the advancing ``clock.now`` on every fill);
        * timed accesses under an active fault plan fall back so
          measurement jitter draws stay per-access and bit-identical.

        ``decomp`` optionally carries the caller's cached ``(flats,
        lines)`` decomposition of ``paddrs`` (see
        :meth:`SlicedLLC.access_many`).

        Returns the int64 latency array the sequential loop would return.
        """
        llc = self.llc
        clock = self.clock
        events = self.events
        overhead = llc.timing.measure_overhead if timed else 0
        n = len(paddrs)
        out = np.empty(n, dtype=np.int64)
        scalar_only = llc.partition is not None or (timed and self.faults is not None)
        worst = llc.timing.llc_miss_latency + overhead
        faults = self.faults
        i = 0
        while i < n:
            events.run_due(clock.now)
            m = 0
            if not scalar_only:
                nxt = events.peek_time()
                if nxt is None:
                    m = n - i
                else:
                    m = min(n - i, (nxt - clock.now) // worst)
            if m <= 0:
                # Event imminent (or exact per-access semantics required):
                # one sequential access, then re-evaluate.
                lat = llc.cpu_access(int(paddrs[i]), write=write, now=clock.now)[1]
                if timed:
                    lat += overhead
                    if faults is not None:
                        lat += faults.probe_jitter()
                clock.advance(lat)
                out[i] = lat
                i += 1
                continue
            chunk_decomp = (
                (decomp[0][i : i + m], decomp[1][i : i + m])
                if decomp is not None
                else None
            )
            _hits, lats = llc.access_many(
                paddrs[i : i + m], write=write, now=clock.now, decomp=chunk_decomp
            )
            if timed:
                lats = lats + overhead
            out[i : i + m] = lats
            clock.advance(int(lats.sum()))
            i += m
        return out

    # ------------------------------------------------------------------
    # Time control
    # ------------------------------------------------------------------
    def _run_pending(self, target: int | None) -> None:
        """Fire all pending events up to ``target`` (``None`` = all of them).

        Burst fast path: when the head event is burst-capable
        (``Event.drain`` set, e.g. a traffic source's next-frame event) and
        nothing else is pending before it would matter, the whole window up
        to the next foreign event is handed to the drain handler in one
        call — the traffic source then delivers frames back-to-back without
        one heap round-trip per frame.  The window stops one cycle short of
        the next pending event so ties and same-cycle orderings are decided
        by the heap exactly as in the scalar path.  With tracing enabled
        (per-event instants are observable) or ``allow_bursts`` off, every
        event takes the scalar ``run_due`` path.
        """
        events = self.events
        clock = self.clock
        tracer = events.tracer
        bursts = self.allow_bursts and (tracer is None or not tracer.enabled)
        while True:
            head = events.peek_head()
            if head is None or (target is not None and head.time > target):
                return
            if bursts and head.drain is not None:
                events.pop_head()
                clock.advance_to(head.time)
                nxt = events.peek_time()
                if nxt is None:
                    limit = target
                elif target is None:
                    limit = nxt - 1
                else:
                    limit = min(target, nxt - 1)
                head.drain(head, limit)
            else:
                clock.advance_to(head.time)
                events.run_due(clock.now)

    def idle(self, cycles: int) -> None:
        """Let simulated time pass (the driving actor waits), firing events."""
        target = self.clock.now + cycles
        self._run_pending(target)
        self.clock.advance_to(target)

    def run_events_until(self, target: int) -> None:
        """Advance to ``target`` firing all events (no CPU actor)."""
        self.idle(max(0, target - self.clock.now))

    def drain_events(self) -> None:
        """Run every remaining event, advancing the clock as needed."""
        self._run_pending(None)
