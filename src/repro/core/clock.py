"""Global simulation clock.

All components of the simulated machine share one :class:`SimClock`.  Time
is measured in CPU cycles of the baseline processor (3.3 GHz per Table II of
the paper), so one cycle is ~0.303 ns.  Components advance the clock when
they consume time (e.g. a cache miss costs ``TimingParams.llc_miss_latency``
cycles) and schedule future work (e.g. packet arrivals) via the event queue.
"""

from __future__ import annotations


class SimClock:
    """A monotonically increasing cycle counter.

    Parameters
    ----------
    frequency_hz:
        Clock frequency used to convert between cycles and seconds.  The
        paper's baseline processor runs at 3.3 GHz.
    """

    __slots__ = ("now", "frequency_hz")

    def __init__(self, frequency_hz: float = 3.3e9) -> None:
        self.now: int = 0
        self.frequency_hz = float(frequency_hz)

    def advance(self, cycles: int) -> int:
        """Move time forward by ``cycles`` and return the new time.

        Raises
        ------
        ValueError
            If ``cycles`` is negative — simulated time never runs backwards.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        self.now += cycles
        return self.now

    def advance_to(self, cycle: int) -> int:
        """Move time forward to absolute ``cycle`` (no-op if already past)."""
        if cycle > self.now:
            self.now = cycle
        return self.now

    def seconds(self, cycles: int | None = None) -> float:
        """Convert ``cycles`` (default: current time) to seconds."""
        if cycles is None:
            cycles = self.now
        return cycles / self.frequency_hz

    def cycles(self, seconds: float) -> int:
        """Convert a duration in seconds to an integral number of cycles."""
        if seconds < 0:
            raise ValueError(f"negative duration: {seconds}")
        return int(round(seconds * self.frequency_hz))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now}, t={self.seconds() * 1e6:.3f}us)"
