"""Core simulation infrastructure: clock, configuration, events, machine.

The Packet Chasing attack is a *timing* attack: everything the spy learns,
it learns by measuring how long its own memory accesses take.  The core
package therefore provides a cycle-granular simulation substrate that the
rest of the library (cache model, NIC model, attacker, defenses) shares:

* :class:`~repro.core.clock.SimClock` — the global cycle counter.
* :class:`~repro.core.events.EventQueue` — time-ordered event delivery used
  to interleave NIC packet arrivals with attacker memory accesses.
* :mod:`repro.core.config` — dataclasses describing the simulated hardware
  (cache geometry, DDIO policy, NIC ring, link rate, processor baseline from
  Table II of the paper).
* :class:`~repro.core.machine.Machine` — assembles memory, caches, NIC and
  driver into one system the attacker and victim processes run on.
"""

from repro.core.clock import SimClock
from repro.core.config import (
    CacheGeometry,
    DDIOConfig,
    LinkConfig,
    MachineConfig,
    ProcessorConfig,
    RingConfig,
    TimingParams,
)
from repro.core.events import Event, EventQueue
from repro.core.machine import Machine

__all__ = [
    "SimClock",
    "CacheGeometry",
    "DDIOConfig",
    "LinkConfig",
    "MachineConfig",
    "ProcessorConfig",
    "RingConfig",
    "TimingParams",
    "Event",
    "EventQueue",
    "Machine",
]
