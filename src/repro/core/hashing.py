"""Stable, content-addressed hashing of configuration and parameters.

The runner's disk cache (:mod:`repro.runner.cache`) keys results by a
digest of ``(experiment, MachineConfig, params, root_seed)``; that digest
must be stable across processes and Python invocations, so it cannot use
``hash()`` (salted per process) or ``pickle`` (protocol- and
memo-dependent).  Instead every value is first *canonicalised* into plain
JSON-serialisable data with a deterministic ordering, then digested as
compact sorted-key JSON.

Supported value types: ``None``, ``bool``, ``int``, ``str``, ``float``
(via ``repr``, so ``0.1`` hashes identically everywhere), ``bytes``,
lists/tuples, sets/frozensets (sorted by canonical form), mappings
(sorted by key) and dataclass instances (class name + canonical fields).
Anything else raises ``TypeError`` — silently hashing an unstable value
would poison cache keys.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to deterministic JSON-serialisable data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() is the shortest round-tripping decimal form (PEP 3101-era
        # float repr), identical on every platform we support.
        return {"__float__": repr(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                (canonicalize(item) for item in value),
                key=lambda c: json.dumps(c, sort_keys=True),
            )
        }
    if isinstance(value, dict):
        out = {}
        for key in sorted(value, key=str):
            if not isinstance(key, (str, int, bool)) and key is not None:
                raise TypeError(
                    f"cannot canonicalise mapping key of type {type(key).__name__}"
                )
            out[str(key)] = canonicalize(value[key])
        return out
    raise TypeError(f"cannot canonicalise value of type {type(value).__name__}")


def stable_digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``value``."""
    canonical = canonicalize(value)
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
