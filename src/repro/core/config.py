"""Configuration dataclasses describing the simulated hardware.

Defaults reproduce the paper's experimental platform:

* Dell PowerEdge T620 with Intel Xeon E5-2660: 20 MB last-level cache with
  16384 sets (8 slices x 2048 sets x 20 ways x 64 B lines), complex slice
  indexing (Fig. 2 of the paper).
* Intel I350 gigabit adapter driven by the IGB driver: 256 rx descriptors,
  2048-byte buffers packed two per 4096-byte page.
* DDIO: I/O writes allocate directly in the LLC, at most 2 ways per set.
* Baseline out-of-order processor parameters from Table II, used by the
  defense evaluation (:mod:`repro.perf`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    The default values describe the Xeon E5-2660 LLC used in the paper:
    20 MB, 16384 sets split over 8 slices, 20 ways, 64-byte lines.
    """

    line_size: int = 64
    n_slices: int = 8
    sets_per_slice: int = 2048
    ways: int = 20

    def __post_init__(self) -> None:
        for name in ("line_size", "n_slices", "sets_per_slice", "ways"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.sets_per_slice & (self.sets_per_slice - 1):
            raise ValueError(
                f"sets_per_slice must be a power of two, got {self.sets_per_slice}"
            )
        if self.n_slices & (self.n_slices - 1):
            raise ValueError(f"n_slices must be a power of two, got {self.n_slices}")

    @property
    def total_sets(self) -> int:
        """Total number of sets across all slices (16384 for the default)."""
        return self.n_slices * self.sets_per_slice

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes (20 MB for the default)."""
        return self.total_sets * self.ways * self.line_size

    @property
    def offset_bits(self) -> int:
        """Number of block-offset bits (6 for 64-byte lines)."""
        return self.line_size.bit_length() - 1

    @property
    def set_bits(self) -> int:
        """Number of set-index bits within a slice (11 for 2048 sets)."""
        return self.sets_per_slice.bit_length() - 1

    @property
    def slice_bits(self) -> int:
        """Number of slice-select bits (3 for 8 slices)."""
        return self.n_slices.bit_length() - 1


@dataclass(frozen=True)
class DDIOConfig:
    """Intel Data Direct I/O policy.

    When ``enabled``, inbound DMA writes allocate directly in the LLC.  Intel
    limits the allocation to ``write_allocate_ways`` ways per set (2 on real
    hardware); crucially the limit is on *how many* I/O lines may live in a
    set, not on *which* ways they occupy, so an allocation may still evict a
    CPU line — the root of the vulnerability (Section VII of the paper).
    """

    enabled: bool = True
    write_allocate_ways: int = 2

    def __post_init__(self) -> None:
        if self.write_allocate_ways < 1:
            raise ValueError(
                f"write_allocate_ways must be >= 1, got {self.write_allocate_ways}"
            )


@dataclass(frozen=True)
class RingConfig:
    """IGB driver rx ring configuration (Section III-A of the paper)."""

    n_descriptors: int = 256
    buffer_size: int = 2048
    page_size: int = 4096
    #: Packets at most this size are copied into the skb and the rx buffer is
    #: reused as-is (IGB_RX_HDR_LEN in the driver source).
    copy_threshold: int = 256

    def __post_init__(self) -> None:
        if self.n_descriptors <= 0:
            raise ValueError(f"n_descriptors must be positive, got {self.n_descriptors}")
        if self.buffer_size * 2 != self.page_size:
            raise ValueError(
                "the IGB driver packs exactly two buffers per page: "
                f"buffer_size={self.buffer_size}, page_size={self.page_size}"
            )
        if self.copy_threshold >= self.buffer_size:
            raise ValueError("copy_threshold must be smaller than buffer_size")


@dataclass(frozen=True)
class LinkConfig:
    """Ethernet link parameters.

    ``max_frame_rate`` computes the theoretical frames-per-second limit for
    a given frame size, accounting for preamble (8 B), inter-frame gap (12 B)
    and CRC (4 B) — the same line-rate arithmetic behind the paper's
    observation that 192-byte frames cap at ~500k frames/s on 1 GbE.
    """

    rate_bps: float = 1e9
    mtu: int = 1500
    min_frame: int = 64
    preamble_bytes: int = 8
    interframe_gap_bytes: int = 12
    crc_bytes: int = 4

    def wire_bytes(self, frame_size: int) -> int:
        """Bytes consumed on the wire by one frame of ``frame_size`` bytes."""
        padded = max(frame_size, self.min_frame)
        return padded + self.preamble_bytes + self.interframe_gap_bytes + self.crc_bytes

    def max_frame_rate(self, frame_size: int) -> float:
        """Maximum frames per second for back-to-back frames of this size."""
        return self.rate_bps / (8.0 * self.wire_bytes(frame_size))

    def frame_time_seconds(self, frame_size: int) -> float:
        """Wire time of one frame, in seconds."""
        return 1.0 / self.max_frame_rate(frame_size)


@dataclass(frozen=True)
class TimingParams:
    """Latency model (cycles) for the memory hierarchy.

    Values are representative of a Sandy Bridge-EP class part: an LLC hit
    costs tens of cycles, a miss to DRAM a couple hundred.  The attack only
    requires that the hit/miss gap be reliably measurable, which it is by a
    wide margin.
    """

    l1_hit_latency: int = 4
    l2_hit_latency: int = 12
    llc_hit_latency: int = 40
    llc_miss_latency: int = 200
    #: Latency between the NIC's memory write and the driver's header read
    #: when DDIO is disabled (characterised as < 20k cycles in Huggahalli et
    #: al., cited by the paper's Section IV-d).
    io_to_driver_latency: int = 8000
    #: Delay before the networking stack touches the payload of a large
    #: packet when DDIO is off.
    payload_touch_delay: int = 12000
    #: Cost of measuring time (rdtscp + serialisation overhead).
    measure_overhead: int = 30

    def __post_init__(self) -> None:
        if not (
            0
            < self.l1_hit_latency
            <= self.l2_hit_latency
            <= self.llc_hit_latency
            < self.llc_miss_latency
        ):
            raise ValueError(
                "latencies must satisfy 0 < l1 <= l2 <= llc_hit < llc_miss"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault-injection knobs (see :mod:`repro.faults`).

    All-zero (the default) means *no* fault machinery is constructed at all:
    the machine executes the exact pre-faults instruction stream.  Non-zero
    knobs drive seeded injectors — every draw comes from RNGs derived from
    the machine seed via the same SeedSequence discipline as the runner, so
    a given (seed, profile) produces bit-identical faults at any ``--jobs``.

    The named presets (``off``/``light``/``moderate``/``heavy``) live in
    :mod:`repro.faults.profiles`; ``profile`` records which one this config
    came from (informational, but part of the cache key on purpose).
    """

    #: Name of the preset this config was derived from ("custom" if none).
    profile: str = "off"
    #: Probability an in-flight frame is silently lost before the NIC.
    drop_prob: float = 0.0
    #: Probability a frame is delivered twice (link-level duplication).
    dup_prob: float = 0.0
    #: Probability two adjacent frames swap arrival order.
    reorder_prob: float = 0.0
    #: Multiplicative jitter on inter-frame gaps: each gap is scaled by a
    #: uniform draw from [1 - gap_jitter, 1 + gap_jitter] (bursts + lulls).
    gap_jitter: float = 0.0
    #: Probability the rx ring overflows and drops an arriving frame.
    nic_overflow_prob: float = 0.0
    #: Probability the descriptor refill stalls, delaying driver rx.
    refill_stall_prob: float = 0.0
    #: Length of one refill stall, in cycles.
    refill_stall_cycles: int = 20_000
    #: Wakeup rate of the noisy co-runner issuing competing LLC accesses
    #: (occupancy noise against PRIME+PROBE); 0 disables it.
    corunner_rate_hz: float = 0.0
    #: LLC accesses the co-runner issues per wakeup.
    corunner_accesses: int = 8
    #: Maximum extra cycles of measurement jitter per timed access.
    probe_jitter_cycles: int = 0
    #: Name of a time-varying :class:`~repro.faults.schedule.FaultSchedule`
    #: scaling every intensity as a function of simulated time ("" = the
    #: static behaviour; validated by the faults layer at plan build).
    schedule: str = ""

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "reorder_prob",
                     "nic_overflow_prob", "refill_stall_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.gap_jitter <= 1.0:
            raise ValueError(f"gap_jitter must be in [0, 1], got {self.gap_jitter}")
        for name in ("refill_stall_cycles", "corunner_accesses",
                     "probe_jitter_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.corunner_rate_hz < 0:
            raise ValueError(
                f"corunner_rate_hz must be >= 0, got {self.corunner_rate_hz}"
            )

    @property
    def active(self) -> bool:
        """Whether any injector would ever fire."""
        return bool(
            self.drop_prob
            or self.dup_prob
            or self.reorder_prob
            or self.gap_jitter
            or self.nic_overflow_prob
            or self.refill_stall_prob
            or self.corunner_rate_hz
            or self.probe_jitter_cycles
        )

    def scaled(self, factor: float) -> "FaultConfig":
        """Scale every intensity knob by ``factor`` (probabilities clamp at
        1.0) — the sweep axis of the noise-ablation experiment."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")

        def prob(p: float) -> float:
            return min(1.0, p * factor)

        return FaultConfig(
            profile=f"{self.profile}x{factor:g}",
            drop_prob=prob(self.drop_prob),
            dup_prob=prob(self.dup_prob),
            reorder_prob=prob(self.reorder_prob),
            gap_jitter=min(1.0, self.gap_jitter * factor),
            nic_overflow_prob=prob(self.nic_overflow_prob),
            refill_stall_prob=prob(self.refill_stall_prob),
            refill_stall_cycles=self.refill_stall_cycles,
            corunner_rate_hz=self.corunner_rate_hz * factor,
            corunner_accesses=self.corunner_accesses,
            probe_jitter_cycles=int(round(self.probe_jitter_cycles * factor)),
            schedule=self.schedule,
        )


@dataclass(frozen=True)
class ProcessorConfig:
    """Baseline processor configuration (Table II of the paper).

    These parameters scope the trace-driven performance model used for the
    defense evaluation; the cache side-channel experiments only need the
    frequency and the cache geometry.
    """

    frequency_hz: float = 3.3e9
    fetch_width: int = 4
    issue_width: int = 6
    int_regs: int = 160
    fp_regs: int = 144
    rob_entries: int = 168
    iq_entries: int = 54
    lq_entries: int = 64
    sq_entries: int = 36
    btb_entries: int = 256
    ras_entries: int = 16
    int_alus: int = 6
    int_mults: int = 1
    icache_kb: int = 32
    icache_ways: int = 8
    dcache_kb: int = 32
    dcache_ways: int = 8


@dataclass
class MachineConfig:
    """Top-level configuration bundle for a simulated machine."""

    cache: CacheGeometry = field(default_factory=CacheGeometry)
    ddio: DDIOConfig = field(default_factory=DDIOConfig)
    ring: RingConfig = field(default_factory=RingConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    timing: TimingParams = field(default_factory=TimingParams)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    #: Deterministic fault injection; all-zero (= "off") by default.
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Physical memory size; only page *frames* are modelled, not contents.
    memory_bytes: int = 1 << 32
    #: Number of NUMA nodes (the IGB reuse logic checks page_to_nid()).
    numa_nodes: int = 2
    #: Seed for all stochastic choices (page placement, noise, jitter).
    seed: int = 1234
    #: Cache index backend spec (see :mod:`repro.cache.backends`):
    #: "modulo" (conventional, the default), "keyed[:epoch=N]" (CEASER-
    #: shaped), "skewed[:partitions=P]" (ScatterCache-shaped).  Part of
    #: the config hash, so per-backend results cache independently.
    cache_backend: str = "modulo"
    #: Attach the adaptive attack supervisor (see :mod:`repro.attack.
    #: adaptive`) to experiments that support it.  Off by default: a
    #: non-adaptive run constructs zero adaptive machinery and executes
    #: the exact pre-adaptive instruction stream.
    adaptive: bool = False

    def to_dict(self) -> dict:
        """Plain nested-dict form of the full configuration.

        The inverse of :meth:`from_dict`; also the canonical input to
        :meth:`config_hash` and the runner's cache keys, so the layout is
        exactly the dataclass field structure — nothing derived, nothing
        omitted.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Rebuild a :class:`MachineConfig` from :meth:`to_dict` output."""
        sections = {
            "cache": CacheGeometry,
            "ddio": DDIOConfig,
            "ring": RingConfig,
            "link": LinkConfig,
            "timing": TimingParams,
            "processor": ProcessorConfig,
            "faults": FaultConfig,
        }
        kwargs: dict = {}
        known = {f.name for f in fields(cls)}
        for name, value in data.items():
            if name not in known:
                raise ValueError(f"unknown MachineConfig field {name!r}")
            factory = sections.get(name)
            kwargs[name] = factory(**value) if factory is not None else value
        return cls(**kwargs)

    def config_hash(self) -> str:
        """Stable sorted-key digest of the configuration.

        Two configs hash identically iff every field (recursively) is
        equal; the digest is stable across processes and platforms, which
        is what lets the disk cache key on it.
        """
        from repro.core.hashing import stable_digest

        return stable_digest(self.to_dict())

    def scaled_down(self) -> "MachineConfig":
        """Return a copy with a smaller LLC *and ring* for fast unit tests.

        The scaled geometry keeps 8 slices and 64-byte lines (so address
        decomposition is unchanged) and keeps the paper's 1:1 ratio between
        ring buffers and page-aligned cache sets: 4 page-aligned indices x 8
        slices = 32 sets, and a 32-descriptor ring.
        """
        return MachineConfig(
            cache=CacheGeometry(line_size=64, n_slices=8, sets_per_slice=256, ways=8),
            ddio=self.ddio,
            ring=RingConfig(
                n_descriptors=32,
                buffer_size=self.ring.buffer_size,
                page_size=self.ring.page_size,
                copy_threshold=self.ring.copy_threshold,
            ),
            link=self.link,
            timing=self.timing,
            processor=self.processor,
            faults=self.faults,
            memory_bytes=1 << 28,
            numa_nodes=self.numa_nodes,
            seed=self.seed,
            cache_backend=self.cache_backend,
            adaptive=self.adaptive,
        )

    def bench_scale(self) -> "MachineConfig":
        """Benchmark geometry: the paper's full set structure (2048 sets per
        slice -> 256 page-aligned sets, 256-descriptor ring) with reduced
        associativity so probe sweeps stay affordable in pure Python.
        EXPERIMENTS.md documents this scaling next to every result."""
        return MachineConfig(
            cache=CacheGeometry(line_size=64, n_slices=8, sets_per_slice=2048, ways=12),
            ddio=self.ddio,
            ring=self.ring,
            link=self.link,
            timing=self.timing,
            processor=self.processor,
            faults=self.faults,
            memory_bytes=1 << 30,
            numa_nodes=self.numa_nodes,
            seed=self.seed,
            cache_backend=self.cache_backend,
            adaptive=self.adaptive,
        )
