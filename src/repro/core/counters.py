"""Reusable merge/delta machinery for flat counter dataclasses.

Several subsystems expose a dataclass of integer counters (cache stats,
NIC DMA stats, driver receive stats) and all need the same four
operations for sharded runs and measurement windows: ``snapshot`` /
``from_snapshot`` to cross a process boundary, ``merge`` to reduce
per-shard counters, and ``delta`` for the snapshot-before / delta-after
idiom.  :class:`CounterStats` implements them once over
``__dataclass_fields__`` so each stats dataclass only declares its
fields.
"""

from __future__ import annotations


class CounterStats:
    """Mixin for ``@dataclass`` counter bags (all fields integer-valued)."""

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of all counters."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_snapshot(cls, snap: dict[str, int]):
        """Rebuild a stats object from a :meth:`snapshot` dict."""
        return cls(**{name: snap.get(name, 0) for name in cls.__dataclass_fields__})

    def merge(self, other):
        """Add another stats object (or snapshot dict) into this one.

        Used to combine per-shard / per-phase counters; returns ``self``
        so merges chain.
        """
        get = other.get if isinstance(other, dict) else lambda n, _d=0: getattr(other, n)
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + get(name, 0))
        return self

    def delta(self, since):
        """Counters accumulated since an earlier snapshot, as a new object.

        The measurement-window idiom every workload and telemetry phase
        uses: snapshot before, ``delta`` after, read derived rates off the
        returned object.
        """
        base = since if isinstance(since, dict) else since.snapshot()
        return type(self)(
            **{
                name: getattr(self, name) - base.get(name, 0)
                for name in self.__dataclass_fields__
            }
        )
