#!/usr/bin/env python
"""Benchmark the simulation hot path and gate against a committed baseline.

Measures, on the bench-scale machine (256 monitored sets x 12 ways):

* ``probe_sweep_ms``      — one timed PRIME+PROBE sweep through the packed
  engine (one batched machine call per sweep);
* ``fast_sweep_ms``       — the aggregate-latency (one fence per set) sweep;
* ``legacy_sweep_ms``     — the same timed sweep replayed per-line through
  the frozen :class:`~repro.cache.legacy.LegacySlicedLLC`, i.e. the
  pre-refactor cost of exactly the same accesses;
* ``machine_init_ms`` / ``legacy_llc_init_ms`` — LLC construction cost
  (the engine allocates three numpy arrays; the legacy model 16384 dicts);
* ``fig6_seconds``        — end-to-end ``repro run fig6`` (100 driver
  inits through the sharded runner, serial).

The headline number is ``sweep_speedup`` = legacy / engine sweep time:
a *ratio of two measurements from the same run*, so it is comparable
across machines and CI runners.  ``--check BASELINE.json`` fails (exit 1)
when the current ratio falls more than ``--tolerance`` (default 20%)
below the committed baseline's — i.e. when the engine sweep got slower
relative to the unchanging legacy reference.

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py --out BENCH_hotpath.json
    PYTHONPATH=src python scripts/bench_hotpath.py --check BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.attack.evictionset import EvictionSet
from repro.attack.primeprobe import ProbeMonitor
from repro.attack.timing import LatencyThreshold
from repro.cache.legacy import LegacySlicedLLC
from repro.core.config import MachineConfig
from repro.core.machine import Machine

N_SETS = 256
HUGE_PAGES = 24


def build_monitor(machine: Machine) -> ProbeMonitor:
    """Eviction sets covering ``N_SETS`` LLC sets at full associativity."""
    spy = machine.new_process("spy")
    base = spy.mmap_huge(HUGE_PAGES)
    llc = machine.llc
    hit = llc.timing.llc_hit_latency + llc.timing.measure_overhead
    miss = llc.timing.llc_miss_latency + llc.timing.measure_overhead
    threshold = LatencyThreshold(
        hit_mean=hit, miss_mean=miss, threshold=(hit + miss) / 2
    )
    ways = llc.geometry.ways
    page = 2 * 1024 * 1024
    by_set: dict[int, list[int]] = {}
    for off in range(0, HUGE_PAGES * page, llc.geometry.line_size):
        vaddr = base + off
        flat = llc.flat_set_of(spy.addrspace.translate(vaddr))
        by_set.setdefault(flat, []).append(vaddr)
    flats = [f for f, vs in by_set.items() if len(vs) >= ways][:N_SETS]
    if len(flats) < N_SETS:
        raise SystemExit(f"only {len(flats)} full sets found; raise HUGE_PAGES")
    sets = [
        EvictionSet(spy, by_set[f][:ways], threshold, set_index=f) for f in flats
    ]
    monitor = ProbeMonitor(spy, sets)
    monitor.prime()
    monitor.probe_once()  # settle into the steady all-hit state
    monitor.probe_once()
    return monitor


def bench_engine_sweeps(monitor: ProbeMonitor, rounds: int) -> tuple[float, float]:
    t0 = time.perf_counter()
    for _ in range(rounds):
        monitor.probe_once()
    sweep_ms = (time.perf_counter() - t0) / rounds * 1e3
    monitor.sample(2, fast_probe=True)
    t0 = time.perf_counter()
    monitor.sample(rounds, fast_probe=True)
    fast_ms = (time.perf_counter() - t0) / rounds * 1e3
    return sweep_ms, fast_ms


def bench_legacy_sweep(machine: Machine, monitor: ProbeMonitor, rounds: int) -> float:
    """The identical timed sweep, one Python call per line, legacy model."""
    llc = LegacySlicedLLC(
        geometry=machine.config.cache,
        ddio=machine.config.ddio,
        timing=machine.config.timing,
    )
    traversals = [
        [int(p) for p in es.probe_order_paddrs()] for es in monitor.sets
    ]
    thresholds = [es.threshold for es in monitor.sets]
    for traversal in traversals:  # prime
        for paddr in traversal:
            llc.cpu_access(paddr)
    overhead = llc.timing.measure_overhead
    t0 = time.perf_counter()
    for _ in range(rounds):
        for traversal, threshold in zip(traversals, thresholds):
            misses = 0
            for paddr in traversal:
                _hit, latency = llc.cpu_access(paddr)
                if threshold.is_miss(latency + overhead):
                    misses += 1
            traversal.reverse()
    return (time.perf_counter() - t0) / rounds * 1e3


def bench_init(config: MachineConfig, rounds: int = 3) -> tuple[float, float]:
    t0 = time.perf_counter()
    for _ in range(rounds):
        Machine(config)
    machine_ms = (time.perf_counter() - t0) / rounds * 1e3
    t0 = time.perf_counter()
    for _ in range(rounds):
        LegacySlicedLLC(geometry=config.cache, ddio=config.ddio, timing=config.timing)
    legacy_ms = (time.perf_counter() - t0) / rounds * 1e3
    return machine_ms, legacy_ms


def bench_fig6() -> float:
    from repro.experiments.mapping import run_fig6

    t0 = time.perf_counter()
    run_fig6(instances=100, config=MachineConfig().bench_scale())
    return time.perf_counter() - t0


def run_benchmarks(rounds: int, skip_fig6: bool) -> dict:
    config = MachineConfig().bench_scale()
    machine = Machine(config)
    monitor = build_monitor(machine)
    n_accesses = sum(len(es) for es in monitor.sets)
    sweep_ms, fast_ms = bench_engine_sweeps(monitor, rounds)
    legacy_ms = bench_legacy_sweep(machine, monitor, rounds)
    machine_init_ms, legacy_llc_init_ms = bench_init(config)
    result = {
        "bench": "probe-sweep hot path (engine vs legacy)",
        "geometry": {
            "monitored_sets": len(monitor.sets),
            "ways": machine.llc.geometry.ways,
            "accesses_per_sweep": n_accesses,
        },
        "rounds": rounds,
        "probe_sweep_ms": round(sweep_ms, 4),
        "probe_sweep_us_per_access": round(sweep_ms * 1e3 / n_accesses, 4),
        "fast_sweep_ms": round(fast_ms, 4),
        "legacy_sweep_ms": round(legacy_ms, 4),
        "sweep_speedup": round(legacy_ms / sweep_ms, 2),
        "machine_init_ms": round(machine_init_ms, 2),
        "legacy_llc_init_ms": round(legacy_llc_init_ms, 2),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    if not skip_fig6:
        result["fig6_seconds"] = round(bench_fig6(), 2)
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", help="write results to this JSON file")
    parser.add_argument(
        "--check", help="compare against a committed baseline JSON; exit 1 on regression"
    )
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative drop in sweep_speedup vs the baseline",
    )
    parser.add_argument(
        "--skip-fig6", action="store_true", help="skip the end-to-end fig6 timing"
    )
    args = parser.parse_args()

    result = run_benchmarks(args.rounds, args.skip_fig6)
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        current = result["sweep_speedup"]
        committed = baseline["sweep_speedup"]
        floor = committed * (1.0 - args.tolerance)
        print(
            f"regression gate: sweep_speedup {current:.2f} vs committed "
            f"{committed:.2f} (floor {floor:.2f})"
        )
        if current < floor:
            print("FAIL: probe sweep slowed by more than the tolerance", file=sys.stderr)
            return 1
        print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
