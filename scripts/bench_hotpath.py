#!/usr/bin/env python
"""Thin wrapper around :mod:`repro.bench` (kept for CI and muscle memory).

The benchmark suite lives in the package so ``repro bench`` can run it;
see ``repro.bench`` for what is measured and how the gate works.

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py --out BENCH_hotpath.json
    PYTHONPATH=src python scripts/bench_hotpath.py --check BENCH_hotpath.json
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import (  # noqa: E402  (path setup first)
    bench_analysis,
    bench_backend_overhead,
    bench_engine_sweeps,
    bench_fig6,
    bench_init,
    bench_legacy_sweep,
    bench_rx,
    build_monitor,
    main,
    run_benchmarks,
)

__all__ = [
    "bench_analysis",
    "bench_backend_overhead",
    "bench_engine_sweeps",
    "bench_fig6",
    "bench_init",
    "bench_legacy_sweep",
    "bench_rx",
    "build_monitor",
    "main",
    "run_benchmarks",
]

if __name__ == "__main__":
    raise SystemExit(main())
