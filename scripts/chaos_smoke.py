#!/usr/bin/env python
"""CI chaos smoke: the repo must degrade gracefully, not crash.

Three checks, matching ROBUSTNESS.md's failure-semantics contract:

1. **Faulty end-to-end run.**  ``python -m repro fig7`` under the
   ``light`` fault profile must exit 0 with zero tracebacks, and its
   ``--metrics`` snapshot must show nonzero ``faults.*`` counters (the
   injection demonstrably happened).  fig7 drives real traffic through
   the NIC, so every fault domain gets a chance to fire.
2. **Determinism under faults.**  The sharded ``ablation-noise``
   experiment at ``--jobs 1`` and ``--jobs 2`` must print identical
   result rows despite nonzero fault intensity in most shards.
3. **Partial completion.**  An in-process run with one deliberately
   crashed shard and ``max_failed_shards=1`` must complete with partial
   results and exactly one per-shard failure annotation.
4. **Adaptive recovery under drift.**  ``python -m repro fig10`` under
   the time-varying ``drift`` schedule with ``--adaptive`` must exit 0
   with nonzero ``adaptive.recalibrations`` in its metrics snapshot (the
   supervisor demonstrably recovered in flight); the same schedule
   without ``--adaptive`` must complete degraded — exit 0, no traceback.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(args: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
    )
    if "Traceback" in proc.stdout or "Traceback" in proc.stderr:
        fail(f"traceback in output of `repro {' '.join(args)}`:\n{proc.stderr}")
    return proc


def result_rows(stdout: str) -> list[str]:
    """The experiment's printed rows, minus wall-clock/progress narration."""
    return [
        line
        for line in stdout.splitlines()
        if line.startswith("  ") and "wall" not in line
        and not line.startswith("  [")
    ]


def check_faulty_run_with_metrics() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = os.path.join(tmp, "metrics.json")
        proc = run_cli(
            ["fig7", "--faults", "light", "--no-cache",
             "--metrics", metrics_path]
        )
        if proc.returncode != 0:
            fail(f"faulty fig7 exited {proc.returncode}:\n{proc.stderr}")
        with open(metrics_path, encoding="utf-8") as handle:
            payload = json.load(handle)
    counters = payload["metrics"]["counters"]
    fault_counters = {k: v for k, v in counters.items() if k.startswith("faults.")}
    if not fault_counters or not any(fault_counters.values()):
        fail(f"no nonzero faults.* counters in metrics: {sorted(counters)}")
    if not payload["runner"]:
        fail("metrics snapshot carries no runner entries")
    print(f"ok: faulty run clean, fault counters {fault_counters}")


def check_jobs_independence() -> None:
    outputs = []
    for jobs in ("1", "2"):
        proc = run_cli(
            ["ablation-noise", "--jobs", jobs, "--no-cache", "--seed", "7"]
        )
        if proc.returncode != 0:
            fail(f"ablation-noise --jobs {jobs} exited {proc.returncode}")
        outputs.append(result_rows(proc.stdout))
    if outputs[0] != outputs[1]:
        fail(
            "faulty runs differ across --jobs:\n"
            + "\n".join(outputs[0]) + "\n--- vs ---\n" + "\n".join(outputs[1])
        )
    print(f"ok: {len(outputs[0])} result rows identical for --jobs 1 and 2")


def check_partial_completion() -> None:
    sys.path.insert(0, "src")
    from repro.core.config import MachineConfig
    from repro.runner import ExperimentRunner, TrialSpec

    import chaos_shards  # the crashing shard fn must be importable in workers

    runner = ExperimentRunner(jobs=2, max_retries=0, max_failed_shards=1)
    spec = TrialSpec("chaos-smoke", n_trials=3, trials_per_shard=1)
    result = runner.run(
        spec, MachineConfig().scaled_down(), chaos_shards.crash_middle_shard, sorted
    )
    metrics = runner.history[-1]
    if len(result) != 2:
        fail(f"expected 2 surviving shard results, got {result}")
    if len(metrics.failed_shards) != 1 or metrics.failed_shards[0]["kind"] != "crash":
        fail(f"expected one crash annotation, got {metrics.failed_shards}")
    if not metrics.partial:
        fail("metrics.partial should be True after a tolerated failure")
    print(f"ok: partial completion with annotation {metrics.failed_shards[0]}")


def check_adaptive_drift_recovery() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = os.path.join(tmp, "metrics.json")
        proc = run_cli(
            ["fig10", "--faults", "drift", "--adaptive", "--no-cache",
             "--metrics", metrics_path]
        )
        if proc.returncode != 0:
            fail(f"adaptive drift fig10 exited {proc.returncode}:\n{proc.stderr}")
        with open(metrics_path, encoding="utf-8") as handle:
            payload = json.load(handle)
    counters = payload["metrics"]["counters"]
    recals = counters.get("adaptive.recalibrations", 0)
    if not recals:
        adaptive = {k: v for k, v in counters.items() if k.startswith("adaptive.")}
        fail(f"adaptive drift run performed no recalibration: {adaptive}")
    # Same schedule, supervisor off: must complete degraded, not crash.
    proc = run_cli(["fig10", "--faults", "drift", "--no-cache"])
    if proc.returncode != 0:
        fail(f"non-adaptive drift fig10 exited {proc.returncode}:\n{proc.stderr}")
    if "[adaptive" in proc.stdout:
        fail("non-adaptive run printed adaptive recovery annotations")
    print(f"ok: drift run recovered ({recals} recalibration(s)); "
          "non-adaptive run degraded cleanly")


def main() -> int:
    os.chdir(os.path.join(os.path.dirname(__file__), ".."))
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    check_faulty_run_with_metrics()
    check_jobs_independence()
    check_partial_completion()
    check_adaptive_drift_recovery()
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
