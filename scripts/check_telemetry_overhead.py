#!/usr/bin/env python
"""Guard the telemetry layer's zero-overhead-when-disabled promise.

Runs the fig6 smoke case twice per round — once with no telemetry at all
(the seed behaviour) and once with a *disabled* telemetry session
installed, which is the worst case a non-tracing user pays: every machine
wires the hooks, every hook site performs its ``is None`` / ``enabled``
guard, and nothing records.  The best-of-N wall-clock times must agree
within the tolerance (default 5%, per the acceptance criteria) and the
experiment results must be bit-identical.

Usage::

    PYTHONPATH=src python scripts/check_telemetry_overhead.py
    PYTHONPATH=src python scripts/check_telemetry_overhead.py \
        --instances 24 --rounds 5 --tolerance 0.05
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.config import MachineConfig
from repro.experiments.mapping import run_fig6
from repro.telemetry import Telemetry, session


def _time_once(config: MachineConfig, instances: int, telemetry: Telemetry | None):
    start = time.perf_counter()
    if telemetry is None:
        result = run_fig6(instances=instances, config=config)
    else:
        with session(telemetry):
            result = run_fig6(instances=instances, config=config)
    return time.perf_counter() - start, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=48,
                        help="fig6 driver inits per run (default 48; smaller "
                        "runs drown the comparison in scheduler noise)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved timing rounds; best-of is compared")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative overhead (default 0.05 = 5%%)")
    args = parser.parse_args(argv)

    config = MachineConfig().scaled_down()
    # Warm-up: first run pays import/alloc costs that are not telemetry's.
    _time_once(config, args.instances, None)

    baseline_times, disabled_times = [], []
    baseline_result = disabled_result = None
    for _ in range(args.rounds):
        # Interleave the two modes so drift (thermal, noisy neighbours)
        # hits both equally instead of biasing whichever ran last.
        seconds, baseline_result = _time_once(config, args.instances, None)
        baseline_times.append(seconds)
        seconds, disabled_result = _time_once(
            config, args.instances, Telemetry.create(trace=False, metrics=False)
        )
        disabled_times.append(seconds)

    if baseline_result.histogram != disabled_result.histogram:
        print("FAIL: disabled telemetry changed the fig6 histogram")
        return 1

    baseline = min(baseline_times)
    disabled = min(disabled_times)
    overhead = (disabled - baseline) / baseline
    print(
        f"fig6 smoke ({args.instances} inits, best of {args.rounds}): "
        f"baseline {baseline:.3f}s, disabled-telemetry {disabled:.3f}s, "
        f"overhead {overhead:+.1%} (tolerance {args.tolerance:.0%})"
    )
    if overhead > args.tolerance:
        print("FAIL: disabled-telemetry overhead exceeds tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
