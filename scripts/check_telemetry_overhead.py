#!/usr/bin/env python
"""Guard the telemetry layer's zero-overhead-when-disabled promise.

Runs the fig6 smoke case twice per round — once with no telemetry at all
(the seed behaviour) and once with a *disabled* telemetry session
installed, which is the worst case a non-tracing user pays: every machine
wires the hooks, every hook site performs its ``is None`` / ``enabled``
guard, and nothing records.  The best-of-N wall-clock times must agree
within the tolerance (default 5%, per the acceptance criteria) and the
experiment results must be bit-identical.

A second gate targets the signal-quality hooks (``repro.telemetry.quality``)
*inside an enabled-metrics session*: a probe-heavy workload (calibration,
page-aligned eviction-set construction, a sampling sweep — every hot hook
site) runs with the quality recorders on vs switched off via
``set_hooks_enabled``, and the recorders may add at most
``--enabled-tolerance`` (default 5%) on top of the already-enabled
session.  Results must again be bit-identical: the hooks only observe.

Usage::

    PYTHONPATH=src python scripts/check_telemetry_overhead.py
    PYTHONPATH=src python scripts/check_telemetry_overhead.py \
        --instances 24 --rounds 5 --tolerance 0.05
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.config import MachineConfig
from repro.experiments.mapping import run_fig6
from repro.telemetry import Telemetry, session
from repro.telemetry.quality import set_hooks_enabled


def _time_once(config: MachineConfig, instances: int, telemetry: Telemetry | None):
    start = time.perf_counter()
    if telemetry is None:
        result = run_fig6(instances=instances, config=config)
    else:
        with session(telemetry):
            result = run_fig6(instances=instances, config=config)
    return time.perf_counter() - start, result


def _time_probe_workload(
    config: MachineConfig, n_samples: int, hooks: bool
) -> tuple[float, list[float]]:
    """One enabled-metrics probe workload; returns (seconds, activity).

    Touches every hot quality-hook site: threshold calibration, oracle
    eviction-set construction and a full sampling sweep.
    """
    from repro.attack.evictionset import OracleEvictionSetBuilder
    from repro.attack.primeprobe import ProbeMonitor
    from repro.attack.timing import calibrate_threshold
    from repro.core.machine import Machine

    previous = set_hooks_enabled(hooks)
    try:
        telemetry = Telemetry.create(trace=False, metrics=True)
        start = time.perf_counter()
        with session(telemetry):
            machine = Machine(config)
            machine.install_nic()
            spy = machine.new_process("spy")
            threshold = calibrate_threshold(spy)
            builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
            groups = builder.build_page_aligned_groups(block=0)
            trace = ProbeMonitor(spy, groups).sample(n_samples, wait_cycles=20_000)
        return time.perf_counter() - start, trace.activity_fraction()
    finally:
        set_hooks_enabled(previous)


def check_enabled_overhead(
    config: MachineConfig, n_samples: int, rounds: int, tolerance: float
) -> int:
    """Gate the quality recorders' cost inside an enabled session; 0 = pass."""
    _time_probe_workload(config, n_samples, hooks=False)  # warm-up
    off_times, on_times = [], []
    off_result = on_result = None
    for _ in range(rounds):
        seconds, off_result = _time_probe_workload(config, n_samples, hooks=False)
        off_times.append(seconds)
        seconds, on_result = _time_probe_workload(config, n_samples, hooks=True)
        on_times.append(seconds)

    if off_result != on_result:
        print("FAIL: quality hooks changed the probe activity trace")
        return 1

    off, on = min(off_times), min(on_times)
    overhead = (on - off) / off
    print(
        f"probe workload ({n_samples} sweeps, best of {rounds}, metrics on): "
        f"hooks-off {off:.3f}s, hooks-on {on:.3f}s, "
        f"overhead {overhead:+.1%} (tolerance {tolerance:.0%})"
    )
    if overhead > tolerance:
        print("FAIL: enabled-session quality-hook overhead exceeds tolerance")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=48,
                        help="fig6 driver inits per run (default 48; smaller "
                        "runs drown the comparison in scheduler noise)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved timing rounds; best-of is compared")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative overhead (default 0.05 = 5%%)")
    parser.add_argument("--probe-samples", type=int, default=300,
                        help="sweeps in the enabled-session probe workload")
    parser.add_argument("--enabled-tolerance", type=float, default=0.05,
                        help="allowed relative cost of the quality hooks "
                        "inside an enabled-metrics session")
    args = parser.parse_args(argv)

    config = MachineConfig().scaled_down()
    # Warm-up: first run pays import/alloc costs that are not telemetry's.
    _time_once(config, args.instances, None)

    baseline_times, disabled_times = [], []
    baseline_result = disabled_result = None
    for _ in range(args.rounds):
        # Interleave the two modes so drift (thermal, noisy neighbours)
        # hits both equally instead of biasing whichever ran last.
        seconds, baseline_result = _time_once(config, args.instances, None)
        baseline_times.append(seconds)
        seconds, disabled_result = _time_once(
            config, args.instances, Telemetry.create(trace=False, metrics=False)
        )
        disabled_times.append(seconds)

    if baseline_result.histogram != disabled_result.histogram:
        print("FAIL: disabled telemetry changed the fig6 histogram")
        return 1

    baseline = min(baseline_times)
    disabled = min(disabled_times)
    overhead = (disabled - baseline) / baseline
    print(
        f"fig6 smoke ({args.instances} inits, best of {args.rounds}): "
        f"baseline {baseline:.3f}s, disabled-telemetry {disabled:.3f}s, "
        f"overhead {overhead:+.1%} (tolerance {args.tolerance:.0%})"
    )
    if overhead > args.tolerance:
        print("FAIL: disabled-telemetry overhead exceeds tolerance")
        return 1

    status = check_enabled_overhead(
        config, args.probe_samples, args.rounds, args.enabled_tolerance
    )
    if status != 0:
        return status
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
