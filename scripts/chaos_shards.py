"""Shard functions for the chaos smoke — module-level so worker processes
can unpickle them (see scripts/chaos_smoke.py)."""

from __future__ import annotations

import os


def crash_middle_shard(config, params, shard):
    """Dies hard on shard 1 (no exception, no result); reports seeds else."""
    if shard.index == 1:
        os._exit(29)
    return shard.seed
