"""Tests for the attacker's primitives: calibration, eviction sets, probes."""

import pytest

from repro.attack.evictionset import (
    EvictionSet,
    EvictionSetBuilder,
    OracleEvictionSetBuilder,
    page_aligned_set_indices,
)
from repro.attack.groundtruth import flat_set_of_eviction_set
from repro.attack.primeprobe import ProbeMonitor
from repro.attack.timing import calibrate_threshold


class TestCalibration:
    def test_threshold_separates_hit_and_miss(self, spy):
        t = calibrate_threshold(spy)
        assert t.hit_mean < t.threshold < t.miss_mean

    def test_classification(self, spy):
        t = calibrate_threshold(spy)
        assert t.is_miss(int(t.miss_mean))
        assert not t.is_miss(int(t.hit_mean))

    def test_too_few_samples_rejected(self, spy):
        with pytest.raises(ValueError):
            calibrate_threshold(spy, samples=2)


class TestPageAlignedIndices:
    def test_paper_geometry_gives_32_indices(self):
        from repro.core.config import CacheGeometry

        indices = page_aligned_set_indices(CacheGeometry())
        assert len(indices) == 32
        assert indices[0] == 0 and indices[1] == 64

    def test_scaled_geometry(self, nic_machine):
        indices = page_aligned_set_indices(nic_machine.llc.geometry)
        assert len(indices) == 4  # 256 sets / 64


class TestOracleBuilder:
    def test_groups_target_correct_sets(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.groups_for_index(64)
        llc = nic_machine.llc
        for slice_id, es in groups.items():
            for vaddr in es.addrs:
                paddr = spy.addrspace.translate(vaddr)
                assert llc.set_index_of(paddr) == 64
                assert llc.slice_of(paddr) == slice_id

    def test_group_has_full_associativity(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        es = builder.group_for(0, 0)
        assert len(es) == nic_machine.llc.geometry.ways

    def test_page_aligned_bulk_covers_all_classes(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()
        geometry = nic_machine.llc.geometry
        assert len(groups) == 4 * geometry.n_slices


class TestTimingBuilder:
    def test_eviction_set_evicts_victim(self, nic_machine, spy, threshold):
        builder = EvictionSetBuilder(spy, threshold, huge_pages=4)
        pool = builder.candidates(0)
        victim = pool[0]
        assert builder.evicts(pool[1:], victim)

    def test_reduce_finds_minimal_core(self, nic_machine, spy, threshold):
        builder = EvictionSetBuilder(spy, threshold, huge_pages=4)
        pool = builder.candidates(0)
        victim = pool.pop(0)
        core = builder.reduce(pool, victim)
        assert core is not None
        assert len(core) == nic_machine.llc.geometry.ways
        # All core members truly conflict with the victim.
        llc = nic_machine.llc
        victim_set = llc.flat_set_of(spy.addrspace.translate(victim))
        for vaddr in core:
            assert llc.flat_set_of(spy.addrspace.translate(vaddr)) == victim_set

    def test_reduce_fails_without_conflicts(self, nic_machine, spy, threshold):
        builder = EvictionSetBuilder(spy, threshold, huge_pages=4)
        few = builder.candidates(0)[:3]  # far below associativity
        victim = builder.candidates(64)[0]
        assert builder.reduce(few, victim) is None

    def test_cluster_index_separates_slices(self, nic_machine, spy, threshold):
        builder = EvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.cluster_index(0, n_groups=4)
        assert len(groups) == 4
        llc = nic_machine.llc
        flats = set()
        for es in groups:
            flat_ids = {
                llc.flat_set_of(spy.addrspace.translate(v)) for v in es.addrs
            }
            assert len(flat_ids) == 1  # pure group
            flats |= flat_ids
        assert len(flats) == 4  # distinct slices

    def test_conflicts_detects_same_set(self, nic_machine, spy, threshold):
        builder = EvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.cluster_index(0, n_groups=2)
        es = groups[0]
        member_set = flat_set_of_eviction_set(spy, es)
        llc = nic_machine.llc
        same = [
            v
            for v in builder.candidates(0)
            if llc.flat_set_of(spy.addrspace.translate(v)) == member_set
            and v not in es.addrs
        ]
        other = [
            v
            for v in builder.candidates(64)
            if llc.flat_set_of(spy.addrspace.translate(v)) != member_set
        ]
        assert builder.conflicts(es, same[0])
        assert not builder.conflicts(es, other[0])


class TestEvictionSetProbing:
    def test_probe_clean_after_prime(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        es = builder.group_for(0, 0)
        es.prime()
        assert es.probe() == 0

    def test_probe_detects_io_fill(self, nic_machine, spy, threshold):
        from repro.net.packet import Frame

        # Monitor the set of the next rx buffer's first block.
        buffer = nic_machine.ring.next_buffer()
        llc = nic_machine.llc
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        es = builder.group_for(
            llc.set_index_of(buffer.dma_paddr), llc.slice_of(buffer.dma_paddr)
        )
        es.prime()
        assert es.probe() == 0
        nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert es.probe() >= 1

    def test_probe_is_self_repriming(self, nic_machine, spy, threshold):
        from repro.net.packet import Frame

        buffer = nic_machine.ring.next_buffer()
        llc = nic_machine.llc
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        es = builder.group_for(
            llc.set_index_of(buffer.dma_paddr), llc.slice_of(buffer.dma_paddr)
        )
        es.prime()
        nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert es.probe() >= 1
        assert es.probe() == 0  # the probe re-primed the set

    def test_empty_eviction_set_rejected(self, spy, threshold):
        with pytest.raises(ValueError):
            EvictionSet(spy, [], threshold)


class TestProbeMonitor:
    def test_sample_shape(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()[:6]
        monitor = ProbeMonitor(spy, groups)
        trace = monitor.sample(10, wait_cycles=1000)
        assert trace.n_samples == 10
        assert trace.n_sets == 6
        assert len(trace.times) == 10

    def test_activity_counts(self, nic_machine, spy, threshold):
        from repro.net.traffic import ConstantStream

        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()
        monitor = ProbeMonitor(spy, groups)
        source = ConstantStream(size=64, rate_pps=2e5, protocol="broadcast")
        source.attach(nic_machine, nic_machine.nic)
        trace = monitor.sample(60, wait_cycles=20_000)
        source.stop()
        assert sum(trace.activity_counts()) > 0

    def test_empty_monitor_rejected(self, spy):
        with pytest.raises(ValueError):
            ProbeMonitor(spy, [])

    def test_zero_samples_rejected(self, nic_machine, spy, threshold):
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        monitor = ProbeMonitor(spy, builder.build_page_aligned_groups()[:2])
        with pytest.raises(ValueError):
            monitor.sample(0)
