"""Run ledger: golden record schema, integrity, runner emission.

The contract: every runner invocation appends exactly one checksummed
JSONL record whose headline metrics derive from the *reduced* result (so
they are bit-identical at any ``--jobs N``); malformed lines are
quarantined instead of poisoning later reads; and the ledger never fails
a run (emission is best-effort).
"""

from __future__ import annotations

import json

from repro.core.config import MachineConfig
from repro.experiments.mapping import run_fig6
from repro.runner import ExperimentRunner, ResultCache
from repro.telemetry.ledger import (
    LEDGER_SCHEMA_VERSION,
    RECORD_FIELDS,
    LedgerRecord,
    RunLedger,
    headline_metrics_of,
    record_checksum,
)


def _record(**overrides) -> LedgerRecord:
    base = dict(
        experiment="fig6",
        timestamp=123.0,
        config_hash="abc",
        seed=7,
        jobs=2,
        headline={"empty_set_fraction": 0.35},
    )
    base.update(overrides)
    return LedgerRecord(**base)


class TestRecordSchema:
    """Golden schema: the on-disk dict carries exactly RECORD_FIELDS."""

    def test_to_dict_keys_match_golden_schema(self):
        payload = _record().to_dict()
        assert set(payload) == set(RECORD_FIELDS)
        assert payload["schema"] == LEDGER_SCHEMA_VERSION
        assert payload["kind"] == "run"

    def test_round_trips_through_dict(self):
        record = _record()
        assert LedgerRecord.from_dict(record.to_dict()) == record

    def test_from_dict_ignores_unknown_fields(self):
        payload = _record().to_dict()
        payload["future_field"] = 1
        assert LedgerRecord.from_dict(payload).experiment == "fig6"

    def test_checksum_is_canonical(self):
        payload = _record().to_dict()
        shuffled = dict(reversed(list(payload.items())))
        assert record_checksum(payload) == record_checksum(shuffled)


class TestHeadlineMetricsOf:
    def test_plain_object_yields_empty(self):
        assert headline_metrics_of(object()) == {}

    def test_non_finite_values_dropped(self):
        class R:
            def headline_metrics(self):
                return {"ok": 1.5, "nan": float("nan"), "inf": float("inf")}

        assert headline_metrics_of(R()) == {"ok": 1.5}

    def test_keys_sorted_for_stable_json(self):
        class R:
            def headline_metrics(self):
                return {"b": 2, "a": 1}

        assert list(headline_metrics_of(R())) == ["a", "b"]


class TestAppendScan:
    def test_append_then_records_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record(experiment="table1", headline={"seq_error_rate": 0.1}))
        records = RunLedger(tmp_path).records()
        assert [r.experiment for r in records] == ["fig6", "table1"]
        assert records[0].headline == {"empty_set_fraction": 0.35}

    def test_experiment_filter_matches_dashed_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record(experiment="accuracy-train"))
        ledger.append(_record(experiment="accuracy-eval"))
        ledger.append(_record(experiment="fig6"))
        names = [r.experiment for r in ledger.records("accuracy")]
        assert names == ["accuracy-train", "accuracy-eval"]
        assert ledger.records("accurac") == []  # no partial-word matches

    def test_kind_filter(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        ledger.append(_record(experiment="bench-hotpath", kind="bench"))
        assert [r.kind for r in ledger.records(kind="bench")] == ["bench"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunLedger(tmp_path / "nowhere").records() == []

    def test_experiments_lists_distinct_names_in_order(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for name in ("fig6", "table1", "fig6"):
            ledger.append(_record(experiment=name))
        assert ledger.experiments() == ["fig6", "table1"]


class TestQuarantine:
    def test_garbage_line_quarantined_and_ledger_rewritten(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        with ledger.path.open("a", encoding="utf-8") as fh:
            fh.write("this is not json\n")
        ledger.append(_record(experiment="table1"))

        fresh = RunLedger(tmp_path)
        records = fresh.records()
        assert [r.experiment for r in records] == ["fig6", "table1"]
        assert fresh.stats.quarantined == 1
        qpath = fresh.quarantine_root / "ledger.jsonl"
        assert qpath.read_text().strip() == "this is not json"
        # the ledger itself was rewritten clean: a second scan is quiet
        again = RunLedger(tmp_path)
        again.records()
        assert again.stats.quarantined == 0

    def test_tampered_checksum_quarantined(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        line = json.loads(ledger.path.read_text())
        line["record"]["headline"]["empty_set_fraction"] = 0.0  # tamper
        ledger.path.write_text(json.dumps(line) + "\n")
        fresh = RunLedger(tmp_path)
        assert fresh.records() == []
        assert fresh.stats.quarantined == 1

    def test_wrong_schema_version_quarantined(self, tmp_path):
        ledger = RunLedger(tmp_path)
        payload = _record().to_dict()
        payload["schema"] = LEDGER_SCHEMA_VERSION + 1
        line = json.dumps(
            {"record": payload, "checksum": record_checksum(payload)}
        )
        ledger.root.mkdir(parents=True, exist_ok=True)
        ledger.path.write_text(line + "\n")
        assert RunLedger(tmp_path).records() == []

    def test_schema_one_record_still_readable(self, tmp_path):
        """Forward compat: pre-``context`` (schema 1) lines parse cleanly.

        Records written before the adaptive-recovery fields existed carry
        no ``context`` key; they must scan without quarantine and default
        to an empty context rather than crash ``repro report``.
        """
        ledger = RunLedger(tmp_path)
        payload = _record().to_dict()
        payload["schema"] = 1
        del payload["context"]
        line = json.dumps(
            {"record": payload, "checksum": record_checksum(payload)}
        )
        ledger.root.mkdir(parents=True, exist_ok=True)
        ledger.path.write_text(line + "\n")
        fresh = RunLedger(tmp_path)
        records = fresh.records()
        assert [r.experiment for r in records] == ["fig6"]
        assert records[0].context == {}
        assert fresh.stats.quarantined == 0


class _ToyResult:
    """Module-level so the result cache can pickle it."""

    def headline_metrics(self):
        return {"answer": 42.0}

    def __eq__(self, other):
        return isinstance(other, _ToyResult)


def _runner(tmp_path, jobs=1, **kwargs) -> ExperimentRunner:
    return ExperimentRunner(
        jobs=jobs,
        cache=ResultCache(str(tmp_path / "cache")),
        use_cache=True,
        ledger=RunLedger(tmp_path / "cache"),
        **kwargs,
    )


class TestRunnerEmission:
    def test_sharded_run_appends_one_record(self, tmp_path):
        runner = _runner(tmp_path)
        config = MachineConfig().scaled_down()
        result = run_fig6(instances=6, config=config, runner=runner)
        records = runner.ledger.records("fig6")
        assert len(records) == 1
        record = records[0]
        assert record.kind == "run"
        assert record.headline == headline_metrics_of(result)
        assert record.headline  # fig6 declares headline metrics
        assert record.config_hash == config.config_hash()
        assert not record.cache_hit and not record.partial

    def test_cache_hit_also_recorded(self, tmp_path):
        config = MachineConfig().scaled_down()
        runner = _runner(tmp_path)
        run_fig6(instances=6, config=config, runner=runner)
        warm = _runner(tmp_path)
        run_fig6(instances=6, config=config, runner=warm)
        records = warm.ledger.records("fig6")
        assert len(records) == 2
        assert [r.cache_hit for r in records] == [False, True]
        assert records[0].headline == records[1].headline

    def test_run_cached_emits_record(self, tmp_path):
        runner = _runner(tmp_path)
        runner.run_cached("toy", MachineConfig().scaled_down(), {}, _ToyResult)
        (record,) = runner.ledger.records("toy")
        assert record.headline == {"answer": 42.0}

    def test_ledger_failure_never_fails_the_run(self, tmp_path, capsys):
        runner = _runner(tmp_path)

        def boom(record):
            raise OSError("disk full")

        runner.ledger.append = boom
        result = run_fig6(
            instances=6, config=MachineConfig().scaled_down(), runner=runner
        )
        assert result.histogram  # run completed
        assert "[ledger] append failed" in capsys.readouterr().err

    def test_headline_bit_identical_across_job_counts(self, tmp_path):
        config = MachineConfig().scaled_down()
        headlines = []
        for jobs in (1, 2):
            runner = _runner(tmp_path / f"j{jobs}", jobs=jobs)
            run_fig6(instances=8, config=config, runner=runner)
            (record,) = runner.ledger.records("fig6")
            headlines.append(record.headline)
        assert headlines[0] == headlines[1]
        assert headlines[0]  # and they are non-empty


class TestBenchRecords:
    def test_bench_ledger_record_shape(self):
        from repro.bench import bench_ledger_record

        record = bench_ledger_record(
            {"sweep_speedup": 9.0, "rx_speedup": 3.0, "rounds": 5, "junk": "x"}
        )
        assert record.kind == "bench"
        assert record.experiment == "bench-hotpath"
        assert record.headline == {"sweep_speedup": 9.0, "rx_speedup": 3.0}
        assert record.trials == 5

    def test_bench_record_appends_and_scans(self, tmp_path):
        from repro.bench import bench_ledger_record

        ledger = RunLedger(tmp_path)
        ledger.append(bench_ledger_record({"sweep_speedup": 9.0}))
        (record,) = ledger.records(kind="bench")
        assert record.headline["sweep_speedup"] == 9.0
