"""Unit tests for the rx ring, DMA engine and IGB driver model."""

import pytest

from repro.net.packet import Frame
from repro.net.traffic import ConstantStream


class TestRxRing:
    def test_buffers_page_aligned(self, nic_machine):
        for buffer in nic_machine.ring.buffers:
            assert buffer.page_paddr % 4096 == 0
            assert buffer.page_offset == 0

    def test_advance_wraps(self, nic_machine):
        ring = nic_machine.ring
        n = len(ring)
        first = ring.next_buffer()
        for _ in range(n):
            ring.advance()
        assert ring.next_buffer() is first

    def test_fill_count_monotonic(self, nic_machine):
        ring = nic_machine.ring
        ring.advance()
        ring.advance()
        assert ring.fill_count == 2

    def test_replace_buffer_frees_old_page(self, nic_machine):
        ring = nic_machine.ring
        old = ring.buffers[3].page_paddr
        free_before = nic_machine.physmem.free_frames
        new = ring.replace_buffer(3)
        assert new.page_paddr != old
        assert nic_machine.physmem.free_frames == free_before

    def test_shuffle_changes_order_not_pages(self, nic_machine):
        ring = nic_machine.ring
        pages_before = set(ring.page_paddrs())
        order_before = ring.order_fingerprint()
        ring.shuffle_order()
        assert set(ring.page_paddrs()) == pages_before
        assert ring.order_fingerprint() != order_before

    def test_buffer_flip(self, nic_machine):
        buffer = nic_machine.ring.buffers[0]
        base = buffer.dma_paddr
        buffer.flip(2048)
        assert buffer.dma_paddr == base + 2048
        buffer.flip(2048)
        assert buffer.dma_paddr == base


class TestNicDma:
    def test_frame_blocks_land_in_llc(self, nic_machine):
        buffer = nic_machine.ring.next_buffer()
        nic_machine.nic.deliver(Frame(size=256, protocol="broadcast"))
        llc = nic_machine.llc
        for k in range(4):
            assert llc.is_resident(buffer.page_paddr + k * 64)

    def test_blocks_written_counted(self, nic_machine):
        nic_machine.nic.deliver(Frame(size=192, protocol="broadcast"))
        assert nic_machine.nic.stats.blocks_written == 3

    def test_oversize_frame_dropped(self, nic_machine):
        nic_machine.nic.deliver(Frame(size=4000, protocol="broadcast"))
        assert nic_machine.nic.stats.oversize_dropped == 1
        assert nic_machine.ring.fill_count == 0

    def test_buffers_fill_in_ring_order(self, nic_machine):
        nic_machine.driver.log_receives = True
        for _ in range(5):
            nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        slots = [r.ring_slot for r in nic_machine.driver.receive_log]
        assert slots == [0, 1, 2, 3, 4]

    def test_no_ddio_defers_driver_receive(self, scaled_config):
        from repro.core.config import DDIOConfig
        from repro.core.machine import Machine

        scaled_config.ddio = DDIOConfig(enabled=False)
        machine = Machine(scaled_config)
        machine.install_nic()
        machine.nic.deliver(Frame(size=64, protocol="tcp"))
        assert machine.driver.stats.frames == 0  # interrupt still pending
        machine.idle(machine.llc.timing.io_to_driver_latency + 1)
        assert machine.driver.stats.frames == 1


class TestIgbDriver:
    def test_broadcast_discarded_after_header(self, nic_machine):
        nic_machine.nic.deliver(Frame(size=1500, protocol="broadcast"))
        stats = nic_machine.driver.stats
        assert stats.discarded == 1
        assert stats.page_flips == 0  # no skb was built

    def test_small_packet_copied_buffer_reused(self, nic_machine):
        buffer = nic_machine.ring.next_buffer()
        nic_machine.nic.deliver(Frame(size=128, protocol="tcp"))
        assert nic_machine.driver.stats.copied == 1
        assert buffer.page_offset == 0  # reused as-is

    def test_large_packet_flips_half_page(self, nic_machine):
        buffer = nic_machine.ring.next_buffer()
        nic_machine.nic.deliver(Frame(size=1500, protocol="tcp"))
        assert nic_machine.driver.stats.fragged == 1
        assert buffer.page_offset == 2048

    def test_copy_threshold_boundary(self, nic_machine):
        threshold = nic_machine.config.ring.copy_threshold
        nic_machine.nic.deliver(Frame(size=threshold, protocol="tcp"))
        assert nic_machine.driver.stats.copied == 1
        nic_machine.nic.deliver(Frame(size=threshold + 1, protocol="tcp"))
        assert nic_machine.driver.stats.fragged == 1

    def test_header_prefetch_touches_block1(self, nic_machine):
        """Even a 1-block frame loads block 1 — the Fig. 8 anomaly."""
        buffer = nic_machine.ring.next_buffer()
        nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert nic_machine.llc.is_resident(buffer.page_paddr + 64)

    def test_shared_page_forces_replacement(self, scaled_config):
        from repro.core.machine import Machine

        machine = Machine(scaled_config)
        machine.install_nic(shared_page_prob=1.0)
        machine.nic.deliver(Frame(size=1500, protocol="tcp"))
        assert machine.driver.stats.buffers_replaced == 1
        assert machine.driver.stats.page_flips == 0

    def test_receive_log_records_symbols(self, scaled_config):
        from repro.core.machine import Machine

        machine = Machine(scaled_config)
        machine.install_nic(log_receives=True)
        machine.nic.deliver(Frame(size=192, protocol="broadcast", symbol=1))
        record = machine.driver.receive_log[0]
        assert record.symbol == 1
        assert record.n_blocks == 3


class TestRxWraparound:
    def test_ring_wraparound_alternates_half_pages(self, scaled_config):
        """Across ring laps each buffer's DMA target alternates between the
        two 2 KB halves of its page (flip on every large-frame reuse)."""
        from repro.core.machine import Machine

        machine = Machine(scaled_config)
        machine.install_nic(log_receives=True)
        n = scaled_config.ring.n_descriptors
        for _ in range(3 * n):
            machine.nic.deliver(Frame(size=1500, protocol="tcp"))
        log = machine.driver.receive_log
        assert len(log) == 3 * n
        for lap in range(3):
            for slot in range(n):
                rec = log[lap * n + slot]
                assert rec.ring_slot == slot
                assert rec.dma_paddr == rec.page_paddr + (lap % 2) * 2048
        assert machine.driver.stats.page_flips == 3 * n

    def test_small_copy_reuses_buffer_without_flip(self, scaled_config):
        """Small frames memcpy out of the buffer; across laps the same slot
        keeps DMA-ing into the same half-page (no flip, no replacement)."""
        from repro.core.machine import Machine

        machine = Machine(scaled_config)
        machine.install_nic(log_receives=True)
        n = scaled_config.ring.n_descriptors
        for _ in range(2 * n):
            machine.nic.deliver(Frame(size=128, protocol="tcp"))
        log = machine.driver.receive_log
        for slot in range(n):
            assert log[slot].dma_paddr == log[n + slot].dma_paddr
        stats = machine.driver.stats
        assert stats.copied == 2 * n
        assert stats.page_flips == 0
        assert stats.buffers_replaced == 0

    def test_small_copy_fills_skb_lines(self, nic_machine):
        """The copy path writes one skb line per frame block."""
        driver = nic_machine.driver
        start = driver._skb_cursor
        nic_machine.nic.deliver(Frame(size=256, protocol="tcp"))
        assert driver._skb_cursor - start == 4
        nic_machine.nic.deliver(Frame(size=64, protocol="tcp"))
        assert driver._skb_cursor - start == 5

    def test_skb_slab_cursor_wraps(self, nic_machine):
        """The recycled skb slab wraps rather than growing without bound."""
        driver = nic_machine.driver
        wrap = driver._skb_lines
        for _ in range(wrap // 4 + 8):
            nic_machine.nic.deliver(Frame(size=256, protocol="tcp"))
        assert driver._skb_cursor > wrap  # wrapped at least once
        # The slab footprint in the cache never exceeds the slab itself.
        resident = sum(
            1
            for p in driver._skb_paddrs.tolist()
            if nic_machine.llc.is_resident(p)
        )
        assert 0 < resident <= wrap


class TestHeavyFaultRx:
    def test_heavy_fault_stream_is_sane(self):
        """The batched datapath under the heavy fault profile: drops,
        stalls and co-runner noise engage, nothing wedges or miscounts."""
        import random

        from repro.core.config import MachineConfig
        from repro.core.machine import Machine
        from repro.faults.profiles import get_profile
        from repro.net.traffic import PoissonNoise

        cfg = MachineConfig().scaled_down()
        cfg.faults = get_profile("heavy")
        machine = Machine(cfg)
        machine.install_nic(log_receives=True)
        source = PoissonNoise(
            rate_pps=300_000.0, rng=random.Random(11), count=400
        )
        source.attach(machine, machine.nic)
        machine.run_events_until(machine.clock.now + machine.clock.cycles(0.02))
        nic, drv = machine.nic.stats, machine.driver.stats
        # Injected drops happen upstream of the NIC; overflow at the NIC.
        assert source.sent < 400
        assert nic.frames == source.sent - nic.oversize_dropped - nic.overflow_dropped
        assert drv.frames == len(machine.driver.receive_log)
        # Stalled receives are deferred, not lost.
        assert drv.frames + len(machine.events) >= nic.frames


class TestStatsReduction:
    def test_nic_and_driver_stats_merge_delta(self, nic_machine):
        """NicStats/DriverStats reduce exactly like CacheStats (satellite:
        shared CounterStats machinery)."""
        from repro.nic.driver import DriverStats
        from repro.nic.nic import NicStats

        for size in (64, 1500, 300):
            nic_machine.nic.deliver(Frame(size=size, protocol="tcp"))
        before = nic_machine.driver.stats.snapshot()
        baseline = DriverStats.from_snapshot(before)
        nic_machine.nic.deliver(Frame(size=1500, protocol="tcp"))
        delta = nic_machine.driver.stats.delta(baseline)
        assert delta.frames == 1 and delta.fragged == 1 and delta.copied == 0

        a = NicStats(frames=3, blocks_written=40)
        b = NicStats(frames=2, blocks_written=10, overflow_dropped=1)
        merged = NicStats().merge(a).merge(b.snapshot())
        assert merged == NicStats(frames=5, blocks_written=50, overflow_dropped=1)
        a.reset()
        assert a == NicStats()


class TestTrafficSources:
    def test_constant_stream_delivers_count(self, nic_machine):
        source = ConstantStream(size=64, rate_pps=1e6, count=10)
        source.attach(nic_machine, nic_machine.nic)
        nic_machine.drain_events()
        assert nic_machine.nic.stats.frames == 10

    def test_line_rate_enforced(self, nic_machine):
        """Asking for 10 Mpps of 1514-byte frames is capped by the wire."""
        source = ConstantStream(size=1514, rate_pps=1e7, count=50, protocol="tcp")
        source.attach(nic_machine, nic_machine.nic)
        nic_machine.drain_events()
        elapsed = nic_machine.clock.seconds()
        max_rate = nic_machine.config.link.max_frame_rate(1514)
        assert 50 / elapsed <= max_rate * 1.01

    def test_pattern_stream_order(self, nic_machine):
        from repro.net.traffic import PatternStream

        nic_machine.driver.log_receives = True
        source = PatternStream([64, 192, 256], rate_pps=1e5, symbols=[0, 1, 2])
        source.attach(nic_machine, nic_machine.nic)
        nic_machine.drain_events()
        assert [r.symbol for r in nic_machine.driver.receive_log] == [0, 1, 2]

    def test_stop_halts_stream(self, nic_machine):
        source = ConstantStream(size=64, rate_pps=1e5, count=100)
        source.attach(nic_machine, nic_machine.nic)
        nic_machine.idle(int(3.3e9 / 1e5 * 5))
        source.stop()
        delivered = nic_machine.nic.stats.frames
        nic_machine.drain_events()
        assert nic_machine.nic.stats.frames <= delivered + 1

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            ConstantStream(size=64, rate_pps=0)
