"""Smoke + shape tests for the experiment harnesses (tiny parameters).

The benchmarks run these at meaningful sizes; here we pin interfaces and
the qualitative shapes with parameters small enough for the unit suite.
"""

import pytest

from repro.core.config import MachineConfig
from repro.experiments import (
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig10,
    run_fig14,
    run_fig15,
    run_fig16,
    run_ring_size_ablation,
    run_table1,
)


@pytest.fixture(scope="module")
def cfg():
    return MachineConfig().scaled_down()


class TestMappingExperiments:
    def test_fig5_counts_sum_to_ring(self, cfg):
        result = run_fig5(cfg)
        assert sum(result.counts) == result.n_buffers
        assert result.format_rows()

    def test_fig6_histogram_totals(self, cfg):
        result = run_fig6(instances=10, config=cfg)
        total_sets = sum(result.histogram.values())
        assert total_sets == 10 * result.sets_per_instance
        assert 0.1 < result.fraction_empty() < 0.6

    def test_fig6_validates_instances(self, cfg):
        with pytest.raises(ValueError):
            run_fig6(instances=0, config=cfg)


class TestFootprintExperiments:
    def test_fig7_idle_dark_receiving_lit(self, cfg):
        result = run_fig7(cfg, n_samples=60, huge_pages=4)
        assert result.active_while_idle() == 0
        assert result.active_while_receiving() > 0
        assert len(result.format_rows()) == 3


class TestSequencingExperiment:
    def test_table1_reports_all_metrics(self, cfg):
        result = run_table1(
            cfg,
            n_monitored=8,
            n_samples=1200,
            packet_rate=15_000,
            probe_rate_hz=16_000,
            huge_pages=4,
        )
        assert result.truth
        assert result.recovered
        assert 0 <= result.error_rate <= 2
        assert result.profiling_seconds > 0
        assert any("Levenshtein" in row for row in result.format_rows())

    def test_table1_with_noise_still_recovers(self, cfg):
        """§III-C: non-cooperating traffic only helps the profiling."""
        result = run_table1(
            cfg,
            n_monitored=8,
            n_samples=1200,
            packet_rate=12_000,
            probe_rate_hz=16_000,
            noise_rate=3_000,
            huge_pages=4,
        )
        assert result.error_rate <= 1.0


class TestCovertExperiments:
    def test_fig10_decodes_pattern(self, cfg):
        result = run_fig10(cfg, n_symbols=12, huge_pages=4)
        from repro.analysis.levenshtein import levenshtein

        assert levenshtein(result.received, result.sent) <= 2


class TestDefenseExperiments:
    def test_fig14_rows(self, cfg):
        result = run_fig14(cfg, n_requests=120)
        assert len(result.ddio_krps) == len(result.llc_labels) == 3
        for i in range(3):
            assert result.ddio_krps[i] > 0
            assert abs(result.loss_percent(i)) < 50

    def test_fig15_ddio_beats_baseline(self, cfg):
        result = run_fig15(cfg, copy_kb=128, tcp_packets=200, nginx_requests=80)
        nr, nw, _ = result.normalised("filecopy", "ddio")
        assert nr < 1.0 and nw < 1.0

    def test_fig16_full_random_worst(self, cfg):
        result = run_fig16(cfg, n_requests=400, rate_rps=140_000)
        assert result.p99_overhead_percent("full-random") > result.p99_overhead_percent(
            "adaptive"
        )

    def test_ablation_ring_size_shapes(self, cfg):
        result = run_ring_size_ablation(cfg, ring_sizes=(32, 128))
        assert result.unique_buffer_fraction[0] >= result.unique_buffer_fraction[1]
        assert len(result.format_rows()) == 4


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["not-a-thing"]) == 2

    def test_run_one(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["fig5", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "Fig.5" in out

    def test_every_listed_experiment_is_runnable_object(self):
        from repro.cli import EXPERIMENTS

        for name, definition in EXPERIMENTS.items():
            assert definition.description
            assert callable(definition.run)
            assert isinstance(definition.params, dict)
