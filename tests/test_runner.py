"""Unit tests for the sharded experiment runner.

Covers the four runner layers: seed-sequence shard planning, the
process-per-shard executor (parallel equivalence, crash retry, timeout,
worker exceptions), the content-addressed disk cache (hit/miss/force/
corruption), and the orchestrator's cache plumbing.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.config import MachineConfig
from repro.core.hashing import canonicalize, stable_digest
from repro.runner import (
    MISS,
    ExperimentRunner,
    RecordingProgress,
    ResultCache,
    ShardCrashError,
    ShardExecutor,
    ShardFailedError,
    ShardPlan,
    ShardTimeoutError,
    TrialSpec,
    cache_key,
)


# ---------------------------------------------------------------------------
# module-level shard functions (must be picklable for worker processes)
# ---------------------------------------------------------------------------

def _seed_shard(config, params, shard):
    """Pure function of the shard's seeds — the determinism probe."""
    return [seed % params.get("mod", 1_000_003) for seed in shard.trial_seeds]


def _crash_once_shard(config, params, shard):
    """Dies hard on first attempt, succeeds after the sentinel exists."""
    sentinel = params["sentinel_dir"] + f"/shard-{shard.index}"
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("attempted")
        os._exit(17)  # simulate a segfault/OOM-kill: no exception, no result
    return shard.index


def _always_crash_shard(config, params, shard):
    os._exit(23)


def _raise_shard(config, params, shard):
    raise ValueError(f"shard {shard.index} is unhappy")


def _hang_shard(config, params, shard):
    import time

    time.sleep(60)
    return shard.index


# ---------------------------------------------------------------------------
# stable hashing
# ---------------------------------------------------------------------------

class TestStableHashing:
    def test_dict_order_independent(self):
        assert stable_digest({"a": 1, "b": 2.5}) == stable_digest({"b": 2.5, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert stable_digest((1, 2, 3)) == stable_digest([1, 2, 3])

    def test_distinct_values_distinct_digests(self):
        assert stable_digest({"x": 1}) != stable_digest({"x": 2})
        assert stable_digest(1.0) != stable_digest(1)

    def test_dataclass_support(self):
        cfg = MachineConfig().scaled_down()
        assert stable_digest(cfg) == stable_digest(cfg)
        assert stable_digest(cfg) != stable_digest(MachineConfig().bench_scale())

    def test_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            stable_digest(object())

    def test_canonical_set_is_sorted(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})


class TestMachineConfigSerialization:
    def test_scaled_down_round_trips(self):
        cfg = MachineConfig().scaled_down()
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_bench_scale_round_trips(self):
        cfg = MachineConfig().bench_scale()
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_config_hash_tracks_content(self):
        cfg = MachineConfig().scaled_down()
        assert cfg.config_hash() == MachineConfig.from_dict(cfg.to_dict()).config_hash()
        assert cfg.config_hash() != MachineConfig().bench_scale().config_hash()

    def test_from_dict_rejects_unknown_fields(self):
        data = MachineConfig().to_dict()
        data["warp_drive"] = True
        with pytest.raises(ValueError):
            MachineConfig.from_dict(data)


# ---------------------------------------------------------------------------
# shard planning and seeding
# ---------------------------------------------------------------------------

class TestShardPlan:
    def test_covers_all_trials_exactly_once(self):
        spec = TrialSpec("exp", n_trials=10, trials_per_shard=3)
        plan = ShardPlan.build(spec, 42)
        spans = [(s.start, s.stop) for s in plan.shards]
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert sum(s.n_trials for s in plan.shards) == 10

    def test_seeds_deterministic_and_jobs_independent(self):
        spec = TrialSpec("exp", n_trials=8, trials_per_shard=2)
        a = ShardPlan.build(spec, 1234)
        b = ShardPlan.build(spec, 1234)
        assert a == b  # nothing about the plan depends on execution context

    def test_seeds_vary_with_root_seed_and_experiment(self):
        spec = TrialSpec("exp", n_trials=4, trials_per_shard=2)
        base = ShardPlan.build(spec, 1)
        other_seed = ShardPlan.build(spec, 2)
        other_name = ShardPlan.build(
            TrialSpec("exp2", n_trials=4, trials_per_shard=2), 1
        )
        assert base.shards[0].trial_seeds != other_seed.shards[0].trial_seeds
        assert base.shards[0].trial_seeds != other_name.shards[0].trial_seeds

    def test_trial_seeds_unique_across_shards(self):
        spec = TrialSpec("exp", n_trials=64, trials_per_shard=5)
        plan = ShardPlan.build(spec, 7)
        seeds = [seed for shard in plan.shards for seed in shard.trial_seeds]
        assert len(set(seeds)) == len(seeds)
        assert all(0 <= seed < 2**63 for seed in seeds)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            TrialSpec("exp", n_trials=0)
        with pytest.raises(ValueError):
            TrialSpec("exp", n_trials=1, trials_per_shard=0)
        with pytest.raises(ValueError):
            TrialSpec("", n_trials=1)
        with pytest.raises(ValueError):
            ShardPlan.build(TrialSpec("exp", n_trials=1), -1)


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------

@pytest.fixture
def plan():
    return ShardPlan.build(TrialSpec("exec", n_trials=9, trials_per_shard=2), 99)


class TestShardExecutor:
    def test_parallel_matches_serial(self, plan, scaled_config):
        serial = ShardExecutor(jobs=1).run(_seed_shard, plan, scaled_config)
        parallel = ShardExecutor(jobs=3).run(_seed_shard, plan, scaled_config)
        assert serial == parallel
        assert len(serial) == len(plan.shards)

    def test_crashed_worker_is_retried_once(self, plan, scaled_config, tmp_path):
        plan = ShardPlan.build(
            TrialSpec(
                "crashy",
                n_trials=4,
                trials_per_shard=2,
                params={"sentinel_dir": str(tmp_path)},
            ),
            5,
        )
        executor = ShardExecutor(jobs=2, max_retries=1)
        results = executor.run(_crash_once_shard, plan, scaled_config)
        assert results == [0, 1]
        assert executor.stats.retries == 2  # both shards crashed once
        assert sorted(executor.stats.crashed_shards) == [0, 1]

    def test_persistent_crash_fails_the_run(self, scaled_config):
        plan = ShardPlan.build(TrialSpec("dead", n_trials=1), 5)
        with pytest.raises(ShardCrashError):
            ShardExecutor(jobs=2, max_retries=1).run(
                _always_crash_shard, plan, scaled_config
            )

    def test_worker_exception_propagates_without_retry(self, scaled_config):
        plan = ShardPlan.build(TrialSpec("raises", n_trials=2), 5)
        executor = ShardExecutor(jobs=2, max_retries=3)
        with pytest.raises(ShardFailedError, match="is unhappy"):
            executor.run(_raise_shard, plan, scaled_config)
        assert executor.stats.retries == 0

    def test_hung_shard_times_out(self, scaled_config):
        plan = ShardPlan.build(TrialSpec("hang", n_trials=1), 5)
        with pytest.raises(ShardTimeoutError):
            ShardExecutor(jobs=2, shard_timeout=0.3, max_retries=0).run(
                _hang_shard, plan, scaled_config
            )

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ShardExecutor(jobs=0)


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "a" * 64
        assert cache.load("exp", key) is MISS
        cache.store("exp", key, {"rows": [1, 2]})
        assert cache.load("exp", key) == {"rows": [1, 2]}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "b" * 64
        path = cache.store("exp", key, "payload")
        path.write_bytes(b"definitely not a pickle")
        assert cache.load("exp", key) is MISS
        path.write_bytes(pickle.dumps(["wrong", "shape"]))
        assert cache.load("exp", key) is MISS
        path.write_bytes(b"")
        assert cache.load("exp", key) is MISS

    def test_key_collision_on_prefix_is_a_miss(self, tmp_path):
        """An entry written for different full-key content never hits."""
        cache = ResultCache(tmp_path)
        key_a = "c" * 16 + "1" * 48
        key_b = "c" * 16 + "2" * 48  # same 16-char file prefix
        cache.store("exp", key_a, "A")
        assert cache.load("exp", key_b) is MISS

    def test_cached_none_result_is_distinguishable_from_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "d" * 64
        cache.store("exp", key, None)
        assert cache.load("exp", key) is None

    def test_cache_key_sensitivity(self, scaled_config):
        base = cache_key("exp", scaled_config, {"n": 1}, 7)
        assert base == cache_key("exp", scaled_config, {"n": 1}, 7)
        assert base != cache_key("exp2", scaled_config, {"n": 1}, 7)
        assert base != cache_key("exp", scaled_config, {"n": 2}, 7)
        assert base != cache_key("exp", scaled_config, {"n": 1}, 8)
        assert base != cache_key("exp", MachineConfig().bench_scale(), {"n": 1}, 7)


# ---------------------------------------------------------------------------
# orchestrator
# ---------------------------------------------------------------------------

class TestExperimentRunner:
    def _runner(self, tmp_path, **kwargs):
        defaults = dict(
            cache=ResultCache(tmp_path / "cache"),
            use_cache=True,
            progress=RecordingProgress(),
        )
        defaults.update(kwargs)
        return ExperimentRunner(**defaults)

    def test_cache_hit_skips_execution(self, tmp_path, scaled_config):
        spec = TrialSpec("exp", n_trials=4, trials_per_shard=2, params={"mod": 17})
        first = self._runner(tmp_path)
        cold = first.run(spec, scaled_config, _seed_shard, lambda rs: sum(rs, []))
        second = self._runner(tmp_path)
        warm = second.run(spec, scaled_config, _seed_shard, lambda rs: sum(rs, []))
        assert cold == warm
        assert not first.history[0].cache_hit
        assert second.history[0].cache_hit
        assert second.progress.cache_hits  # progress narrated the hit

    def test_force_reexecutes_and_overwrites(self, tmp_path, scaled_config):
        spec = TrialSpec("exp", n_trials=2, params={"mod": 11})
        self._runner(tmp_path).run(
            spec, scaled_config, _seed_shard, lambda rs: sum(rs, [])
        )
        forced = self._runner(tmp_path, force=True)
        forced.run(spec, scaled_config, _seed_shard, lambda rs: sum(rs, []))
        assert not forced.history[0].cache_hit
        assert forced.progress.shard_events  # shards actually ran

    def test_no_cache_never_touches_disk(self, tmp_path, scaled_config):
        spec = TrialSpec("exp", n_trials=2)
        runner = self._runner(tmp_path, use_cache=False)
        runner.run(spec, scaled_config, _seed_shard, lambda rs: sum(rs, []))
        assert not (tmp_path / "cache").exists()

    def test_root_seed_changes_results(self, tmp_path, scaled_config):
        spec = TrialSpec("exp", n_trials=4)
        a = self._runner(tmp_path, root_seed=1, use_cache=False).run(
            spec, scaled_config, _seed_shard, lambda rs: sum(rs, [])
        )
        b = self._runner(tmp_path, root_seed=2, use_cache=False).run(
            spec, scaled_config, _seed_shard, lambda rs: sum(rs, [])
        )
        assert a != b

    def test_run_cached_hit_miss_force(self, tmp_path, scaled_config):
        calls = []

        def fn():
            calls.append(1)
            return {"value": 42}

        runner = self._runner(tmp_path)
        assert runner.run_cached("plain", scaled_config, {"p": 1}, fn)["value"] == 42
        assert runner.run_cached("plain", scaled_config, {"p": 1}, fn)["value"] == 42
        assert len(calls) == 1  # second call was a cache hit
        forced = self._runner(tmp_path, force=True)
        forced.run_cached("plain", scaled_config, {"p": 1}, fn)
        assert len(calls) == 2
        # different params -> different key -> miss
        runner.run_cached("plain", scaled_config, {"p": 2}, fn)
        assert len(calls) == 3

    def test_progress_metrics_shape(self, tmp_path, scaled_config):
        spec = TrialSpec("exp", n_trials=6, trials_per_shard=2)
        runner = self._runner(tmp_path)
        runner.run(spec, scaled_config, _seed_shard, lambda rs: sum(rs, []))
        metrics = runner.history[0]
        assert metrics.shards_total == 3
        assert metrics.shards_done == 3
        assert metrics.trials_done == 6
        assert metrics.wall_seconds > 0
        assert metrics.trials_per_second > 0
        assert runner.progress.shard_events == [(1, 2), (2, 4), (3, 6)]
