"""Round-trip tests for experiment result formatting.

Every harness promises a ``format_rows()`` that prints paper-style rows;
these tests pin that contract (benchmarks and the CLI both depend on it).
"""

from repro.core.config import MachineConfig
from repro.experiments import run_fig5


class TestFormatContract:
    def test_rows_are_strings(self):
        result = run_fig5(MachineConfig().scaled_down())
        rows = result.format_rows()
        assert rows and all(isinstance(r, str) for r in rows)

    def test_first_row_names_the_figure(self):
        result = run_fig5(MachineConfig().scaled_down())
        assert result.format_rows()[0].startswith("Fig.5")
