"""Tests for both defenses: randomization and adaptive partitioning."""

import pytest

from repro.defense.partitioning import AdaptivePartition, PartitionConfig
from repro.defense.randomization import (
    FullRandomizer,
    PartialRandomizer,
    RandomizationCost,
)
from repro.net.packet import Frame
from repro.net.traffic import ConstantStream


class TestFullRandomizer:
    def test_every_packet_gets_new_page(self, nic_machine):
        randomizer = FullRandomizer()
        nic_machine.driver.randomizer = randomizer
        before = nic_machine.ring.order_fingerprint()
        for _ in range(5):
            nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        after = nic_machine.ring.order_fingerprint()
        assert randomizer.packets == 5
        assert sum(1 for a, b in zip(before, after) if a != b) == 5

    def test_overhead_charged(self, nic_machine):
        cost = RandomizationCost(alloc_cycles=1000)
        randomizer = FullRandomizer(cost)
        nic_machine.driver.randomizer = randomizer
        nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert randomizer.cycles_charged == 1000
        assert randomizer.drain_pending() == 1000
        assert randomizer.drain_pending() == 0

    def test_defeats_stale_monitors(self, nic_machine, spy, threshold):
        """A monitor built before randomization stops seeing packets."""
        from repro.attack.setup import MonitorFactory

        factory = MonitorFactory(nic_machine, spy, threshold, huge_pages=4)
        monitor = factory.buffer_monitor(0, blocks=(0,), include_alt=False)
        nic_machine.driver.randomizer = FullRandomizer()
        monitor.prime()
        # Cycle the whole ring once: every buffer has moved afterwards.
        for _ in range(len(nic_machine.ring.buffers)):
            nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        monitor.blocks[0].probe()  # drain stale state
        monitor.prime()
        hits_before = nic_machine.ring.fill_count
        for _ in range(len(nic_machine.ring.buffers)):
            nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        # The original physical page was freed; activity on the old set is
        # now incidental (other pages may collide) rather than guaranteed.
        assert nic_machine.ring.fill_count == hits_before + 32


class TestPartialRandomizer:
    def test_shuffles_on_interval(self, nic_machine):
        randomizer = PartialRandomizer(interval=10)
        nic_machine.driver.randomizer = randomizer
        before = nic_machine.ring.order_fingerprint()
        for _ in range(10):
            nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert randomizer.shuffles == 1
        assert nic_machine.ring.order_fingerprint() != before

    def test_no_shuffle_before_interval(self, nic_machine):
        randomizer = PartialRandomizer(interval=100)
        nic_machine.driver.randomizer = randomizer
        for _ in range(99):
            nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert randomizer.shuffles == 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            PartialRandomizer(interval=0)

    def test_shuffle_cost_scales_with_ring(self, nic_machine):
        cost = RandomizationCost(shuffle_cycles_per_buffer=10)
        randomizer = PartialRandomizer(interval=1, cost=cost)
        nic_machine.driver.randomizer = randomizer
        nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        assert randomizer.cycles_charged == 10 * len(nic_machine.ring.buffers)


class TestPartitionConfig:
    def test_paper_defaults(self):
        cfg = PartitionConfig()
        assert cfg.period == 10_000
        assert (cfg.t_low, cfg.t_high) == (2_000, 5_000)
        assert (cfg.min_quota, cfg.max_quota) == (1, 3)

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            PartitionConfig(t_low=6000, t_high=5000)

    def test_quota_ordering_enforced(self):
        with pytest.raises(ValueError):
            PartitionConfig(min_quota=3, init_quota=2)


class TestAdaptivePartition:
    def test_install_registers_with_llc(self, nic_machine):
        partition = AdaptivePartition()
        partition.install(nic_machine)
        assert nic_machine.llc.partition is partition

    def test_double_install_rejected(self, nic_machine):
        AdaptivePartition().install(nic_machine)
        with pytest.raises(RuntimeError):
            AdaptivePartition().install(nic_machine)

    def test_io_never_evicts_cpu_lines(self, nic_machine):
        """The security property: packets cannot displace CPU lines."""
        partition = AdaptivePartition()
        partition.install(nic_machine)
        victim = nic_machine.new_process("victim")
        base = victim.mmap(64)
        for i in range(64 * 64):
            victim.access(base + i * 64)
        source = ConstantStream(size=256, rate_pps=3e5, protocol="broadcast")
        source.attach(nic_machine, nic_machine.nic)
        nic_machine.idle(2_000_000)
        source.stop()
        assert nic_machine.llc.stats.io_evicted_cpu == 0

    def test_io_partition_caps_io_lines(self, nic_machine):
        partition = AdaptivePartition()
        partition.install(nic_machine)
        for _ in range(len(nic_machine.ring.buffers) * 3):
            nic_machine.nic.deliver(Frame(size=256, protocol="broadcast"))
        max_quota = partition.config.max_quota
        for flat in range(nic_machine.llc.geometry.total_sets):
            _cpu, io = nic_machine.llc.set_occupancy(flat)
            assert io <= max_quota

    def test_quota_grows_under_sustained_io(self, nic_machine):
        partition = AdaptivePartition(PartitionConfig(period=50_000))
        partition.install(nic_machine)
        source = ConstantStream(size=256, rate_pps=5e5, protocol="broadcast")
        source.attach(nic_machine, nic_machine.nic)
        nic_machine.idle(500_000)
        source.stop()
        assert partition.stats.quota_grown > 0

    def test_quota_decays_when_idle(self, nic_machine):
        partition = AdaptivePartition(PartitionConfig(period=50_000))
        partition.install(nic_machine)
        nic_machine.idle(200_000)
        assert partition.quota(0) == partition.config.min_quota

    def test_presence_accounting_bounded_by_period(self, nic_machine):
        partition = AdaptivePartition()
        partition.install(nic_machine)
        nic_machine.nic.deliver(Frame(size=64, protocol="broadcast"))
        flat = nic_machine.llc.flat_set_of(
            nic_machine.ring.buffers[0].dma_paddr
        )
        nic_machine.idle(25_000)
        now = nic_machine.clock.now
        assert partition.presence_this_period(flat, now) <= partition.config.period

    def test_blinds_prime_probe_spy(self, nic_machine, spy, threshold):
        """End to end: with partitioning, the footprint scan goes dark.

        A spy that keeps full-associativity eviction sets just self-thrashes
        (the CPU partition is smaller now); the *best-case* spy recalibrates
        its sets to the CPU partition size — and still sees no packets,
        because I/O fills can only displace I/O lines.
        """
        from repro.attack.evictionset import OracleEvictionSetBuilder
        from repro.attack.primeprobe import ProbeMonitor

        partition = AdaptivePartition()
        partition.install(nic_machine)
        cpu_ways = nic_machine.llc.geometry.ways - partition.config.max_quota
        builder = OracleEvictionSetBuilder(
            spy, threshold, huge_pages=4, ways=cpu_ways
        )
        groups = builder.build_page_aligned_groups()
        monitor = ProbeMonitor(spy, groups)
        source = ConstantStream(size=256, rate_pps=2e5, protocol="broadcast")
        source.attach(nic_machine, nic_machine.nic)
        monitor.prime()
        # Let the partition warm up (first fills may predate priming).
        nic_machine.idle(100_000)
        monitor.probe_once()
        trace = monitor.sample(50, wait_cycles=20_000)
        source.stop()
        active = sum(1 for a in trace.activity_fraction() if a > 0.1)
        assert active == 0
