"""The paper's headline security claims, as executable assertions.

Each test is one sentence from the paper turned into code: the channel
works without DDIO (§IV-d), the adaptive partition kills it (§VII), a
networking restart invalidates the spy's knowledge (§III-A), and the covert
frames never need to be addressed to the spy's host (§IV-d).
"""

from repro.analysis.lfsr import lfsr_symbols
from repro.attack.covert import CovertReceiver, CovertTrojan, run_covert_channel
from repro.attack.setup import MonitorFactory, unique_buffer_positions
from repro.attack.timing import calibrate_threshold
from repro.core.config import DDIOConfig, MachineConfig
from repro.core.machine import Machine
from repro.defense.partitioning import AdaptivePartition


def build_machine(ddio: bool = True, partition: bool = False) -> Machine:
    cfg = MachineConfig().scaled_down()
    cfg.ddio = DDIOConfig(enabled=ddio)
    machine = Machine(cfg)
    machine.install_nic()
    if partition:
        AdaptivePartition().install(machine)
    return machine


def run_channel(
    machine,
    n_symbols: int = 30,
    wait_cycles: int = 30_000,
    protocol: str = "broadcast",
):
    spy = machine.new_process("spy")
    factory = MonitorFactory(machine, spy, calibrate_threshold(spy), huge_pages=4)
    position = unique_buffer_positions(machine)[0]
    receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
    trojan = CovertTrojan(
        alphabet=3,
        ring_size=len(machine.ring.buffers),
        rate_pps=300_000,
        protocol=protocol,
    )
    symbols = lfsr_symbols(n_symbols, 3)
    return run_covert_channel(machine, receiver, trojan, symbols, wait_cycles)


class TestClaimAttackWithoutDDIO:
    """'The Packet Chasing attack is practical even in the absence of
    those technologies' (§II-E, §IV-d)."""

    def test_channel_works_without_ddio(self):
        """Without DDIO the payload reaches the cache only when the stack
        processes it, so the trojan sends frames the host handles (here:
        tcp) instead of undeliverable broadcasts — §IV-d's own caveat."""
        machine = build_machine(ddio=False)
        report = run_channel(machine, wait_cycles=60_000, protocol="tcp")
        assert report.error_rate <= 0.35  # noisier, but a working channel

    def test_ddio_channel_cleaner_than_no_ddio(self):
        with_ddio = run_channel(build_machine(ddio=True))
        without = run_channel(
            build_machine(ddio=False), wait_cycles=60_000, protocol="tcp"
        )
        assert with_ddio.error_rate <= without.error_rate

    def test_discarded_broadcasts_leak_no_sizes_without_ddio(self):
        """The flip side: with DDIO off, frames the driver discards never
        get their payload cached — size detection dies (presence/timing
        remains, which is why the paper says disabling DDIO is not a fix
        but does degrade the channel)."""
        machine = build_machine(ddio=False)
        report = run_channel(machine, wait_cycles=60_000, protocol="broadcast")
        assert report.error_rate > 0.35


class TestClaimPartitioningStopsTheLeak:
    """'Any process running on the CPU will not see any of its cache lines
    evicted as the result of an incoming packet' (§VII)."""

    def test_covert_channel_dies_under_partitioning(self):
        vulnerable = run_channel(build_machine())
        defended_machine = build_machine(partition=True)
        defended = run_channel(defended_machine)
        assert vulnerable.error_rate <= 0.15
        # Under the defense the spy decodes garbage (missing clock edges
        # and/or spurious zeros): the error rate collapses toward chance.
        assert defended.error_rate >= 0.5
        assert defended_machine.llc.stats.io_evicted_cpu == 0


class TestClaimRestartInvalidatesKnowledge:
    """Buffers keep their order only 'until the next system reboot or
    networking restart' (§III-A)."""

    def test_restart_moves_the_ring(self):
        machine = build_machine()
        spy = machine.new_process("spy")
        factory = MonitorFactory(machine, spy, calibrate_threshold(spy), huge_pages=4)
        monitor = factory.buffer_monitor(0, blocks=(0,), include_alt=False)
        old_sets = {
            machine.llc.flat_set_of(b.dma_paddr) for b in machine.ring.buffers
        }
        machine.restart_networking()
        new_sets = {
            machine.llc.flat_set_of(b.dma_paddr) for b in machine.ring.buffers
        }
        # The footprint moved: stale monitors now watch mostly-dead sets.
        assert old_sets != new_sets


class TestClaimBroadcastSuffices:
    """'They are not even required to be destined for the machine that
    hosts the spy' (§IV-d): broadcast frames the driver discards still
    carry the channel, because DDIO cached them before the protocol check."""

    def test_discarded_frames_still_leak(self):
        machine = build_machine()
        report = run_channel(machine)
        assert machine.driver.stats.discarded == machine.driver.stats.frames
        assert report.error_rate <= 0.15


class TestClaimNoCooperatingSenderNeeded:
    """'The spy can recover the sequence even without the help of the
    external sender, as long as the system is receiving packets' (§III-C):
    ambient traffic advances the ring in the same fixed order."""

    def test_sequencer_works_on_ambient_traffic(self):
        import random

        from repro.analysis.levenshtein import cyclic_levenshtein
        from repro.attack.evictionset import OracleEvictionSetBuilder
        from repro.attack.groundtruth import true_group_sequence
        from repro.attack.sequencer import Sequencer, SequencerConfig
        from repro.net.traffic import PoissonNoise

        machine = build_machine()
        spy = machine.new_process("spy")
        threshold = calibrate_threshold(spy)
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        groups = builder.build_page_aligned_groups()[:12]
        # Only uncooperative background flows with Poisson gaps.  Small
        # frames only: MTU-sized frames make the driver flip page halves,
        # which moves buffers off the page-aligned sets mid-profiling (the
        # spy would track both halves; the claim under test is about sender
        # cooperation, not packet mix).
        ambient = PoissonNoise(
            rate_pps=12_000,
            rng=random.Random(8),
            size_choices=(64, 128, 192, 256),
        )
        ambient.attach(machine, machine.nic)
        sequencer = Sequencer(
            spy, groups, SequencerConfig(n_samples=3000, wait_cycles=150_000)
        )
        recovered, _trace = sequencer.recover()
        ambient.stop()
        truth = true_group_sequence(machine, spy, groups)
        assert truth
        distance = cyclic_levenshtein(recovered, truth)
        assert distance / len(truth) <= 0.35
