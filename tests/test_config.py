"""Unit tests for configuration dataclasses and their validation."""

import pytest

from repro.core.config import (
    CacheGeometry,
    DDIOConfig,
    LinkConfig,
    MachineConfig,
    RingConfig,
    TimingParams,
)


class TestCacheGeometry:
    def test_paper_defaults(self):
        g = CacheGeometry()
        assert g.total_sets == 16384  # the E5-2660's LLC
        assert g.size_bytes == 20 * 1024 * 1024
        assert g.offset_bits == 6
        assert g.set_bits == 11
        assert g.slice_bits == 3

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets_per_slice=1000)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheGeometry(line_size=96)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(ways=0)


class TestRingConfig:
    def test_defaults_match_igb(self):
        r = RingConfig()
        assert r.n_descriptors == 256
        assert r.buffer_size == 2048
        assert r.copy_threshold == 256

    def test_two_buffers_per_page_enforced(self):
        with pytest.raises(ValueError):
            RingConfig(buffer_size=1024, page_size=4096)

    def test_copy_threshold_must_fit(self):
        with pytest.raises(ValueError):
            RingConfig(copy_threshold=4096)


class TestLinkConfig:
    def test_gigabit_frame_rate_for_192_bytes(self):
        """The paper: ~500k frames/s max for 192-byte frames on 1 GbE."""
        link = LinkConfig()
        rate = link.max_frame_rate(192)
        assert 430_000 < rate < 580_000

    def test_minimum_frame_padding(self):
        link = LinkConfig()
        assert link.wire_bytes(1) == link.wire_bytes(64)

    def test_frame_time_inverse_of_rate(self):
        link = LinkConfig()
        assert link.frame_time_seconds(256) == pytest.approx(
            1.0 / link.max_frame_rate(256)
        )


class TestTimingParams:
    def test_defaults_are_ordered(self):
        t = TimingParams()
        assert t.l1_hit_latency < t.llc_hit_latency < t.llc_miss_latency

    def test_rejects_miss_faster_than_hit(self):
        with pytest.raises(ValueError):
            TimingParams(llc_hit_latency=300, llc_miss_latency=200)


class TestDDIOConfig:
    def test_default_two_ways(self):
        assert DDIOConfig().write_allocate_ways == 2

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            DDIOConfig(write_allocate_ways=0)


class TestMachineConfigScaling:
    def test_scaled_down_keeps_slice_structure(self):
        cfg = MachineConfig().scaled_down()
        assert cfg.cache.n_slices == 8
        assert cfg.cache.line_size == 64

    def test_scaled_down_preserves_buffer_to_set_ratio(self):
        cfg = MachineConfig().scaled_down()
        page_aligned_sets = (
            cfg.cache.sets_per_slice
            // (cfg.ring.page_size // cfg.cache.line_size)
            * cfg.cache.n_slices
        )
        assert page_aligned_sets == cfg.ring.n_descriptors

    def test_bench_scale_keeps_paper_set_count(self):
        cfg = MachineConfig().bench_scale()
        assert cfg.cache.sets_per_slice == 2048
        assert cfg.ring.n_descriptors == 256
