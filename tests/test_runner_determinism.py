"""Jobs-independence: ``--jobs N`` must never change the numbers.

The runner's core invariant is that shard planning and seeding depend only
on ``(spec, root_seed)``, so the same experiment produces byte-identical
``format_rows()`` output whether it ran serially or fanned out over worker
processes.  These tests pin that for the two experiments ISSUE'd by name —
Fig. 6 (trial fan-out) and the Section V fingerprint pipeline (two-phase
train/eval) — at scaled-down sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments.fingerprinting import run_fingerprint_accuracy
from repro.experiments.mapping import run_fig6
from repro.runner import ExperimentRunner


def _runner(jobs: int) -> ExperimentRunner:
    return ExperimentRunner(jobs=jobs, use_cache=False)


class TestFig6JobsIndependence:
    def test_jobs_1_vs_4_identical_rows(self, scaled_config):
        serial = run_fig6(instances=12, config=scaled_config, runner=_runner(1))
        fanned = run_fig6(instances=12, config=scaled_config, runner=_runner(4))
        assert serial.format_rows() == fanned.format_rows()
        assert serial.histogram == fanned.histogram

    def test_root_seed_changes_histogram(self, scaled_config):
        a = run_fig6(instances=12, config=scaled_config, runner=_runner(1))
        other = ExperimentRunner(jobs=1, use_cache=False, root_seed=12345)
        b = run_fig6(instances=12, config=scaled_config, runner=other)
        assert a.histogram != b.histogram

    def test_runner_optional_default_matches_explicit_serial(self, scaled_config):
        implicit = run_fig6(instances=8, config=scaled_config)
        explicit = run_fig6(instances=8, config=scaled_config, runner=_runner(1))
        assert implicit.format_rows() == explicit.format_rows()


class TestFingerprintJobsIndependence:
    @pytest.fixture(scope="class")
    def params(self, request):
        return dict(
            train_loads=1,
            trials_per_site=1,
            huge_pages=4,
            trace_length=40,
            noise_pps=200.0,
        )

    def test_jobs_1_vs_4_identical_rows(self, scaled_config, params):
        serial = run_fingerprint_accuracy(
            scaled_config, runner=_runner(1), **params
        )
        fanned = run_fingerprint_accuracy(
            scaled_config, runner=_runner(4), **params
        )
        assert serial.format_rows() == fanned.format_rows()
        assert serial.accuracy_ddio == fanned.accuracy_ddio
        assert serial.accuracy_no_ddio == fanned.accuracy_no_ddio
