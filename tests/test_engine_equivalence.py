"""Differential equivalence: packed engine vs the frozen legacy model.

Randomized CPU/DMA/flush/partition traces are replayed op-for-op through
:class:`repro.cache.llc.SlicedLLC` (engine-backed) and
:class:`repro.cache.legacy.LegacySlicedLLC` (the pre-refactor
OrderedDict model), asserting identical return values, identical stats
and traffic attribution, and identical per-set content in LRU order —
with and without the partition defense, with DDIO on and off.

A second family of traces exercises :meth:`SlicedLLC.access_many`
(the batched kernel PRIME+PROBE sweeps use) against the legacy scalar
loop, including the miss-set fallback path.
"""

import random

import numpy as np
import pytest

from repro.cache.legacy import LegacyAdaptivePartition, LegacySlicedLLC
from repro.cache.llc import SlicedLLC
from repro.cache.slicehash import IntelComplexHash, ModuloSliceHash
from repro.core.config import CacheGeometry, DDIOConfig
from repro.defense.partitioning import AdaptivePartition, PartitionConfig

GEOMETRY = CacheGeometry(n_slices=2, sets_per_slice=32, ways=6)
PART_CONFIG = PartitionConfig(period=512, t_high=300, t_low=64)


def build_pair(ddio_enabled: bool, partitioned: bool, hash_cls):
    """An (engine-backed, legacy) LLC pair with identical configuration."""
    ddio = DDIOConfig(enabled=ddio_enabled, write_allocate_ways=2)
    new = SlicedLLC(geometry=GEOMETRY, ddio=ddio, slice_hash=hash_cls(2))
    old = LegacySlicedLLC(geometry=GEOMETRY, ddio=ddio, slice_hash=hash_cls(2))
    if partitioned:
        new.partition = AdaptivePartition(PART_CONFIG)
        old.partition = LegacyAdaptivePartition(PART_CONFIG)
    return new, old


def assert_same_state(new: SlicedLLC, old: LegacySlicedLLC) -> None:
    assert new.stats == old.stats
    assert (new.traffic.reads, new.traffic.writes) == (
        old.traffic.reads,
        old.traffic.writes,
    )
    for flat in range(GEOMETRY.total_sets):
        assert new.engine.lines_in_lru_order(flat) == list(
            old.sets[flat].lines.items()
        ), f"set {flat} diverged"
    if new.partition is not None:
        np_, op = new.partition, old.partition
        assert np_.stats == op.stats
        assert np_._quota == op._quota
        assert np_._default_quota == op._default_quota
        assert np_._presence == op._presence
        assert np_._io_since == op._io_since


def run_trace(
    new: SlicedLLC,
    old: LegacySlicedLLC,
    n_ops: int,
    seed: int,
    n_lines: int = GEOMETRY.total_sets * 3,
) -> None:
    """Replay one randomized scalar trace through both models."""
    rng = random.Random(seed)
    partitioned = new.partition is not None
    now = 0
    for i in range(n_ops):
        now += rng.randrange(1, 40)
        if partitioned and i and i % 400 == 0:
            new.partition.adapt(new, now)
            old.partition.adapt(old, now)
        paddr = rng.randrange(n_lines) * 64
        roll = rng.random()
        if roll < 0.55:
            got = new.cpu_access(paddr, write=roll < 0.2, now=now)
            want = old.cpu_access(paddr, write=roll < 0.2, now=now)
            assert got == want
        elif roll < 0.85:
            new.io_write(paddr, now=now)
            old.io_write(paddr, now=now)
        elif roll < 0.93:
            assert new.flush(paddr) == old.flush(paddr)
        else:
            assert new.is_resident(paddr) == old.is_resident(paddr)
            flat = new.flat_set_of(paddr)
            assert new.set_occupancy(flat) == old.set_occupancy(flat)
        if i % 1000 == 0:
            assert_same_state(new, old)
    assert_same_state(new, old)


@pytest.mark.parametrize("ddio_enabled", [True, False])
@pytest.mark.parametrize("partitioned", [True, False])
def test_scalar_trace_equivalence(ddio_enabled, partitioned):
    """>= 10k randomized ops per configuration, op-for-op identical."""
    new, old = build_pair(ddio_enabled, partitioned, ModuloSliceHash)
    run_trace(new, old, n_ops=10_000, seed=ddio_enabled * 2 + partitioned)


def test_scalar_trace_equivalence_complex_hash():
    """The memoized decomposition agrees with per-access hashing."""
    new, old = build_pair(True, False, IntelComplexHash)
    run_trace(new, old, n_ops=4_000, seed=7)


@pytest.mark.parametrize("ddio_enabled", [True, False])
def test_batched_access_equivalence(ddio_enabled):
    """access_many == a loop of cpu_access, interleaved with DMA traffic."""
    new, old = build_pair(ddio_enabled, False, ModuloSliceHash)
    rng = random.Random(29 + ddio_enabled)
    n_lines = GEOMETRY.total_sets * 3
    for round_ in range(60):
        # Some DMA between batches so batches hit the miss-set fallback.
        for _ in range(rng.randrange(0, 30)):
            paddr = rng.randrange(n_lines) * 64
            new.io_write(paddr)
            old.io_write(paddr)
        batch = [rng.randrange(n_lines) * 64 for _ in range(rng.randrange(1, 200))]
        if round_ % 3 == 0:
            # Sweep-like batch: duplicate lines in zig-zag order.
            batch = batch + batch[::-1]
        write = rng.random() < 0.3
        paddrs = np.asarray(batch, dtype=np.int64)
        hits, lats = new.access_many(paddrs, write=write)
        want = [old.cpu_access(p, write=write) for p in batch]
        assert [(bool(h), int(l)) for h, l in zip(hits, lats)] == want
        assert_same_state(new, old)


@pytest.mark.parametrize("ddio_enabled", [True, False])
def test_batched_io_write_equivalence(ddio_enabled):
    """io_write_many == a loop of io_write — the NIC's DMA burst kernel.

    Mixes burst sizes (1..32 lines, the rx-buffer span), interleaves CPU
    traffic so bursts hit resident lines, lines at the DDIO way cap, and
    full sets, and checks stats + LRU state after every burst.
    """
    new, old = build_pair(ddio_enabled, False, ModuloSliceHash)
    rng = random.Random(41 + ddio_enabled)
    n_lines = GEOMETRY.total_sets * 3
    for round_ in range(150):
        for _ in range(rng.randrange(0, 20)):
            paddr = rng.randrange(n_lines) * 64
            w = rng.random() < 0.3
            assert new.cpu_access(paddr, write=w) == old.cpu_access(paddr, write=w)
        if rng.random() < 0.5:
            # Contiguous run, distinct sets — the NIC's actual shape.
            start = rng.randrange(n_lines - 32)
            burst = [(start + k) * 64 for k in range(rng.randrange(1, 33))]
        else:
            # Adversarial: random lines, possibly duplicated in-burst.
            burst = [rng.randrange(n_lines) * 64 for _ in range(rng.randrange(1, 33))]
        paddrs = np.asarray(burst, dtype=np.int64)
        new.io_write_many(paddrs)
        for p in burst:
            old.io_write(p)
        assert_same_state(new, old)


def test_batched_io_write_partition_fallback():
    """With a partition installed io_write_many must fall back scalar."""
    new, old = build_pair(True, True, ModuloSliceHash)
    rng = random.Random(43)
    n_lines = GEOMETRY.total_sets * 3
    now = 0
    for round_ in range(60):
        now += rng.randrange(1, 50)
        if round_ and round_ % 10 == 0:
            new.partition.adapt(new, now)
            old.partition.adapt(old, now)
        burst = [rng.randrange(n_lines) * 64 for _ in range(rng.randrange(1, 33))]
        paddrs = np.asarray(burst, dtype=np.int64)
        new.io_write_many(paddrs, now=now)
        for p in burst:
            old.io_write(p, now=now)
        assert_same_state(new, old)


def test_batched_access_with_cached_decomp():
    """A caller-cached decomposition replays identically to fresh hashing."""
    new, old = build_pair(True, False, ModuloSliceHash)
    rng = random.Random(31)
    paddrs = np.asarray(
        [rng.randrange(GEOMETRY.total_sets * 2) * 64 for _ in range(300)],
        dtype=np.int64,
    )
    decomp = new.decompose_many(paddrs)
    for _ in range(20):
        hits, lats = new.access_many(paddrs, decomp=decomp)
        want = [old.cpu_access(int(p)) for p in paddrs]
        assert [(bool(h), int(l)) for h, l in zip(hits, lats)] == want
        for _ in range(10):
            paddr = rng.randrange(GEOMETRY.total_sets * 2) * 64
            new.io_write(paddr)
            old.io_write(paddr)
    assert_same_state(new, old)
