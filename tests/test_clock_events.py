"""Unit tests for the simulation clock and event queue."""

import pytest

from repro.core.clock import SimClock
from repro.core.events import EventQueue


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_never_goes_backwards(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance_to(50)
        assert clock.now == 100
        clock.advance_to(150)
        assert clock.now == 150

    def test_seconds_conversion(self):
        clock = SimClock(frequency_hz=1e9)
        clock.advance(2_000_000_000)
        assert clock.seconds() == pytest.approx(2.0)

    def test_cycles_conversion_roundtrip(self):
        clock = SimClock(frequency_hz=3.3e9)
        assert clock.cycles(1.0) == 3_300_000_000
        assert clock.cycles(0) == 0

    def test_cycles_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SimClock().cycles(-0.5)

    def test_default_frequency_is_table2(self):
        assert SimClock().frequency_hz == pytest.approx(3.3e9)


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(30, lambda: fired.append("c"))
        q.schedule(10, lambda: fired.append("a"))
        q.schedule(20, lambda: fired.append("b"))
        q.run_due(30)
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        q = EventQueue()
        fired = []
        for tag in "abc":
            q.schedule(5, lambda t=tag: fired.append(t))
        q.run_due(5)
        assert fired == ["a", "b", "c"]

    def test_run_due_skips_future(self):
        q = EventQueue()
        fired = []
        q.schedule(100, lambda: fired.append("later"))
        assert q.run_due(99) == 0
        assert fired == []
        assert q.run_due(100) == 1

    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(10, lambda: fired.append("x"))
        ev.cancel()
        q.run_due(10)
        assert fired == []

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_event_may_schedule_due_event(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda: q.schedule(10, lambda: fired.append("nested")))
        q.run_due(10)
        assert fired == ["nested"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(42, lambda: None)
        assert q.peek_time() == 42

    def test_run_until_empty_advances_clock(self):
        from repro.core.clock import SimClock

        q = EventQueue()
        clock = SimClock()
        times = []
        q.schedule(50, lambda: times.append(clock.now))
        q.schedule(90, lambda: times.append(clock.now))
        q.run_until_empty(clock)
        assert times == [50, 90]
        assert clock.now == 90


class TestMachineIdle:
    def test_idle_fires_due_events(self, machine):
        fired = []
        machine.events.schedule(1000, lambda: fired.append(machine.clock.now))
        machine.idle(2000)
        assert fired == [1000]
        assert machine.clock.now == 2000

    def test_idle_leaves_future_events(self, machine):
        fired = []
        machine.events.schedule(5000, lambda: fired.append(True))
        machine.idle(1000)
        assert fired == []
        assert len(machine.events) == 1
