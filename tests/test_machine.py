"""Integration tests for Machine and Process."""

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import Machine


class TestProcessAccess:
    def test_access_advances_clock_by_latency(self, nic_machine):
        proc = nic_machine.new_process("p")
        base = proc.mmap(1)
        t0 = nic_machine.clock.now
        latency = proc.access(base)
        assert nic_machine.clock.now - t0 == latency
        assert latency == nic_machine.llc.timing.llc_miss_latency

    def test_second_access_hits(self, nic_machine):
        proc = nic_machine.new_process("p")
        base = proc.mmap(1)
        proc.access(base)
        assert proc.access(base) == nic_machine.llc.timing.llc_hit_latency

    def test_timed_access_adds_overhead(self, nic_machine):
        proc = nic_machine.new_process("p")
        base = proc.mmap(1)
        proc.access(base)
        expected = (
            nic_machine.llc.timing.llc_hit_latency
            + nic_machine.llc.timing.measure_overhead
        )
        assert proc.timed_access(base) == expected

    def test_flush_then_access_misses(self, nic_machine):
        proc = nic_machine.new_process("p")
        base = proc.mmap(1)
        proc.access(base)
        proc.flush(base)
        assert proc.access(base) == nic_machine.llc.timing.llc_miss_latency

    def test_access_drains_due_events(self, nic_machine):
        proc = nic_machine.new_process("p")
        base = proc.mmap(1)
        fired = []
        nic_machine.events.schedule(
            nic_machine.clock.now, lambda: fired.append(True)
        )
        proc.access(base)
        assert fired == [True]

    def test_processes_share_the_llc(self, nic_machine):
        """Two processes mapping the same frame contend in the same set —
        the shared-LLC property the attack needs."""
        a = nic_machine.new_process("a")
        base = a.mmap(1)
        paddr = a.addrspace.translate(base)
        a.access(base)
        assert nic_machine.llc.is_resident(paddr)


class TestMachineAssembly:
    def test_double_nic_install_rejected(self, nic_machine):
        with pytest.raises(RuntimeError):
            nic_machine.install_nic()

    def test_restart_networking_moves_buffers(self, nic_machine):
        before = set(nic_machine.ring.page_paddrs())
        nic_machine.restart_networking()
        after = set(nic_machine.ring.page_paddrs())
        assert before != after
        assert len(after) == len(before)

    def test_restart_without_nic_rejected(self, machine):
        with pytest.raises(RuntimeError):
            machine.restart_networking()

    def test_deterministic_under_seed(self):
        cfg = MachineConfig().scaled_down()
        a = Machine(cfg)
        a.install_nic()
        cfg2 = MachineConfig().scaled_down()
        b = Machine(cfg2)
        b.install_nic()
        assert a.ring.page_paddrs() == b.ring.page_paddrs()

    def test_different_seed_different_layout(self):
        cfg1 = MachineConfig().scaled_down()
        cfg2 = MachineConfig().scaled_down()
        cfg2.seed = cfg1.seed + 1
        a = Machine(cfg1)
        a.install_nic()
        b = Machine(cfg2)
        b.install_nic()
        assert a.ring.page_paddrs() != b.ring.page_paddrs()

    def test_ring_buffers_on_requested_node(self, nic_machine):
        for buffer in nic_machine.ring.buffers:
            assert buffer.node == 0

    def test_drain_events_empties_queue(self, nic_machine):
        nic_machine.events.schedule(10_000, lambda: None)
        nic_machine.events.schedule(20_000, lambda: None)
        nic_machine.drain_events()
        assert len(nic_machine.events) == 0
        assert nic_machine.clock.now == 20_000


class TestEndToEndSmoke:
    def test_full_attack_pipeline_small(self, nic_machine):
        """Discovery -> active sets -> one buffer monitor -> size read."""
        from repro.attack.discovery import RingDiscovery
        from repro.attack.evictionset import OracleEvictionSetBuilder
        from repro.attack.timing import calibrate_threshold
        from repro.net.traffic import ConstantStream

        spy = nic_machine.new_process("spy")
        threshold = calibrate_threshold(spy)
        builder = OracleEvictionSetBuilder(spy, threshold, huge_pages=4)
        discovery = RingDiscovery(spy, builder.build_page_aligned_groups())
        source = ConstantStream(size=128, rate_pps=2e5, protocol="broadcast")
        idle, receiving = discovery.idle_vs_receiving(
            n_samples=60,
            wait_cycles=20_000,
            start_traffic=lambda: source.attach(nic_machine, nic_machine.nic),
        )
        source.stop()
        assert not discovery.active_sets(idle)
        active = discovery.active_sets(receiving)
        assert active
        # Every active set truly hosts at least one ring buffer.
        from repro.attack.groundtruth import (
            buffers_per_page_aligned_set,
            flat_set_of_eviction_set,
        )

        hosting = buffers_per_page_aligned_set(nic_machine)
        for found in active:
            flat = flat_set_of_eviction_set(spy, found.eviction_set)
            assert hosting.get(flat, 0) >= 1
