"""Tests for the covert channel: encoding, decoding, end-to-end runs."""

import pytest

from repro.analysis.lfsr import lfsr_symbols
from repro.attack.covert import (
    CovertReceiver,
    CovertTrojan,
    frame_size_for,
    run_chasing_channel,
    run_covert_channel,
    size_to_symbol,
    symbol_from_blocks,
)
from repro.attack.setup import MonitorFactory, spaced_positions, unique_buffer_positions


class TestEncoding:
    def test_binary_sizes(self):
        assert frame_size_for(0, 2) == 64
        assert frame_size_for(1, 2) == 256

    def test_ternary_sizes(self):
        assert [frame_size_for(s, 3) for s in (0, 1, 2)] == [64, 192, 256]

    def test_unencodable_symbol_rejected(self):
        with pytest.raises(ValueError):
            frame_size_for(2, 2)

    def test_decode_inverts_encode(self):
        for alphabet in (2, 3):
            for symbol in range(alphabet):
                blocks = -(-frame_size_for(symbol, alphabet) // 64)
                assert size_to_symbol(max(blocks, 2), alphabet) == symbol

    def test_symbol_from_blocks_binary(self):
        assert symbol_from_blocks(True, True, 2) == 1
        assert symbol_from_blocks(False, False, 2) == 0

    def test_symbol_from_blocks_ternary(self):
        assert symbol_from_blocks(False, False, 3) == 0
        assert symbol_from_blocks(True, False, 3) == 1
        assert symbol_from_blocks(True, True, 3) == 2


class TestTrojan:
    def test_packets_per_symbol(self):
        trojan = CovertTrojan(ring_size=256, n_streams=4)
        assert trojan.packets_per_symbol == 64

    def test_stream_length(self):
        trojan = CovertTrojan(alphabet=2, ring_size=32, n_streams=1)
        stream = trojan.build_stream([0, 1, 0])
        assert len(stream.sizes) == 3 * 32

    def test_streams_must_divide_ring(self):
        with pytest.raises(ValueError):
            CovertTrojan(ring_size=256, n_streams=7)

    def test_reordering_permutes_but_preserves_multiset(self):
        trojan = CovertTrojan(
            alphabet=3, ring_size=32, n_streams=32, reorder_prob=0.5
        )
        symbols = lfsr_symbols(64, 3)
        stream = trojan.build_stream(symbols)
        expected = sorted(frame_size_for(s, 3) for s in symbols)
        assert sorted(stream.sizes) == expected
        assert stream.sizes != [frame_size_for(s, 3) for s in symbols]


@pytest.fixture
def covert_rig(nic_machine, spy, threshold):
    factory = MonitorFactory(nic_machine, spy, threshold, huge_pages=4)
    return nic_machine, spy, factory


class TestSingleBufferChannel:
    def test_ternary_roundtrip(self, covert_rig):
        machine, spy, factory = covert_rig
        position = unique_buffer_positions(machine)[0]
        receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
        trojan = CovertTrojan(alphabet=3, ring_size=32, rate_pps=400_000)
        symbols = lfsr_symbols(30, 3)
        report = run_covert_channel(machine, receiver, trojan, symbols, 30_000)
        assert report.error_rate <= 0.1
        assert report.symbols_received >= 27

    def test_binary_roundtrip(self, covert_rig):
        machine, spy, factory = covert_rig
        position = unique_buffer_positions(machine)[0]
        receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
        trojan = CovertTrojan(alphabet=2, ring_size=32, rate_pps=400_000)
        symbols = lfsr_symbols(30, 2)
        report = run_covert_channel(machine, receiver, trojan, symbols, 30_000)
        assert report.error_rate <= 0.1

    def test_bandwidth_bounded_by_line_rate(self, covert_rig):
        machine, spy, factory = covert_rig
        position = unique_buffer_positions(machine)[0]
        receiver = CovertReceiver(spy, [factory.stream_monitors(position)])
        trojan = CovertTrojan(alphabet=3, ring_size=32, rate_pps=10_000_000)
        symbols = lfsr_symbols(16, 3)
        report = run_covert_channel(machine, receiver, trojan, symbols, 5_000)
        max_symbol_rate = machine.config.link.max_frame_rate(256) / 32
        assert report.symbol_rate <= max_symbol_rate * 1.05


class TestMultiBufferChannel:
    def test_more_buffers_more_bandwidth(self, covert_rig):
        machine, spy, factory = covert_rig
        candidates = unique_buffer_positions(machine)
        reports = {}
        for n in (1, 4):
            positions = spaced_positions(candidates, n, 32)
            receiver = CovertReceiver(
                spy, [factory.stream_monitors(p) for p in positions]
            )
            trojan = CovertTrojan(
                alphabet=3, ring_size=32, n_streams=n, rate_pps=400_000
            )
            symbols = lfsr_symbols(24, 3)
            reports[n] = run_covert_channel(
                machine, receiver, trojan, symbols, 25_000
            )
        assert (
            reports[4].bandwidth_bps > 2.5 * reports[1].bandwidth_bps
        )


class TestChasingChannel:
    def test_one_symbol_per_packet(self, covert_rig):
        machine, spy, factory = covert_rig
        chaser = factory.full_ring_chaser(include_alt=False)
        trojan = CovertTrojan(
            alphabet=3, ring_size=32, n_streams=32, rate_pps=50_000
        )
        symbols = lfsr_symbols(60, 3)
        report, oos = run_chasing_channel(
            machine, chaser, trojan, symbols, timeout_cycles=1_000_000
        )
        assert report.error_rate <= 0.05
        assert oos <= 0.05

    def test_requires_per_packet_trojan(self, covert_rig):
        machine, spy, factory = covert_rig
        chaser = factory.full_ring_chaser(include_alt=False)
        trojan = CovertTrojan(alphabet=3, ring_size=32, n_streams=1)
        with pytest.raises(ValueError):
            run_chasing_channel(machine, chaser, trojan, [0], 1000)
